//===--- Equivalence.cpp ------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Equivalence.h"

#include "support/Casting.h"

using namespace dpo;

static const Expr *stripParens(const Expr *E) {
  while (const auto *P = dyn_cast_or_null<ParenExpr>(E))
    E = P->inner();
  return E;
}

bool dpo::structurallyEqual(const Expr *A, const Expr *B) {
  A = stripParens(A);
  B = stripParens(B);
  if (!A || !B)
    return A == B;
  if (A->kind() != B->kind())
    return false;

  switch (A->kind()) {
  case StmtKind::IntegerLit:
    return cast<IntegerLiteral>(A)->value() == cast<IntegerLiteral>(B)->value();
  case StmtKind::FloatLit:
    return cast<FloatLiteral>(A)->value() == cast<FloatLiteral>(B)->value();
  case StmtKind::BoolLit:
    return cast<BoolLiteral>(A)->value() == cast<BoolLiteral>(B)->value();
  case StmtKind::StringLit:
    return cast<StringLiteral>(A)->spelling() ==
           cast<StringLiteral>(B)->spelling();
  case StmtKind::DeclRef:
    return cast<DeclRefExpr>(A)->name() == cast<DeclRefExpr>(B)->name();
  case StmtKind::Member: {
    const auto *MA = cast<MemberExpr>(A);
    const auto *MB = cast<MemberExpr>(B);
    return MA->member() == MB->member() && MA->isArrow() == MB->isArrow() &&
           structurallyEqual(MA->base(), MB->base());
  }
  case StmtKind::ArraySubscript: {
    const auto *SA = cast<ArraySubscriptExpr>(A);
    const auto *SB = cast<ArraySubscriptExpr>(B);
    return structurallyEqual(SA->base(), SB->base()) &&
           structurallyEqual(SA->index(), SB->index());
  }
  case StmtKind::Call: {
    const auto *CA = cast<CallExpr>(A);
    const auto *CB = cast<CallExpr>(B);
    if (CA->args().size() != CB->args().size())
      return false;
    if (!structurallyEqual(CA->callee(), CB->callee()))
      return false;
    for (size_t I = 0; I < CA->args().size(); ++I)
      if (!structurallyEqual(CA->args()[I], CB->args()[I]))
        return false;
    return true;
  }
  case StmtKind::Unary: {
    const auto *UA = cast<UnaryOperator>(A);
    const auto *UB = cast<UnaryOperator>(B);
    return UA->op() == UB->op() &&
           structurallyEqual(UA->operand(), UB->operand());
  }
  case StmtKind::Binary: {
    const auto *BA = cast<BinaryOperator>(A);
    const auto *BB = cast<BinaryOperator>(B);
    return BA->op() == BB->op() && structurallyEqual(BA->lhs(), BB->lhs()) &&
           structurallyEqual(BA->rhs(), BB->rhs());
  }
  case StmtKind::Conditional: {
    const auto *CA = cast<ConditionalOperator>(A);
    const auto *CB = cast<ConditionalOperator>(B);
    return structurallyEqual(CA->cond(), CB->cond()) &&
           structurallyEqual(CA->trueExpr(), CB->trueExpr()) &&
           structurallyEqual(CA->falseExpr(), CB->falseExpr());
  }
  case StmtKind::Cast: {
    const auto *CA = cast<CastExpr>(A);
    const auto *CB = cast<CastExpr>(B);
    return CA->type() == CB->type() &&
           structurallyEqual(CA->operand(), CB->operand());
  }
  case StmtKind::SizeofE:
    return cast<SizeofExpr>(A)->queriedType() ==
           cast<SizeofExpr>(B)->queriedType();
  case StmtKind::Launch: {
    const auto *LA = cast<LaunchExpr>(A);
    const auto *LB = cast<LaunchExpr>(B);
    if (LA->kernel() != LB->kernel() ||
        LA->args().size() != LB->args().size())
      return false;
    if (!structurallyEqual(LA->gridDim(), LB->gridDim()) ||
        !structurallyEqual(LA->blockDim(), LB->blockDim()))
      return false;
    if ((LA->sharedMem() == nullptr) != (LB->sharedMem() == nullptr) ||
        (LA->stream() == nullptr) != (LB->stream() == nullptr))
      return false;
    if (LA->sharedMem() && !structurallyEqual(LA->sharedMem(), LB->sharedMem()))
      return false;
    if (LA->stream() && !structurallyEqual(LA->stream(), LB->stream()))
      return false;
    for (size_t I = 0; I < LA->args().size(); ++I)
      if (!structurallyEqual(LA->args()[I], LB->args()[I]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

bool dpo::structurallyEqual(const VarDecl *A, const VarDecl *B) {
  if (!A || !B)
    return A == B;
  if (A->name() != B->name() || !(A->type() == B->type()) ||
      A->isShared() != B->isShared() ||
      A->arrayDims().size() != B->arrayDims().size())
    return false;
  if ((A->init() == nullptr) != (B->init() == nullptr))
    return false;
  if (A->init() && !structurallyEqual(A->init(), B->init()))
    return false;
  for (size_t I = 0; I < A->arrayDims().size(); ++I)
    if (!structurallyEqual(A->arrayDims()[I], B->arrayDims()[I]))
      return false;
  return true;
}

bool dpo::structurallyEqual(const Stmt *A, const Stmt *B) {
  if (!A || !B)
    return A == B;

  const auto *EA = dyn_cast<Expr>(A);
  const auto *EB = dyn_cast<Expr>(B);
  if ((EA != nullptr) != (EB != nullptr))
    return false;
  if (EA)
    return structurallyEqual(EA, EB);

  if (A->kind() != B->kind())
    return false;

  switch (A->kind()) {
  case StmtKind::Compound: {
    const auto *CA = cast<CompoundStmt>(A);
    const auto *CB = cast<CompoundStmt>(B);
    if (CA->body().size() != CB->body().size())
      return false;
    for (size_t I = 0; I < CA->body().size(); ++I)
      if (!structurallyEqual(CA->body()[I], CB->body()[I]))
        return false;
    return true;
  }
  case StmtKind::DeclS: {
    const auto *DA = cast<DeclStmt>(A);
    const auto *DB = cast<DeclStmt>(B);
    if (DA->decls().size() != DB->decls().size())
      return false;
    for (size_t I = 0; I < DA->decls().size(); ++I)
      if (!structurallyEqual(DA->decls()[I], DB->decls()[I]))
        return false;
    return true;
  }
  case StmtKind::If: {
    const auto *IA = cast<IfStmt>(A);
    const auto *IB = cast<IfStmt>(B);
    return structurallyEqual(IA->cond(), IB->cond()) &&
           structurallyEqual(IA->thenStmt(), IB->thenStmt()) &&
           structurallyEqual(IA->elseStmt(), IB->elseStmt());
  }
  case StmtKind::For: {
    const auto *FA = cast<ForStmt>(A);
    const auto *FB = cast<ForStmt>(B);
    return structurallyEqual(FA->init(), FB->init()) &&
           structurallyEqual(FA->cond(), FB->cond()) &&
           structurallyEqual(FA->inc(), FB->inc()) &&
           structurallyEqual(FA->body(), FB->body());
  }
  case StmtKind::While: {
    const auto *WA = cast<WhileStmt>(A);
    const auto *WB = cast<WhileStmt>(B);
    return structurallyEqual(WA->cond(), WB->cond()) &&
           structurallyEqual(WA->body(), WB->body());
  }
  case StmtKind::Do: {
    const auto *DA = cast<DoStmt>(A);
    const auto *DB = cast<DoStmt>(B);
    return structurallyEqual(DA->body(), DB->body()) &&
           structurallyEqual(DA->cond(), DB->cond());
  }
  case StmtKind::Return:
    return structurallyEqual(cast<ReturnStmt>(A)->value(),
                             cast<ReturnStmt>(B)->value());
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Null:
    return true;
  default:
    return false;
  }
}

bool dpo::structurallyEqual(const FunctionDecl *A, const FunctionDecl *B) {
  if (!A || !B)
    return A == B;
  const FunctionQualifiers &QA = A->qualifiers();
  const FunctionQualifiers &QB = B->qualifiers();
  if (QA.Global != QB.Global || QA.Device != QB.Device || QA.Host != QB.Host)
    return false;
  if (A->name() != B->name() || !(A->returnType() == B->returnType()) ||
      A->params().size() != B->params().size())
    return false;
  for (size_t I = 0; I < A->params().size(); ++I)
    if (!structurallyEqual(A->params()[I], B->params()[I]))
      return false;
  if ((A->body() == nullptr) != (B->body() == nullptr))
    return false;
  return !A->body() || structurallyEqual(A->body(), B->body());
}

bool dpo::structurallyEqual(const TranslationUnit *A,
                            const TranslationUnit *B) {
  if (A->decls().size() != B->decls().size())
    return false;
  for (size_t I = 0; I < A->decls().size(); ++I) {
    const Decl *DA = A->decls()[I];
    const Decl *DB = B->decls()[I];
    if (DA->kind() != DB->kind())
      return false;
    switch (DA->kind()) {
    case DeclKind::Raw:
      if (cast<RawDecl>(DA)->text() != cast<RawDecl>(DB)->text())
        return false;
      break;
    case DeclKind::Var:
      if (!structurallyEqual(cast<VarDecl>(DA), cast<VarDecl>(DB)))
        return false;
      break;
    case DeclKind::Function:
      if (!structurallyEqual(cast<FunctionDecl>(DA), cast<FunctionDecl>(DB)))
        return false;
      break;
    case DeclKind::TranslationUnit:
      return false;
    }
  }
  return true;
}
