//===--- ASTPrinter.cpp -------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include "support/Casting.h"

#include <cassert>
#include <sstream>

using namespace dpo;

unsigned Type::storeSizeBytes() const {
  if (isPointer())
    return 8;
  switch (Kind) {
  case BuiltinKind::Void: return 0;
  case BuiltinKind::Bool:
  case BuiltinKind::Char:
  case BuiltinKind::UChar: return 1;
  case BuiltinKind::Short:
  case BuiltinKind::UShort: return 2;
  case BuiltinKind::Int:
  case BuiltinKind::UInt:
  case BuiltinKind::Float: return 4;
  case BuiltinKind::Long:
  case BuiltinKind::ULong:
  case BuiltinKind::LongLong:
  case BuiltinKind::ULongLong:
  case BuiltinKind::Double: return 8;
  case BuiltinKind::Dim3: return 12;
  case BuiltinKind::Named: return 8;
  }
  return 8;
}

std::string Type::str() const {
  std::string Result;
  if (IsConst)
    Result += "const ";
  switch (Kind) {
  case BuiltinKind::Void: Result += "void"; break;
  case BuiltinKind::Bool: Result += "bool"; break;
  case BuiltinKind::Char: Result += "char"; break;
  case BuiltinKind::Short: Result += "short"; break;
  case BuiltinKind::Int: Result += "int"; break;
  case BuiltinKind::Long: Result += "long"; break;
  case BuiltinKind::LongLong: Result += "long long"; break;
  case BuiltinKind::UChar: Result += "unsigned char"; break;
  case BuiltinKind::UShort: Result += "unsigned short"; break;
  case BuiltinKind::UInt: Result += "unsigned int"; break;
  case BuiltinKind::ULong: Result += "unsigned long"; break;
  case BuiltinKind::ULongLong: Result += "unsigned long long"; break;
  case BuiltinKind::Float: Result += "float"; break;
  case BuiltinKind::Double: Result += "double"; break;
  case BuiltinKind::Dim3: Result += "dim3"; break;
  case BuiltinKind::Named: Result += Name; break;
  }
  for (unsigned I = 0; I < PointerDepth; ++I)
    Result += I == 0 ? " *" : "*";
  if (IsRestrict)
    Result += " __restrict__";
  return Result;
}

std::string CallExpr::calleeName() const {
  if (const auto *Ref = dyn_cast<DeclRefExpr>(Callee))
    return Ref->name();
  return std::string();
}

bool dpo::isAssignmentOp(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Assign:
  case BinaryOpKind::MulAssign:
  case BinaryOpKind::DivAssign:
  case BinaryOpKind::RemAssign:
  case BinaryOpKind::AddAssign:
  case BinaryOpKind::SubAssign:
  case BinaryOpKind::ShlAssign:
  case BinaryOpKind::ShrAssign:
  case BinaryOpKind::AndAssign:
  case BinaryOpKind::XorAssign:
  case BinaryOpKind::OrAssign:
    return true;
  default:
    return false;
  }
}

BinaryOpKind dpo::compoundAssignBaseOp(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::MulAssign: return BinaryOpKind::Mul;
  case BinaryOpKind::DivAssign: return BinaryOpKind::Div;
  case BinaryOpKind::RemAssign: return BinaryOpKind::Rem;
  case BinaryOpKind::AddAssign: return BinaryOpKind::Add;
  case BinaryOpKind::SubAssign: return BinaryOpKind::Sub;
  case BinaryOpKind::ShlAssign: return BinaryOpKind::Shl;
  case BinaryOpKind::ShrAssign: return BinaryOpKind::Shr;
  case BinaryOpKind::AndAssign: return BinaryOpKind::BitAnd;
  case BinaryOpKind::XorAssign: return BinaryOpKind::BitXor;
  case BinaryOpKind::OrAssign: return BinaryOpKind::BitOr;
  default:
    assert(false && "not a compound assignment");
    return Op;
  }
}

std::string_view dpo::binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Mul: return "*";
  case BinaryOpKind::Div: return "/";
  case BinaryOpKind::Rem: return "%";
  case BinaryOpKind::Add: return "+";
  case BinaryOpKind::Sub: return "-";
  case BinaryOpKind::Shl: return "<<";
  case BinaryOpKind::Shr: return ">>";
  case BinaryOpKind::LT: return "<";
  case BinaryOpKind::GT: return ">";
  case BinaryOpKind::LE: return "<=";
  case BinaryOpKind::GE: return ">=";
  case BinaryOpKind::EQ: return "==";
  case BinaryOpKind::NE: return "!=";
  case BinaryOpKind::BitAnd: return "&";
  case BinaryOpKind::BitXor: return "^";
  case BinaryOpKind::BitOr: return "|";
  case BinaryOpKind::LAnd: return "&&";
  case BinaryOpKind::LOr: return "||";
  case BinaryOpKind::Assign: return "=";
  case BinaryOpKind::MulAssign: return "*=";
  case BinaryOpKind::DivAssign: return "/=";
  case BinaryOpKind::RemAssign: return "%=";
  case BinaryOpKind::AddAssign: return "+=";
  case BinaryOpKind::SubAssign: return "-=";
  case BinaryOpKind::ShlAssign: return "<<=";
  case BinaryOpKind::ShrAssign: return ">>=";
  case BinaryOpKind::AndAssign: return "&=";
  case BinaryOpKind::XorAssign: return "^=";
  case BinaryOpKind::OrAssign: return "|=";
  case BinaryOpKind::Comma: return ",";
  }
  return "?";
}

std::string_view dpo::unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Plus: return "+";
  case UnaryOpKind::Minus: return "-";
  case UnaryOpKind::Not: return "!";
  case UnaryOpKind::BitNot: return "~";
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PostInc: return "++";
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostDec: return "--";
  case UnaryOpKind::Deref: return "*";
  case UnaryOpKind::AddrOf: return "&";
  }
  return "?";
}

namespace {

/// C operator precedence levels; larger binds tighter.
enum Precedence : unsigned {
  PrecComma = 1,
  PrecAssign = 2,
  PrecConditional = 3,
  PrecLOr = 4,
  PrecLAnd = 5,
  PrecBitOr = 6,
  PrecBitXor = 7,
  PrecBitAnd = 8,
  PrecEquality = 9,
  PrecRelational = 10,
  PrecShift = 11,
  PrecAdditive = 12,
  PrecMultiplicative = 13,
  PrecUnary = 14,
  PrecPostfix = 15,
  PrecPrimary = 16,
};

unsigned binaryPrecedence(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
  case BinaryOpKind::Rem:
    return PrecMultiplicative;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    return PrecAdditive;
  case BinaryOpKind::Shl:
  case BinaryOpKind::Shr:
    return PrecShift;
  case BinaryOpKind::LT:
  case BinaryOpKind::GT:
  case BinaryOpKind::LE:
  case BinaryOpKind::GE:
    return PrecRelational;
  case BinaryOpKind::EQ:
  case BinaryOpKind::NE:
    return PrecEquality;
  case BinaryOpKind::BitAnd:
    return PrecBitAnd;
  case BinaryOpKind::BitXor:
    return PrecBitXor;
  case BinaryOpKind::BitOr:
    return PrecBitOr;
  case BinaryOpKind::LAnd:
    return PrecLAnd;
  case BinaryOpKind::LOr:
    return PrecLOr;
  case BinaryOpKind::Comma:
    return PrecComma;
  default:
    return PrecAssign;
  }
}

class Printer {
public:
  explicit Printer(std::ostringstream &OS) : OS(OS) {}

  std::string exprText(const Expr *E, unsigned MinPrec);
  void stmt(const Stmt *S, unsigned Indent, bool SuppressIndent = false);
  void varDeclGroup(const std::vector<VarDecl *> &Decls);
  void declarator(const VarDecl *D, bool WithBaseType);

private:
  unsigned precedenceOf(const Expr *E) {
    switch (E->kind()) {
    case StmtKind::Binary:
      return binaryPrecedence(cast<BinaryOperator>(E)->op());
    case StmtKind::Conditional:
      return PrecConditional;
    case StmtKind::Unary:
      return cast<UnaryOperator>(E)->isPostfix() ? PrecPostfix : PrecUnary;
    case StmtKind::Cast:
      return PrecUnary;
    case StmtKind::Member:
    case StmtKind::ArraySubscript:
    case StmtKind::Call:
      return PrecPostfix;
    default:
      return PrecPrimary;
    }
  }

  std::string render(const Expr *E);

  /// Prints a statement controlled by if/for/while. Compound bodies open on
  /// the header line; other bodies go on the next line, indented one level.
  /// Returns true if the body was braced (so the caller can join `else`).
  bool controlled(const Stmt *Body, unsigned Indent);

  std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

  std::ostringstream &OS;
};

std::string Printer::exprText(const Expr *E, unsigned MinPrec) {
  std::string Text = render(E);
  if (precedenceOf(E) < MinPrec)
    return "(" + Text + ")";
  return Text;
}

std::string Printer::render(const Expr *E) {
  switch (E->kind()) {
  case StmtKind::IntegerLit: {
    const auto *Lit = cast<IntegerLiteral>(E);
    if (!Lit->spelling().empty())
      return Lit->spelling();
    return std::to_string(Lit->value());
  }
  case StmtKind::FloatLit: {
    const auto *Lit = cast<FloatLiteral>(E);
    if (!Lit->spelling().empty())
      return Lit->spelling();
    std::ostringstream Tmp;
    Tmp << Lit->value();
    std::string Text = Tmp.str();
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos)
      Text += ".0";
    return Text;
  }
  case StmtKind::BoolLit:
    return cast<BoolLiteral>(E)->value() ? "true" : "false";
  case StmtKind::StringLit:
    return cast<StringLiteral>(E)->spelling();
  case StmtKind::DeclRef:
    return cast<DeclRefExpr>(E)->name();
  case StmtKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    return exprText(M->base(), PrecPostfix) + (M->isArrow() ? "->" : ".") +
           M->member();
  }
  case StmtKind::ArraySubscript: {
    const auto *Sub = cast<ArraySubscriptExpr>(E);
    return exprText(Sub->base(), PrecPostfix) + "[" +
           exprText(Sub->index(), PrecComma) + "]";
  }
  case StmtKind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::string Text = exprText(Call->callee(), PrecPostfix) + "(";
    for (size_t I = 0; I < Call->args().size(); ++I) {
      if (I != 0)
        Text += ", ";
      Text += exprText(Call->args()[I], PrecAssign);
    }
    return Text + ")";
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryOperator>(E);
    if (U->isPostfix())
      return exprText(U->operand(), PrecPostfix) +
             std::string(unaryOpSpelling(U->op()));
    std::string Operand = exprText(U->operand(), PrecUnary);
    std::string Spelling(unaryOpSpelling(U->op()));
    // `- -x` must not become `--x`; `+ +x` must not become `++x`.
    if ((Spelling == "-" && Operand.starts_with('-')) ||
        (Spelling == "+" && Operand.starts_with('+')))
      return Spelling + " " + Operand;
    return Spelling + Operand;
  }
  case StmtKind::Binary: {
    const auto *B = cast<BinaryOperator>(E);
    unsigned Prec = binaryPrecedence(B->op());
    if (isAssignmentOp(B->op()))
      return exprText(B->lhs(), PrecUnary) + " " +
             std::string(binaryOpSpelling(B->op())) + " " +
             exprText(B->rhs(), PrecAssign);
    if (B->op() == BinaryOpKind::Comma)
      return exprText(B->lhs(), PrecComma) + ", " +
             exprText(B->rhs(), PrecAssign);
    return exprText(B->lhs(), Prec) + " " +
           std::string(binaryOpSpelling(B->op())) + " " +
           exprText(B->rhs(), Prec + 1);
  }
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalOperator>(E);
    return exprText(C->cond(), PrecLOr) + " ? " +
           exprText(C->trueExpr(), PrecAssign) + " : " +
           exprText(C->falseExpr(), PrecConditional);
  }
  case StmtKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    return "(" + C->type().str() + ")" + exprText(C->operand(), PrecUnary);
  }
  case StmtKind::Paren:
    return "(" + exprText(cast<ParenExpr>(E)->inner(), PrecComma) + ")";
  case StmtKind::SizeofE:
    return "sizeof(" + cast<SizeofExpr>(E)->queriedType().str() + ")";
  case StmtKind::Launch: {
    const auto *L = cast<LaunchExpr>(E);
    std::string Text = L->kernel() + "<<<" +
                       exprText(L->gridDim(), PrecAssign) + ", " +
                       exprText(L->blockDim(), PrecAssign);
    if (L->sharedMem()) {
      Text += ", " + exprText(L->sharedMem(), PrecAssign);
      if (L->stream())
        Text += ", " + exprText(L->stream(), PrecAssign);
    }
    Text += ">>>(";
    for (size_t I = 0; I < L->args().size(); ++I) {
      if (I != 0)
        Text += ", ";
      Text += exprText(L->args()[I], PrecAssign);
    }
    return Text + ")";
  }
  default:
    assert(false && "render called on a non-expression");
    return std::string();
  }
}

void Printer::declarator(const VarDecl *D, bool WithBaseType) {
  if (WithBaseType) {
    if (D->isShared())
      OS << "__shared__ ";
    std::string TypeText = D->type().str();
    OS << TypeText;
    if (!TypeText.empty() && TypeText.back() != '*')
      OS << ' ';
  } else {
    for (unsigned I = 0; I < D->type().pointerDepth(); ++I)
      OS << '*';
  }
  OS << D->name();
  for (const Expr *Dim : D->arrayDims())
    OS << '[' << exprText(Dim, PrecComma) << ']';
  if (D->init())
    OS << " = " << exprText(D->init(), PrecAssign);
}

void Printer::varDeclGroup(const std::vector<VarDecl *> &Decls) {
  assert(!Decls.empty() && "empty declaration group");
  declarator(Decls.front(), /*WithBaseType=*/true);
  for (size_t I = 1; I < Decls.size(); ++I) {
    OS << ", ";
    declarator(Decls[I], /*WithBaseType=*/false);
  }
}

bool Printer::controlled(const Stmt *Body, unsigned Indent) {
  if (Body && isa<CompoundStmt>(Body)) {
    OS << " {\n";
    for (const Stmt *Child : cast<CompoundStmt>(Body)->body())
      stmt(Child, Indent + 1);
    OS << pad(Indent) << "}";
    return true;
  }
  OS << "\n";
  stmt(Body, Indent + 1);
  return false;
}

void Printer::stmt(const Stmt *S, unsigned Indent, bool SuppressIndent) {
  std::string Pad = SuppressIndent ? std::string() : pad(Indent);
  if (!S) {
    OS << Pad << ";\n";
    return;
  }

  if (const auto *E = dyn_cast<Expr>(S)) {
    OS << Pad << exprText(E, PrecComma) << ";\n";
    return;
  }

  switch (S->kind()) {
  case StmtKind::Compound: {
    OS << Pad << "{\n";
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      stmt(Child, Indent + 1);
    OS << pad(Indent) << "}\n";
    return;
  }
  case StmtKind::DeclS:
    OS << Pad;
    varDeclGroup(cast<DeclStmt>(S)->decls());
    OS << ";\n";
    return;
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    OS << Pad << "if (" << exprText(If->cond(), PrecComma) << ")";
    bool Braced = controlled(If->thenStmt(), Indent);
    if (!If->elseStmt()) {
      if (Braced)
        OS << "\n";
      return;
    }
    if (Braced)
      OS << " else";
    else
      OS << pad(Indent) << "else";
    if (const auto *ElseIf = dyn_cast<IfStmt>(If->elseStmt())) {
      OS << ' ';
      stmt(ElseIf, Indent, /*SuppressIndent=*/true);
      return;
    }
    bool ElseBraced = controlled(If->elseStmt(), Indent);
    if (ElseBraced)
      OS << "\n";
    return;
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    OS << Pad << "for (";
    if (const Stmt *Init = For->init()) {
      if (const auto *DS = dyn_cast<DeclStmt>(Init))
        varDeclGroup(DS->decls());
      else if (const auto *E = dyn_cast<Expr>(Init))
        OS << exprText(E, PrecComma);
    }
    OS << "; ";
    if (For->cond())
      OS << exprText(For->cond(), PrecComma);
    OS << "; ";
    if (For->inc())
      OS << exprText(For->inc(), PrecComma);
    OS << ")";
    if (controlled(For->body(), Indent))
      OS << "\n";
    return;
  }
  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    OS << Pad << "while (" << exprText(While->cond(), PrecComma) << ")";
    if (controlled(While->body(), Indent))
      OS << "\n";
    return;
  }
  case StmtKind::Do: {
    const auto *Do = cast<DoStmt>(S);
    OS << Pad << "do";
    bool Braced = controlled(Do->body(), Indent);
    if (Braced)
      OS << " while (" << exprText(Do->cond(), PrecComma) << ");\n";
    else
      OS << pad(Indent) << "while (" << exprText(Do->cond(), PrecComma)
         << ");\n";
    return;
  }
  case StmtKind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    OS << Pad << "return";
    if (Ret->value())
      OS << ' ' << exprText(Ret->value(), PrecComma);
    OS << ";\n";
    return;
  }
  case StmtKind::Break:
    OS << Pad << "break;\n";
    return;
  case StmtKind::Continue:
    OS << Pad << "continue;\n";
    return;
  case StmtKind::Null:
    OS << Pad << ";\n";
    return;
  default:
    assert(false && "unhandled statement kind in printStmt");
  }
}

} // namespace

std::string dpo::printExpr(const Expr *E) {
  std::ostringstream OS;
  Printer P(OS);
  return P.exprText(E, PrecComma);
}

std::string dpo::printStmt(const Stmt *S, unsigned Indent) {
  std::ostringstream OS;
  Printer P(OS);
  P.stmt(S, Indent);
  return OS.str();
}

std::string dpo::printDecl(const Decl *D) {
  std::ostringstream OS;
  switch (D->kind()) {
  case DeclKind::Raw:
    OS << cast<RawDecl>(D)->text() << '\n';
    break;
  case DeclKind::Var: {
    Printer P(OS);
    std::vector<VarDecl *> Group = {const_cast<VarDecl *>(cast<VarDecl>(D))};
    P.varDeclGroup(Group);
    OS << ";\n";
    break;
  }
  case DeclKind::Function: {
    const auto *F = cast<FunctionDecl>(D);
    const FunctionQualifiers &Q = F->qualifiers();
    if (Q.Extern)
      OS << "extern ";
    if (Q.Static)
      OS << "static ";
    if (Q.Global)
      OS << "__global__ ";
    if (Q.Device)
      OS << "__device__ ";
    if (Q.Host)
      OS << "__host__ ";
    if (Q.ForceInline)
      OS << "__forceinline__ ";
    if (Q.Inline)
      OS << "inline ";
    std::string RetText = F->returnType().str();
    OS << RetText;
    if (!RetText.empty() && RetText.back() != '*')
      OS << ' ';
    OS << F->name() << '(';
    Printer P(OS);
    for (size_t I = 0; I < F->params().size(); ++I) {
      if (I != 0)
        OS << ", ";
      P.declarator(F->params()[I], /*WithBaseType=*/true);
    }
    OS << ')';
    if (F->body()) {
      OS << ' ';
      std::ostringstream Body;
      Printer BP(Body);
      BP.stmt(F->body(), 0);
      std::string Text = Body.str();
      OS << Text.substr(Text.find('{'));
    } else {
      OS << ";\n";
    }
    break;
  }
  case DeclKind::TranslationUnit:
    return printTranslationUnit(cast<TranslationUnit>(D));
  }
  return OS.str();
}

std::string dpo::printTranslationUnit(const TranslationUnit *TU) {
  std::string Result;
  for (const Decl *D : TU->decls()) {
    Result += printDecl(D);
    if (!isa<RawDecl>(D))
      Result += '\n';
  }
  return Result;
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  FunctionDecl *Declaration = nullptr;
  for (Decl *D : Decls) {
    if (auto *F = dyn_cast<FunctionDecl>(D)) {
      if (F->name() != Name)
        continue;
      if (F->isDefinition())
        return F;
      Declaration = F;
    }
  }
  return Declaration;
}

std::vector<FunctionDecl *> TranslationUnit::kernels() const {
  std::vector<FunctionDecl *> Result;
  for (Decl *D : Decls)
    if (auto *F = dyn_cast<FunctionDecl>(D))
      if (F->isKernel() && F->isDefinition())
        Result.push_back(F);
  return Result;
}
