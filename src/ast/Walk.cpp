//===--- Walk.cpp -----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Walk.h"

#include "support/Casting.h"

using namespace dpo;

namespace {

/// Enumerates every direct child slot of a statement. Expression slots and
/// statement slots are reported through separate callbacks so rewriters can
/// keep the Expr/Stmt typing.
struct SlotVisitor {
  std::function<void(Expr *&)> ExprSlot;
  std::function<void(Stmt *&)> StmtSlot;

  void visitChildren(Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Compound:
      for (Stmt *&Child : cast<CompoundStmt>(S)->body())
        stmt(Child);
      return;
    case StmtKind::DeclS:
      for (VarDecl *D : cast<DeclStmt>(S)->decls()) {
        if (D->initSlot())
          expr(D->initSlot());
        for (Expr *&Dim : D->arrayDims())
          expr(Dim);
      }
      return;
    case StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      expr(If->condSlot());
      stmt(If->thenSlot());
      if (If->elseSlot())
        stmt(If->elseSlot());
      return;
    }
    case StmtKind::For: {
      auto *For = cast<ForStmt>(S);
      if (For->initSlot())
        stmt(For->initSlot());
      if (For->condSlot())
        expr(For->condSlot());
      if (For->incSlot())
        expr(For->incSlot());
      stmt(For->bodySlot());
      return;
    }
    case StmtKind::While: {
      auto *While = cast<WhileStmt>(S);
      expr(While->condSlot());
      stmt(While->bodySlot());
      return;
    }
    case StmtKind::Do: {
      auto *Do = cast<DoStmt>(S);
      stmt(Do->bodySlot());
      expr(Do->condSlot());
      return;
    }
    case StmtKind::Return: {
      auto *Ret = cast<ReturnStmt>(S);
      if (Ret->valueSlot())
        expr(Ret->valueSlot());
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
      return;
    case StmtKind::IntegerLit:
    case StmtKind::FloatLit:
    case StmtKind::BoolLit:
    case StmtKind::StringLit:
    case StmtKind::DeclRef:
    case StmtKind::SizeofE:
      return;
    case StmtKind::Member:
      expr(cast<MemberExpr>(S)->baseSlot());
      return;
    case StmtKind::ArraySubscript: {
      auto *Sub = cast<ArraySubscriptExpr>(S);
      expr(Sub->baseSlot());
      expr(Sub->indexSlot());
      return;
    }
    case StmtKind::Call: {
      auto *Call = cast<CallExpr>(S);
      expr(Call->calleeSlot());
      for (Expr *&Arg : Call->args())
        expr(Arg);
      return;
    }
    case StmtKind::Unary:
      expr(cast<UnaryOperator>(S)->operandSlot());
      return;
    case StmtKind::Binary: {
      auto *Bin = cast<BinaryOperator>(S);
      expr(Bin->lhsSlot());
      expr(Bin->rhsSlot());
      return;
    }
    case StmtKind::Conditional: {
      auto *Cond = cast<ConditionalOperator>(S);
      expr(Cond->condSlot());
      expr(Cond->trueSlot());
      expr(Cond->falseSlot());
      return;
    }
    case StmtKind::Cast:
      expr(cast<CastExpr>(S)->operandSlot());
      return;
    case StmtKind::Paren:
      expr(cast<ParenExpr>(S)->innerSlot());
      return;
    case StmtKind::Launch: {
      auto *Launch = cast<LaunchExpr>(S);
      expr(Launch->gridDimSlot());
      expr(Launch->blockDimSlot());
      if (Launch->sharedMemSlot())
        expr(Launch->sharedMemSlot());
      if (Launch->streamSlot())
        expr(Launch->streamSlot());
      for (Expr *&Arg : Launch->args())
        expr(Arg);
      return;
    }
    }
  }

private:
  void expr(Expr *&Slot) {
    if (ExprSlot)
      ExprSlot(Slot);
  }
  void stmt(Stmt *&Slot) {
    if (StmtSlot)
      StmtSlot(Slot);
  }
};

} // namespace

void dpo::forEachStmt(Stmt *S, const std::function<void(Stmt *)> &Fn) {
  if (!S)
    return;
  Fn(S);
  SlotVisitor V;
  V.ExprSlot = [&](Expr *&Child) { forEachStmt(Child, Fn); };
  V.StmtSlot = [&](Stmt *&Child) { forEachStmt(Child, Fn); };
  V.visitChildren(S);
}

void dpo::forEachExpr(Stmt *S, const std::function<void(Expr *)> &Fn) {
  forEachStmt(S, [&](Stmt *Node) {
    if (auto *E = dyn_cast<Expr>(Node))
      Fn(E);
  });
}

void dpo::forEachStmt(const Stmt *S,
                      const std::function<void(const Stmt *)> &Fn) {
  forEachStmt(const_cast<Stmt *>(S),
              [&](Stmt *Node) { Fn(static_cast<const Stmt *>(Node)); });
}

void dpo::forEachExpr(const Stmt *S,
                      const std::function<void(const Expr *)> &Fn) {
  forEachExpr(const_cast<Stmt *>(S),
              [&](Expr *Node) { Fn(static_cast<const Expr *>(Node)); });
}

void dpo::rewriteExprSlot(Expr *&Slot,
                          const std::function<Expr *(Expr *)> &Fn) {
  if (!Slot)
    return;
  SlotVisitor V;
  V.ExprSlot = [&](Expr *&Child) { rewriteExprSlot(Child, Fn); };
  V.StmtSlot = [&](Stmt *&Child) { rewriteExprs(Child, Fn); };
  V.visitChildren(Slot);
  if (Expr *Replacement = Fn(Slot))
    Slot = Replacement;
}

void dpo::rewriteExprs(Stmt *Root, const std::function<Expr *(Expr *)> &Fn) {
  if (!Root)
    return;
  // When the root is itself an expression we cannot replace the caller's
  // pointer, but we can rewrite everything below it.
  SlotVisitor V;
  V.ExprSlot = [&](Expr *&Child) { rewriteExprSlot(Child, Fn); };
  V.StmtSlot = [&](Stmt *&Child) { rewriteExprs(Child, Fn); };
  V.visitChildren(Root);
}

void dpo::rewriteStmts(Stmt *Root, const std::function<Stmt *(Stmt *)> &Fn) {
  if (!Root)
    return;
  SlotVisitor V;
  V.StmtSlot = [&](Stmt *&Child) {
    rewriteStmts(Child, Fn);
    if (Stmt *Replacement = Fn(Child))
      Child = Replacement;
  };
  // Expressions nested inside other expressions are not statement positions;
  // do not descend through ExprSlot.
  V.visitChildren(Root);
}
