//===--- Equivalence.h - Structural AST comparison ---------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality of AST subtrees, ignoring transparent parentheses
/// and literal spellings (0x10 == 16). Used by round-trip tests
/// (parse(print(parse(s))) must equal parse(s)) and by transformation tests
/// that compare pass output against hand-built expected trees.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_EQUIVALENCE_H
#define DPO_AST_EQUIVALENCE_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

namespace dpo {

bool structurallyEqual(const Expr *A, const Expr *B);
bool structurallyEqual(const Stmt *A, const Stmt *B);
bool structurallyEqual(const VarDecl *A, const VarDecl *B);
bool structurallyEqual(const FunctionDecl *A, const FunctionDecl *B);
bool structurallyEqual(const TranslationUnit *A, const TranslationUnit *B);

} // namespace dpo

#endif // DPO_AST_EQUIVALENCE_H
