//===--- Walk.h - AST traversal and in-place rewriting ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traversal helpers used by analyses and passes. Two families:
///
///  - forEachStmt / forEachExpr: read-only pre-order walks.
///  - rewriteExprs / rewriteStmts: bottom-up rewrites that can replace any
///    expression (or statement) slot in place.
///
/// Walks descend into DeclStmt initializers and array dimensions, and into
/// every launch-expression operand (grid/block dims, shared-mem, stream,
/// arguments).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_WALK_H
#define DPO_AST_WALK_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

#include <functional>

namespace dpo {

/// Pre-order visit of \p S and every statement/expression below it.
void forEachStmt(Stmt *S, const std::function<void(Stmt *)> &Fn);

/// Pre-order visit of every expression below (and including, if applicable)
/// \p S.
void forEachExpr(Stmt *S, const std::function<void(Expr *)> &Fn);

/// Const overloads.
void forEachStmt(const Stmt *S, const std::function<void(const Stmt *)> &Fn);
void forEachExpr(const Stmt *S, const std::function<void(const Expr *)> &Fn);

/// Bottom-up expression rewrite. For every expression slot in the tree under
/// \p Root (children first), calls \p Fn; a non-null result replaces the
/// slot. Returning null keeps the existing node. When \p Root itself is an
/// expression, the caller's pointer cannot be rewritten; use the slot-based
/// overload for that.
void rewriteExprs(Stmt *Root, const std::function<Expr *(Expr *)> &Fn);

/// Slot-based variant that can also replace the root expression.
void rewriteExprSlot(Expr *&Slot, const std::function<Expr *(Expr *)> &Fn);

/// Bottom-up statement rewrite: visits every statement slot (compound-body
/// entries, if/else branches, loop bodies) under \p Root, children first.
/// A non-null result from \p Fn replaces the slot. Expressions used as
/// statements are visited too (they are statements).
void rewriteStmts(Stmt *Root, const std::function<Stmt *(Stmt *)> &Fn);

} // namespace dpo

#endif // DPO_AST_WALK_H
