//===--- Type.h - Value-semantics type representation ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types in the CUDA-C subset. A source-to-source tool needs just enough
/// type structure to re-print declarations faithfully and to drive the
/// bytecode compiler's int/float decisions, so Type is a small value type:
/// a builtin (or named struct) kind, a pointer depth, and qualifiers.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_TYPE_H
#define DPO_AST_TYPE_H

#include <string>

namespace dpo {

enum class BuiltinKind : unsigned char {
  Void,
  Bool,
  Char,
  Short,
  Int,
  Long,
  LongLong,
  UChar,
  UShort,
  UInt,
  ULong,
  ULongLong,
  Float,
  Double,
  Dim3,  ///< CUDA's dim3 (three unsigned components x, y, z).
  Named, ///< A struct or typedef we treat opaquely.
};

class Type {
public:
  Type() = default;
  explicit Type(BuiltinKind Kind, unsigned PointerDepth = 0,
                bool IsConst = false)
      : Kind(Kind), PointerDepth(PointerDepth), IsConst(IsConst) {}

  static Type named(std::string Name, unsigned PointerDepth = 0) {
    Type T(BuiltinKind::Named, PointerDepth);
    T.Name = std::move(Name);
    return T;
  }

  BuiltinKind kind() const { return Kind; }
  unsigned pointerDepth() const { return PointerDepth; }
  bool isConst() const { return IsConst; }
  bool isRestrict() const { return IsRestrict; }
  const std::string &name() const { return Name; }

  void setConst(bool V) { IsConst = V; }
  void setRestrict(bool V) { IsRestrict = V; }

  bool isPointer() const { return PointerDepth > 0; }
  bool isVoid() const { return Kind == BuiltinKind::Void && !isPointer(); }
  bool isDim3() const { return Kind == BuiltinKind::Dim3 && !isPointer(); }

  bool isFloating() const {
    return !isPointer() &&
           (Kind == BuiltinKind::Float || Kind == BuiltinKind::Double);
  }

  bool isInteger() const {
    if (isPointer())
      return false;
    switch (Kind) {
    case BuiltinKind::Bool:
    case BuiltinKind::Char:
    case BuiltinKind::Short:
    case BuiltinKind::Int:
    case BuiltinKind::Long:
    case BuiltinKind::LongLong:
    case BuiltinKind::UChar:
    case BuiltinKind::UShort:
    case BuiltinKind::UInt:
    case BuiltinKind::ULong:
    case BuiltinKind::ULongLong:
      return true;
    default:
      return false;
    }
  }

  bool isUnsigned() const {
    switch (Kind) {
    case BuiltinKind::UChar:
    case BuiltinKind::UShort:
    case BuiltinKind::UInt:
    case BuiltinKind::ULong:
    case BuiltinKind::ULongLong:
      return true;
    default:
      return false;
    }
  }

  /// Type of the object a pointer points at; no-op on non-pointers.
  Type pointee() const {
    Type T = *this;
    if (T.PointerDepth > 0)
      --T.PointerDepth;
    return T;
  }

  Type pointerTo() const {
    Type T = *this;
    ++T.PointerDepth;
    return T;
  }

  /// Size in bytes of a scalar of this type in device memory. Pointers are
  /// 8 bytes; dim3 is 12 (three 32-bit components).
  unsigned storeSizeBytes() const;

  /// Renders the type as C source, e.g. "const unsigned int *".
  std::string str() const;

  friend bool operator==(const Type &A, const Type &B) {
    return A.Kind == B.Kind && A.PointerDepth == B.PointerDepth &&
           A.IsConst == B.IsConst && A.Name == B.Name;
  }

private:
  BuiltinKind Kind = BuiltinKind::Int;
  unsigned PointerDepth = 0;
  bool IsConst = false;
  bool IsRestrict = false;
  std::string Name; ///< Only for BuiltinKind::Named.
};

} // namespace dpo

#endif // DPO_AST_TYPE_H
