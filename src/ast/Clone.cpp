//===--- Clone.cpp ------------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Clone.h"

#include "support/Casting.h"

using namespace dpo;

static std::vector<Expr *> cloneExprs(ASTContext &Ctx,
                                      const std::vector<Expr *> &Exprs) {
  std::vector<Expr *> Result;
  Result.reserve(Exprs.size());
  for (const Expr *E : Exprs)
    Result.push_back(cloneExpr(Ctx, E));
  return Result;
}

Expr *dpo::cloneExpr(ASTContext &Ctx, const Expr *E) {
  if (!E)
    return nullptr;
  Expr *Result = nullptr;
  switch (E->kind()) {
  case StmtKind::IntegerLit: {
    const auto *Lit = cast<IntegerLiteral>(E);
    Result = Ctx.create<IntegerLiteral>(Lit->value(), Lit->spelling());
    break;
  }
  case StmtKind::FloatLit: {
    const auto *Lit = cast<FloatLiteral>(E);
    Result = Ctx.create<FloatLiteral>(Lit->value(), Lit->spelling());
    break;
  }
  case StmtKind::BoolLit:
    Result = Ctx.create<BoolLiteral>(cast<BoolLiteral>(E)->value());
    break;
  case StmtKind::StringLit:
    Result = Ctx.create<StringLiteral>(cast<StringLiteral>(E)->spelling());
    break;
  case StmtKind::DeclRef:
    Result = Ctx.create<DeclRefExpr>(cast<DeclRefExpr>(E)->name());
    break;
  case StmtKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Result = Ctx.create<MemberExpr>(cloneExpr(Ctx, M->base()), M->member(),
                                    M->isArrow());
    break;
  }
  case StmtKind::ArraySubscript: {
    const auto *Sub = cast<ArraySubscriptExpr>(E);
    Result = Ctx.create<ArraySubscriptExpr>(cloneExpr(Ctx, Sub->base()),
                                            cloneExpr(Ctx, Sub->index()));
    break;
  }
  case StmtKind::Call: {
    const auto *Call = cast<CallExpr>(E);
    Result = Ctx.create<CallExpr>(cloneExpr(Ctx, Call->callee()),
                                  cloneExprs(Ctx, Call->args()));
    break;
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryOperator>(E);
    Result = Ctx.create<UnaryOperator>(U->op(), cloneExpr(Ctx, U->operand()));
    break;
  }
  case StmtKind::Binary: {
    const auto *B = cast<BinaryOperator>(E);
    Result = Ctx.create<BinaryOperator>(B->op(), cloneExpr(Ctx, B->lhs()),
                                        cloneExpr(Ctx, B->rhs()));
    break;
  }
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalOperator>(E);
    Result = Ctx.create<ConditionalOperator>(cloneExpr(Ctx, C->cond()),
                                             cloneExpr(Ctx, C->trueExpr()),
                                             cloneExpr(Ctx, C->falseExpr()));
    break;
  }
  case StmtKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    Result = Ctx.create<CastExpr>(C->type(), cloneExpr(Ctx, C->operand()));
    break;
  }
  case StmtKind::Paren:
    Result = Ctx.create<ParenExpr>(cloneExpr(Ctx, cast<ParenExpr>(E)->inner()));
    break;
  case StmtKind::SizeofE:
    Result = Ctx.create<SizeofExpr>(cast<SizeofExpr>(E)->queriedType());
    break;
  case StmtKind::Launch: {
    const auto *L = cast<LaunchExpr>(E);
    Result = Ctx.create<LaunchExpr>(
        L->kernel(), cloneExpr(Ctx, L->gridDim()), cloneExpr(Ctx, L->blockDim()),
        cloneExpr(Ctx, L->sharedMem()), cloneExpr(Ctx, L->stream()),
        cloneExprs(Ctx, L->args()));
    break;
  }
  default:
    assert(false && "cloneExpr on non-expression kind");
    return nullptr;
  }
  Result->setType(E->type());
  Result->setLoc(E->loc());
  return Result;
}

VarDecl *dpo::cloneVarDecl(ASTContext &Ctx, const VarDecl *D) {
  if (!D)
    return nullptr;
  auto *Clone =
      Ctx.create<VarDecl>(D->type(), D->name(), cloneExpr(Ctx, D->init()));
  Clone->setShared(D->isShared());
  Clone->setLoc(D->loc());
  for (const Expr *Dim : D->arrayDims())
    Clone->arrayDims().push_back(cloneExpr(Ctx, Dim));
  return Clone;
}

Stmt *dpo::cloneStmt(ASTContext &Ctx, const Stmt *S) {
  if (!S)
    return nullptr;
  if (const auto *E = dyn_cast<Expr>(S))
    return cloneExpr(Ctx, E);

  Stmt *Result = nullptr;
  switch (S->kind()) {
  case StmtKind::Compound: {
    std::vector<Stmt *> Body;
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      Body.push_back(cloneStmt(Ctx, Child));
    Result = Ctx.create<CompoundStmt>(std::move(Body));
    break;
  }
  case StmtKind::DeclS: {
    std::vector<VarDecl *> Decls;
    for (const VarDecl *D : cast<DeclStmt>(S)->decls())
      Decls.push_back(cloneVarDecl(Ctx, D));
    Result = Ctx.create<DeclStmt>(std::move(Decls));
    break;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    Result = Ctx.create<IfStmt>(cloneExpr(Ctx, If->cond()),
                                cloneStmt(Ctx, If->thenStmt()),
                                cloneStmt(Ctx, If->elseStmt()));
    break;
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    Result = Ctx.create<ForStmt>(
        cloneStmt(Ctx, For->init()), cloneExpr(Ctx, For->cond()),
        cloneExpr(Ctx, For->inc()), cloneStmt(Ctx, For->body()));
    break;
  }
  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    Result = Ctx.create<WhileStmt>(cloneExpr(Ctx, While->cond()),
                                   cloneStmt(Ctx, While->body()));
    break;
  }
  case StmtKind::Do: {
    const auto *Do = cast<DoStmt>(S);
    Result = Ctx.create<DoStmt>(cloneStmt(Ctx, Do->body()),
                                cloneExpr(Ctx, Do->cond()));
    break;
  }
  case StmtKind::Return:
    Result =
        Ctx.create<ReturnStmt>(cloneExpr(Ctx, cast<ReturnStmt>(S)->value()));
    break;
  case StmtKind::Break:
    Result = Ctx.create<BreakStmt>();
    break;
  case StmtKind::Continue:
    Result = Ctx.create<ContinueStmt>();
    break;
  case StmtKind::Null:
    Result = Ctx.create<NullStmt>();
    break;
  default:
    assert(false && "unhandled statement kind in cloneStmt");
    return nullptr;
  }
  Result->setLoc(S->loc());
  return Result;
}

FunctionDecl *dpo::cloneFunction(ASTContext &Ctx, const FunctionDecl *F) {
  if (!F)
    return nullptr;
  std::vector<VarDecl *> Params;
  for (const VarDecl *P : F->params())
    Params.push_back(cloneVarDecl(Ctx, P));
  auto *Body = F->body()
                   ? cast<CompoundStmt>(cloneStmt(Ctx, F->body()))
                   : nullptr;
  auto *Clone = Ctx.create<FunctionDecl>(F->qualifiers(), F->returnType(),
                                         F->name(), std::move(Params), Body);
  Clone->setLoc(F->loc());
  return Clone;
}
