//===--- Workloads.h - The Table I benchmark suite -----------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native implementations of the paper's seven benchmarks. Each run
/// computes (a) the algorithm's actual result, checked against reference
/// implementations in the tests, and (b) the stream of nested-parallelism
/// batches (one per parent kernel invocation) whose per-parent child sizes
/// drive the timing simulator. The batches are identical across execution
/// strategies — No-CDP/CDP/T/C/A only change how the simulator schedules
/// them, exactly as the source transformations only change scheduling, not
/// results (proven separately by the VM equivalence tests).
///
/// Benchmarks (Table I):
///   BFS   breadth-first search; parent per frontier vertex, child per edge
///   SSSP  single-source shortest paths (worklist Bellman-Ford)
///   MSTF  Boruvka minimum-spanning-tree, find-min-edge kernel
///   MSTV  MST verify kernel (one pass over all vertices)
///   SP    survey propagation on random k-SAT
///   TC    triangle counting (edge-iterator with sorted intersections)
///   BT    Bezier line tessellation (CUDA samples)
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_WORKLOADS_H
#define DPO_WORKLOADS_WORKLOADS_H

#include "datasets/Generators.h"
#include "datasets/Graph.h"
#include "rt/LaunchPlan.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace dpo {

constexpr uint32_t UnreachedLevel = std::numeric_limits<uint32_t>::max();
constexpr uint64_t InfDist = std::numeric_limits<uint64_t>::max();

struct WorkloadOutput {
  std::vector<NestedBatch> Batches;

  /// Per-batch parent work lists (the vertices/variables/lines whose child
  /// sizes became the batch's ChildUnits, in batch order): BFS frontiers,
  /// SSSP worklists, Boruvka active-vertex lists, ... An empty entry means
  /// the identity list 0..NumParentThreads-1 (single-sweep kernels). The
  /// VM kernel corpus (KernelSources.h) replays these as the frontier
  /// arrays of real DSL kernels.
  std::vector<std::vector<uint32_t>> ParentItems;

  // Correctness payloads (filled by the relevant workload).
  std::vector<uint32_t> Levels;  ///< BFS level per vertex.
  std::vector<uint64_t> Dist;    ///< SSSP distance per vertex.
  uint64_t MstWeight = 0;        ///< Total Boruvka MST weight.
  uint64_t TriangleCount = 0;    ///< Exact triangle count.
  bool Converged = false;        ///< SP convergence flag.
  double CheckSum = 0;           ///< Numeric digest (BT/MSTV/SP).

  uint64_t totalChildUnits() const {
    uint64_t Sum = 0;
    for (const NestedBatch &B : Batches)
      Sum += B.totalChildUnits();
    return Sum;
  }
};

WorkloadOutput runBfs(const CsrGraph &G, uint32_t Source = 0);
WorkloadOutput runSssp(const CsrGraph &G, uint32_t Source = 0);
WorkloadOutput runMstFind(const CsrGraph &G);
WorkloadOutput runMstVerify(const CsrGraph &G);
WorkloadOutput runTriangleCount(const CsrGraph &G);
WorkloadOutput runSurveyProp(const SatFormula &F, unsigned MaxIters = 24);
WorkloadOutput runBezier(const BezierDataset &D);

} // namespace dpo

#endif // DPO_WORKLOADS_WORKLOADS_H
