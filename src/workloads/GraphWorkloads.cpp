//===--- GraphWorkloads.cpp - BFS, SSSP, MSTF, MSTV, TC -----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

using namespace dpo;

namespace {

/// Builds the batch for one parent kernel invocation over \p Parents, with
/// child sizes given by \p UnitsOf.
template <typename UnitsFn>
NestedBatch makeGraphBatch(const std::vector<uint32_t> &Parents,
                           UnitsFn UnitsOf, uint32_t ChildBlockDim) {
  NestedBatch B;
  B.NumParentThreads = Parents.size();
  B.ParentBlockDim = 128;
  B.ChildBlockDim = ChildBlockDim;
  B.ChildUnits.reserve(Parents.size());
  for (uint32_t V : Parents)
    B.ChildUnits.push_back(UnitsOf(V));
  return B;
}

} // namespace

WorkloadOutput dpo::runBfs(const CsrGraph &G, uint32_t Source) {
  WorkloadOutput Out;
  Out.Levels.assign(G.NumVertices, UnreachedLevel);
  if (G.NumVertices == 0)
    return Out;
  Out.Levels[Source] = 0;
  std::vector<uint32_t> Frontier = {Source};
  std::vector<uint32_t> Next;

  uint32_t Level = 0;
  while (!Frontier.empty()) {
    NestedBatch B = makeGraphBatch(
        Frontier, [&](uint32_t V) { return G.degree(V); }, 128);
    B.ParentCyclesPerThread = 120;
    B.ChildCyclesPerUnit = 45;
    B.SerialCyclesPerUnit = 380;
    B.ChildBlockBaseCycles = 50;
    Out.Batches.push_back(std::move(B));
    Out.ParentItems.push_back(Frontier);

    Next.clear();
    for (uint32_t V : Frontier)
      for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E) {
        uint32_t N = G.Col[E];
        if (Out.Levels[N] == UnreachedLevel) {
          Out.Levels[N] = Level + 1;
          Next.push_back(N);
        }
      }
    Frontier.swap(Next);
    ++Level;
  }
  return Out;
}

WorkloadOutput dpo::runSssp(const CsrGraph &G, uint32_t Source) {
  assert(!G.Weight.empty() && "SSSP needs edge weights");
  WorkloadOutput Out;
  Out.Dist.assign(G.NumVertices, InfDist);
  if (G.NumVertices == 0)
    return Out;
  Out.Dist[Source] = 0;
  std::vector<uint32_t> Worklist = {Source};
  std::vector<uint8_t> InList(G.NumVertices, 0);
  InList[Source] = 1;
  std::vector<uint32_t> Next;

  unsigned Iterations = 0;
  const unsigned MaxIterations = 4000;
  while (!Worklist.empty() && Iterations++ < MaxIterations) {
    NestedBatch B = makeGraphBatch(
        Worklist, [&](uint32_t V) { return G.degree(V); }, 128);
    B.ParentCyclesPerThread = 140;
    B.ChildCyclesPerUnit = 55;
    B.SerialCyclesPerUnit = 450;
    B.ChildBlockBaseCycles = 55;
    Out.Batches.push_back(std::move(B));
    Out.ParentItems.push_back(Worklist);

    Next.clear();
    for (uint32_t V : Worklist)
      InList[V] = 0;
    for (uint32_t V : Worklist) {
      uint64_t DV = Out.Dist[V];
      for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E) {
        uint32_t N = G.Col[E];
        uint64_t Cand = DV + G.Weight[E];
        if (Cand < Out.Dist[N]) {
          Out.Dist[N] = Cand;
          if (!InList[N]) {
            InList[N] = 1;
            Next.push_back(N);
          }
        }
      }
    }
    Worklist.swap(Next);
  }
  return Out;
}

WorkloadOutput dpo::runMstFind(const CsrGraph &G) {
  assert(!G.Weight.empty() && "MST needs edge weights");
  WorkloadOutput Out;
  if (G.NumVertices == 0)
    return Out;

  std::vector<uint32_t> Component(G.NumVertices);
  std::iota(Component.begin(), Component.end(), 0);
  auto Find = [&](uint32_t V) {
    while (Component[V] != V) {
      Component[V] = Component[Component[V]]; // path halving
      V = Component[V];
    }
    return V;
  };

  std::vector<uint32_t> ActiveVertices(G.NumVertices);
  std::iota(ActiveVertices.begin(), ActiveVertices.end(), 0);

  // Boruvka rounds: each round's find kernel scans every active vertex's
  // adjacency (the paper's MSTF kernel launches a child per vertex).
  for (unsigned Round = 0; Round < 64; ++Round) {
    NestedBatch B = makeGraphBatch(
        ActiveVertices, [&](uint32_t V) { return G.degree(V); }, 128);
    B.ParentCyclesPerThread = 150;
    B.ChildCyclesPerUnit = 50;
    B.SerialCyclesPerUnit = 420;
    B.ChildBlockBaseCycles = 60;
    Out.Batches.push_back(std::move(B));
    Out.ParentItems.push_back(ActiveVertices);

    // Per component: cheapest outgoing edge.
    struct Best {
      uint32_t W = UINT32_MAX;
      uint32_t U = 0, V = 0;
    };
    std::unordered_map<uint32_t, Best> Cheapest;
    for (uint32_t U : ActiveVertices) {
      uint32_t CU = Find(U);
      for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E) {
        uint32_t V = G.Col[E];
        uint32_t CV = Find(V);
        if (CU == CV)
          continue;
        uint32_t W = G.Weight[E];
        Best &BU = Cheapest[CU];
        // Deterministic tie-break on (weight, endpoints).
        if (W < BU.W || (W == BU.W && std::minmax(U, V) <
                                          std::minmax(BU.U, BU.V)))
          BU = {W, U, V};
      }
    }
    if (Cheapest.empty())
      break;

    bool Merged = false;
    for (const auto &[C, B2] : Cheapest) {
      uint32_t RU = Find(B2.U);
      uint32_t RV = Find(B2.V);
      if (RU == RV)
        continue;
      Component[std::max(RU, RV)] = std::min(RU, RV);
      Out.MstWeight += B2.W;
      Merged = true;
    }
    if (!Merged)
      break;

    // Active vertices: those in components that still have outgoing edges.
    std::vector<uint32_t> StillActive;
    for (uint32_t U : ActiveVertices) {
      uint32_t CU = Find(U);
      bool HasOut = false;
      for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1] && !HasOut; ++E)
        HasOut = Find(G.Col[E]) != CU;
      if (HasOut)
        StillActive.push_back(U);
    }
    if (StillActive.empty())
      break;
    ActiveVertices.swap(StillActive);
  }
  return Out;
}

WorkloadOutput dpo::runMstVerify(const CsrGraph &G) {
  WorkloadOutput Out;
  std::vector<uint32_t> AllVertices(G.NumVertices);
  std::iota(AllVertices.begin(), AllVertices.end(), 0);
  NestedBatch B = makeGraphBatch(
      AllVertices, [&](uint32_t V) { return G.degree(V); }, 128);
  B.ParentCyclesPerThread = 130;
  B.ChildCyclesPerUnit = 40;
  B.SerialCyclesPerUnit = 350;
  B.ChildBlockBaseCycles = 45;
  Out.Batches.push_back(std::move(B));
  Out.ParentItems.emplace_back(); // identity: every vertex

  // Verification digest: per-vertex min incident weight summed (the verify
  // kernel checks local minimality; this digest pins its result).
  double Sum = 0;
  for (uint32_t V = 0; V < G.NumVertices; ++V) {
    uint32_t MinW = UINT32_MAX;
    for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E)
      MinW = std::min(MinW, G.Weight.empty() ? 1 : G.Weight[E]);
    if (MinW != UINT32_MAX)
      Sum += MinW;
  }
  Out.CheckSum = Sum;
  return Out;
}

WorkloadOutput dpo::runTriangleCount(const CsrGraph &G) {
  WorkloadOutput Out;

  // Sorted adjacency restricted to higher-numbered neighbors.
  std::vector<std::vector<uint32_t>> Fwd(G.NumVertices);
  for (uint32_t U = 0; U < G.NumVertices; ++U) {
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E)
      if (G.Col[E] > U)
        Fwd[U].push_back(G.Col[E]);
    std::sort(Fwd[U].begin(), Fwd[U].end());
    Fwd[U].erase(std::unique(Fwd[U].begin(), Fwd[U].end()), Fwd[U].end());
  }

  // The TC parent iterates vertices; the child processes the forward
  // adjacency (one unit per forward neighbor, each an intersection).
  std::vector<uint32_t> AllVertices(G.NumVertices);
  std::iota(AllVertices.begin(), AllVertices.end(), 0);
  NestedBatch B = makeGraphBatch(
      AllVertices, [&](uint32_t V) { return (uint32_t)Fwd[V].size(); }, 128);
  double AvgDeg = std::max(1.0, G.avgDegree());
  B.ParentCyclesPerThread = 130;
  B.ChildCyclesPerUnit = 30 + 14 * std::log2(AvgDeg + 1);
  B.SerialCyclesPerUnit = B.ChildCyclesPerUnit * 6.0;
  B.ChildBlockBaseCycles = 55;
  Out.Batches.push_back(std::move(B));
  Out.ParentItems.emplace_back(); // identity: every vertex

  uint64_t Count = 0;
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t V : Fwd[U]) {
      // |Fwd(U) ∩ Fwd(V)| counts triangles U < V < W exactly once.
      const auto &A = Fwd[U];
      const auto &C = Fwd[V];
      size_t I = 0, J = 0;
      while (I < A.size() && J < C.size()) {
        if (A[I] < C[J])
          ++I;
        else if (A[I] > C[J])
          ++J;
        else {
          ++Count;
          ++I;
          ++J;
        }
      }
    }
  Out.TriangleCount = Count;
  return Out;
}
