//===--- Differential.h - End-to-end VM vs. native verification ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential verification harness: run a Table I kernel case
/// (KernelSources.h) end to end on the bytecode VM — dataset staged into
/// device memory, rounds driven from the host exactly as the native
/// reference drives them, frontiers/worklists computed *by the VM
/// kernels* — and compare the correctness payload (BFS levels, SSSP
/// distances, MST weight, triangle count, SP/BT checksums) against the
/// native implementation, demanding exact equality (bit-identical for the
/// double-valued checksums; the DSL sources mirror the native operation
/// order to make that a fair demand).
///
/// The harness runs each source through an arbitrary textual pass
/// pipeline first (empty = untransformed) and through the bytecode
/// peephole optimizer on or off, so the same payload check covers every
/// layer that could silently change semantics: parser, pass pipeline (in
/// any registered order), bytecode lowering, optimizer, interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_DIFFERENTIAL_H
#define DPO_WORKLOADS_DIFFERENTIAL_H

#include "profile/Profile.h"
#include "vm/VM.h"
#include "workloads/KernelSources.h"

#include <string>
#include <string_view>
#include <vector>

namespace dpo {

/// One VM execution of a kernel case through one pipeline.
struct DifferentialRun {
  bool Ok = false;
  std::string Error; ///< Transform / compile / VM failure (when !Ok).
  /// VM-computed payload in the native WorkloadOutput shape (payload
  /// fields only; Batches stays empty).
  WorkloadOutput Payload;
  VmStats Stats;
  /// Per-grid execution records, captured when the run asked for them
  /// (runKernelCaseOnVmProgram with CaptureGridLog): the service-axis
  /// tests compare these across cached-artifact and in-memory programs.
  std::vector<GridRecord> GridLog;
  /// The source that actually executed (post-transform), for diagnosis.
  std::string TransformedSource;
};

/// Transforms Case's DSL source through \p PipelineText (empty =
/// untransformed), lowers to bytecode with the peephole optimizer on or
/// off, and executes the full algorithm on the VM. \p Workers pins the
/// device worker count (0 keeps the DPO_VM_WORKERS default); the payload
/// contract holds at every worker count — the corpus kernels claim work
/// through real atomics — which is what the worker-axis differential
/// tests assert. \p Mode pins the execution engine (Auto keeps the
/// DPO_VM_EXEC default); Steps must be bit-identical across engines,
/// which is what the engine-axis differential tests assert.
///
/// \p ProfileIn (optional, not owned) backs the `profile` parameter of
/// pipeline passes (`threshold[profile]`, `speculate[profile]`, ...).
/// \p ProfileOut, when non-null, turns the device grid log on and
/// receives the harvested per-site profile of this run — the
/// profile-guided workflow's record step.
DifferentialRun runKernelCaseOnVm(const KernelCase &Case,
                                  std::string_view PipelineText,
                                  bool OptimizeBytecode,
                                  uint64_t MemoryBytes = 16ull << 20,
                                  unsigned Workers = 0,
                                  ExecMode Mode = ExecMode::Auto,
                                  const LaunchProfile *ProfileIn = nullptr,
                                  LaunchProfile *ProfileOut = nullptr);

/// As runKernelCaseOnVm, but executes a precompiled \p Program instead of
/// transforming and compiling Case's source — the service path: a program
/// deserialized from a cached artifact must drive the full algorithm
/// exactly like one compiled in-process, which is what the service-axis
/// differential tests assert. \p CaptureGridLog turns the device grid log
/// on and copies it into DifferentialRun::GridLog for record-level
/// comparison. TransformedSource stays empty (the caller owns the source).
DifferentialRun runKernelCaseOnVmProgram(const KernelCase &Case,
                                         VmProgram Program,
                                         uint64_t MemoryBytes = 16ull << 20,
                                         unsigned Workers = 0,
                                         ExecMode Mode = ExecMode::Auto,
                                         bool CaptureGridLog = false,
                                         LaunchProfile *ProfileOut = nullptr);

/// Exact payload comparison for \p Bench. Returns true on a match; on
/// mismatch \p Why describes the first divergence.
bool payloadsMatch(BenchmarkId Bench, const WorkloadOutput &Native,
                   const WorkloadOutput &Vm, std::string &Why);

/// The pipeline matrix of the differential suite: untransformed, each
/// pass alone across its knob range, the paper-ordered combinations, and
/// the reversed orderings only spellable through -passes=. Every entry
/// parses through the PassRegistry.
const std::vector<std::string> &differentialPipelines();

} // namespace dpo

#endif // DPO_WORKLOADS_DIFFERENTIAL_H
