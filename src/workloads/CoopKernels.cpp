//===--- CoopKernels.cpp --------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/CoopKernels.h"

#include "datasets/Generators.h"
#include "parse/Parser.h"
#include "transform/Pipeline.h"
#include "vm/Compiler.h"
#include "workloads/VmWorkload.h"

#include <algorithm>

using namespace dpo;

namespace {

//===----------------------------------------------------------------------===//
// Sources. All three share the corpus parent convention: one dynamic
// child launch per vertex with outgoing edges, grid = ceil(count / 128),
// block dim 128. The children are cooperative: __shared__ tiles,
// __syncthreads barriers, and (TiledReduce, FrontierCompact) structural
// shapes the relaxed transformability analysis accepts, so thresholding
// exercises the segmented serializer on real workloads.
//===----------------------------------------------------------------------===//

const char *TiledReduceSource = R"(
__global__ void child(int *col, int *out, int edgeBase, int v, int count) {
  __shared__ int tile[128];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  tile[threadIdx.x] = i < count ? col[edgeBase + i] : 0;
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (threadIdx.x < s)
      tile[threadIdx.x] = tile[threadIdx.x] + tile[threadIdx.x + s];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    atomicAdd(&out[v], tile[0]);
}
__global__ void parent(int *rowptr, int *col, int *out, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, out, rowptr[v], v, count);
    }
  }
}
)";

const char *FrontierCompactSource = R"(
__global__ void child(int *col, int *out, int edgeBase, int v, int count) {
  __shared__ int flag[128];
  __shared__ int pos[129];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  flag[threadIdx.x] = i < count && col[edgeBase + i] % 2 == 0 ? 1 : 0;
  __syncthreads();
  if (threadIdx.x == 0) {
    int run = 0;
    for (int k = 0; k < 128; k = k + 1) {
      pos[k] = run;
      run = run + flag[k];
    }
    pos[128] = run;
  }
  __syncthreads();
  if (flag[threadIdx.x] == 1)
    atomicAdd(&out[v], (pos[threadIdx.x] + 1) * col[edgeBase + i]);
  if (threadIdx.x == 0)
    atomicAdd(&out[v], pos[128] * 1000);
}
__global__ void parent(int *rowptr, int *col, int *out, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, out, rowptr[v], v, count);
    }
  }
}
)";

const char *TiledStencilSource = R"(
__global__ void child(int *col, int *out, int edgeBase, int v, int count) {
  __shared__ int tile[130];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int t = threadIdx.x;
  tile[t + 1] = i < count ? col[edgeBase + i] : 0;
  if (t == 0)
    tile[0] = i >= 1 && i <= count ? col[edgeBase + i - 1] : 0;
  if (t == 127)
    tile[129] = i + 1 < count ? col[edgeBase + i + 1] : 0;
  __syncthreads();
  if (i < count)
    atomicAdd(&out[v], tile[t] + 2 * tile[t + 1] + tile[t + 2]);
}
__global__ void parent(int *rowptr, int *col, int *out, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, out, rowptr[v], v, count);
    }
  }
}
)";

//===----------------------------------------------------------------------===//
// Native references. Per-block window structure is replicated exactly;
// all accumulation is wraparound uint32 (matching the VM's i32 atomics),
// so equality against the device payload is exact at every worker count.
//===----------------------------------------------------------------------===//

constexpr uint32_t BlockDim = 128;

std::vector<int32_t> refTiledReduce(const CsrGraph &G) {
  std::vector<int32_t> Out(G.NumVertices, 0);
  for (uint32_t V = 0; V < G.NumVertices; ++V) {
    uint32_t Sum = 0;
    for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E)
      Sum += G.Col[E];
    Out[V] = (int32_t)Sum;
  }
  return Out;
}

std::vector<int32_t> refFrontierCompact(const CsrGraph &G) {
  std::vector<int32_t> Out(G.NumVertices, 0);
  for (uint32_t V = 0; V < G.NumVertices; ++V) {
    uint32_t EB = G.RowPtr[V], Count = G.RowPtr[V + 1] - G.RowPtr[V];
    uint32_t Acc = 0;
    for (uint32_t WB = 0; WB < Count; WB += BlockDim) {
      uint32_t Run = 0; // the exclusive scan: rank of each passing lane
      for (uint32_t T = 0; T < BlockDim; ++T) {
        uint32_t I = WB + T;
        if (I < Count && G.Col[EB + I] % 2 == 0) {
          Acc += (Run + 1) * G.Col[EB + I];
          ++Run;
        }
      }
      Acc += Run * 1000u;
    }
    Out[V] = (int32_t)Acc;
  }
  return Out;
}

std::vector<int32_t> refTiledStencil(const CsrGraph &G) {
  std::vector<int32_t> Out(G.NumVertices, 0);
  for (uint32_t V = 0; V < G.NumVertices; ++V) {
    uint32_t EB = G.RowPtr[V], Count = G.RowPtr[V + 1] - G.RowPtr[V];
    uint32_t Acc = 0;
    for (uint32_t WB = 0; WB < Count; WB += BlockDim) {
      uint32_t Tile[BlockDim + 2] = {0};
      for (uint32_t T = 0; T < BlockDim; ++T) {
        uint32_t I = WB + T;
        Tile[T + 1] = I < Count ? G.Col[EB + I] : 0;
      }
      Tile[0] = WB >= 1 && WB <= Count ? G.Col[EB + WB - 1] : 0;
      Tile[BlockDim + 1] =
          WB + BlockDim < Count ? G.Col[EB + WB + BlockDim] : 0;
      for (uint32_t T = 0; T < BlockDim; ++T)
        if (WB + T < Count)
          Acc += Tile[T] + 2 * Tile[T + 1] + Tile[T + 2];
    }
    Out[V] = (int32_t)Acc;
  }
  return Out;
}

} // namespace

const std::vector<CoopKernelCase> &dpo::coopKernelCorpus() {
  static const std::vector<CoopKernelCase> Corpus = [] {
    CsrGraph KronMini = makeKronGraph(/*ScaleLog2=*/8, /*EdgeFactor=*/6.0);
    CsrGraph RoadMini = makeRoadGraph(/*Side=*/18);
    CsrGraph WebMini = makeWebGraph(/*NumVertices=*/400, /*AvgDegree=*/6.0);
    std::vector<CoopKernelCase> C;
    // Kron's hubs give multi-block children (several reduction blocks per
    // launch); Road pins the single-partial-block path.
    C.push_back({"TiledReduce/kron-mini", TiledReduceSource, KronMini,
                 refTiledReduce});
    C.push_back({"TiledReduce/road-mini", TiledReduceSource, RoadMini,
                 refTiledReduce});
    C.push_back({"FrontierCompact/kron-mini", FrontierCompactSource, KronMini,
                 refFrontierCompact});
    C.push_back({"TiledStencil/web-mini", TiledStencilSource, WebMini,
                 refTiledStencil});
    return C;
  }();
  return Corpus;
}

CoopRun dpo::runCoopCaseOnVm(const CoopKernelCase &Case,
                             std::string_view PipelineText,
                             bool OptimizeBytecode, unsigned Workers,
                             ExecMode Mode, uint64_t MemoryBytes) {
  CoopRun R;

  std::string Src = Case.Source;
  if (!PipelineText.empty()) {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Src, PipelineText, literalKnobConfig(),
                                      Diags);
    if (Src.empty()) {
      R.Error = "pipeline '" + std::string(PipelineText) +
                "' failed: " + Diags.str();
      return R;
    }
  }
  R.Src = Src;

  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Src, Ctx, Diags);
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = OptimizeBytecode;
  VmProgram Program;
  if (TU)
    Program = compileProgram(TU, Diags, Opts);
  if (!TU || Diags.hasErrors()) {
    R.Error = "bytecode compile failed: " + Diags.str();
    return R;
  }
  auto Dev = std::make_unique<Device>(std::move(Program), MemoryBytes, Mode);
  if (Workers)
    Dev->setWorkers(Workers);

  const CsrGraph &G = Case.Graph;
  std::vector<int32_t> RowPtr(G.RowPtr.begin(), G.RowPtr.end());
  std::vector<int32_t> Col(G.Col.begin(), G.Col.end());
  uint64_t RowPtrA = Dev->allocI32(RowPtr);
  uint64_t ColA = Dev->allocI32(Col);
  uint64_t OutA = Dev->alloc((uint64_t)G.NumVertices * 4);
  if (!Dev->error().empty()) {
    R.Error = "dataset staging failed: " + Dev->error();
    return R;
  }

  if (!launchWorkloadParent(*Dev, "parent", G.NumVertices, 128,
                            {(int64_t)RowPtrA, (int64_t)ColA, (int64_t)OutA,
                             (int32_t)G.NumVertices})) {
    R.Error = "run failed: " + Dev->error();
    return R;
  }
  R.Out = Dev->readI32Array(OutA, G.NumVertices);
  R.Stats = Dev->stats();
  R.Ok = true;
  return R;
}
