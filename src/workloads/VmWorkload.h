//===--- VmWorkload.h - VM-executable nested-parallelism workloads ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the workload layer (native algorithms producing NestedBatch
/// streams from real datasets) and the bytecode VM: a VmWorkload pairs a
/// CUDA-like translation unit whose parent kernel consumes a
/// counts/offsets encoding of a batch with the batch stream itself. The
/// empirical tuner (src/tuner/Empirical.h) compiles the source through a
/// candidate pass pipeline, materializes the batches as device arrays, and
/// measures the execution on the VM.
///
/// The canonical source is the BFS-shaped parent/child pair used across
/// the equivalence tests: parent thread v launches counts[v] child threads
/// that each write into their slice of `out`. Its per-parent child sizes
/// are exactly a NestedBatch's ChildUnits, so any workload's batch stream
/// (BFS frontiers, SSSP relaxations, Bezier tessellations, ...) can drive
/// it without writing workload-specific kernels.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_VMWORKLOAD_H
#define DPO_WORKLOADS_VMWORKLOAD_H

#include "rt/LaunchPlan.h"

#include <string>
#include <vector>

namespace dpo {

/// A workload the bytecode VM can execute: a translation unit whose parent
/// kernel is named "parent" with the canonical (int *out, int *counts,
/// int *offsets, int numV) signature, plus the batch stream that supplies
/// counts/offsets. After aggregation the generated host wrapper is
/// "parent_agg" (granularity-independent naming from AggregationPass).
struct VmWorkload {
  std::string Name;
  std::string Source;
  std::string ParentKernel = "parent";
  /// The parent launch shape comes from each batch's ParentBlockDim.
  std::vector<NestedBatch> Batches;
};

/// The canonical nested-parallelism source with the child launch's block
/// dimension spelled as \p ChildBlockDim.
std::string nestedVmSource(uint32_t ChildBlockDim = 32);

/// Wraps a batch stream (e.g. runBfs(G).Batches) in the canonical source.
VmWorkload makeNestedVmWorkload(std::string Name,
                                std::vector<NestedBatch> Batches,
                                uint32_t ChildBlockDim = 32);

/// Deterministic skewed batches — many tiny child grids, a few large ones
/// (the distribution the paper's optimizations target). Shared by the
/// tuner tests, dpoptcc's built-in --tune workload, and the convergence
/// benchmark.
std::vector<NestedBatch> makeSkewedBatches(unsigned NumBatches,
                                           unsigned ParentsPerBatch,
                                           unsigned Seed = 1);

} // namespace dpo

#endif // DPO_WORKLOADS_VMWORKLOAD_H
