//===--- VmWorkload.h - VM-executable nested-parallelism workloads ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the workload layer (native algorithms producing NestedBatch
/// streams from real datasets) and the bytecode VM: a VmWorkload pairs a
/// CUDA-like translation unit whose parent kernel consumes a
/// counts/offsets encoding of a batch with the batch stream itself. The
/// empirical tuner (src/tuner/Empirical.h) compiles the source through a
/// candidate pass pipeline, materializes the batches as device arrays, and
/// measures the execution on the VM.
///
/// The canonical source is the BFS-shaped parent/child pair used across
/// the equivalence tests: parent thread v launches counts[v] child threads
/// that each write into their slice of `out`. Its per-parent child sizes
/// are exactly a NestedBatch's ChildUnits, so any workload's batch stream
/// (BFS frontiers, SSSP relaxations, Bezier tessellations, ...) can drive
/// it without writing workload-specific kernels.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_VMWORKLOAD_H
#define DPO_WORKLOADS_VMWORKLOAD_H

#include "rt/LaunchPlan.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dpo {

class Device;

/// Host-side protocol for workloads whose parent kernel does not take the
/// canonical (int *out, int *counts, int *offsets, int numV) signature:
/// the binding stages the workload's dataset into a fresh measurement
/// device and builds each batch's launch arguments (the real kernel
/// corpus binds CSR graphs, SAT formulas, and Bezier line sets this way —
/// see workloads/KernelSources.h).
class VmWorkloadBinding {
public:
  virtual ~VmWorkloadBinding() = default;

  /// Loads the dataset and initial algorithm state into \p Dev. Called
  /// once per measurement device, before any batch runs. Returns false
  /// (with \p Error set) on failure.
  virtual bool setup(Device &Dev, std::string &Error) = 0;

  /// Launch arguments for one batch. \p Batch may be a truncated copy of
  /// the stream's batch (the evaluator caps sample units by dropping
  /// parents from the tail); \p OriginalIndex is its index in the
  /// workload's full batch stream. May also reset per-round device state
  /// (e.g. frontier-size counters).
  virtual std::vector<int64_t> argsFor(Device &Dev, const NestedBatch &Batch,
                                       unsigned OriginalIndex) = 0;
};

/// A workload the bytecode VM can execute: a translation unit whose parent
/// kernel is named "parent", plus the batch stream. Without a Binding the
/// parent takes the canonical (int *out, int *counts, int *offsets,
/// int numV) signature and the evaluator materializes counts/offsets from
/// each batch; with a Binding the binding supplies the arguments. After
/// aggregation the generated host wrapper is "parent_agg"
/// (granularity-independent naming from AggregationPass).
struct VmWorkload {
  std::string Name;
  std::string Source;
  std::string ParentKernel = "parent";
  /// The parent launch shape comes from each batch's ParentBlockDim.
  std::vector<NestedBatch> Batches;
  /// Non-null for non-canonical parent signatures (real kernel corpus).
  std::shared_ptr<VmWorkloadBinding> Binding;
  /// Device-memory floor for measurement VMs (0 = evaluator default);
  /// bindings that stage multi-megabyte datasets set this.
  uint64_t MinMemoryBytes = 0;
  /// Per-workload ceiling on sampled child units (0 = evaluator default).
  /// Workloads whose per-unit cost dwarfs the canonical kernel's (TC's
  /// sorted-list intersections) lower this so measurement stays inside
  /// the VM step budget.
  uint64_t SampleUnitCap = 0;
};

/// Launches a workload's parent grid over \p NumParents parent threads,
/// routing through the generated `<ParentKernel>_agg` host wrapper when
/// the program defines one (the aggregation ABI prepends six grid/block
/// dimension slots to the kernel arguments). The single place the
/// wrapper convention is encoded — the empirical tuner and the
/// differential harness both launch through here. No-op success when
/// \p NumParents is zero; on failure Dev.error() explains.
bool launchWorkloadParent(Device &Dev, const std::string &ParentKernel,
                          uint32_t NumParents, uint32_t ParentBlockDim,
                          const std::vector<int64_t> &Args);

/// The canonical nested-parallelism source with the child launch's block
/// dimension spelled as \p ChildBlockDim.
std::string nestedVmSource(uint32_t ChildBlockDim = 32);

/// Wraps a batch stream (e.g. runBfs(G).Batches) in the canonical source.
VmWorkload makeNestedVmWorkload(std::string Name,
                                std::vector<NestedBatch> Batches,
                                uint32_t ChildBlockDim = 32);

/// Deterministic skewed batches — many tiny child grids, a few large ones
/// (the distribution the paper's optimizations target). Shared by the
/// tuner tests, dpoptcc's built-in --tune workload, and the convergence
/// benchmark.
std::vector<NestedBatch> makeSkewedBatches(unsigned NumBatches,
                                           unsigned ParentsPerBatch,
                                           unsigned Seed = 1);

/// The workload `dpoptcc --tune=` measures when no --workload= is given:
/// the canonical nested source over seeded skewed batches. Tuned-table
/// entries record it under the spec "canonical"; the drift gate rebuilds
/// it from the recorded seed to re-derive the committed pipeline.
VmWorkload canonicalTuneWorkload(unsigned Seed);

} // namespace dpo

#endif // DPO_WORKLOADS_VMWORKLOAD_H
