//===--- SpBezier.cpp - Survey propagation and Bezier tessellation ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cmath>

using namespace dpo;

WorkloadOutput dpo::runSurveyProp(const SatFormula &F, unsigned MaxIters) {
  WorkloadOutput Out;
  if (F.NumVars == 0)
    return Out;

  // Simplified survey-propagation-style iteration: each variable keeps a
  // bias in (-1, 1); each round recomputes it from the clauses it appears
  // in (sign-weighted average of the other literals' biases, damped). The
  // nested-parallel structure matches the SP benchmark: the parent thread
  // per variable launches a child over that variable's occurrence list.
  std::vector<double> Bias(F.NumVars);
  for (uint32_t V = 0; V < F.NumVars; ++V)
    Bias[V] = ((V * 2654435761u) % 1000) / 1000.0 * 0.5 - 0.25;

  std::vector<uint32_t> AllVars(F.NumVars);
  for (uint32_t V = 0; V < F.NumVars; ++V)
    AllVars[V] = V;

  std::vector<double> NextBias(F.NumVars);
  double MaxDelta = 1.0;
  for (unsigned Iter = 0; Iter < MaxIters && MaxDelta > 1e-3; ++Iter) {
    NestedBatch B;
    B.NumParentThreads = F.NumVars;
    B.ParentBlockDim = 128;
    B.ChildBlockDim = 32; // SP child grids are small (few occurrences)
    B.ChildUnits.resize(F.NumVars);
    for (uint32_t V = 0; V < F.NumVars; ++V)
      B.ChildUnits[V] = F.occurrences(V);
    B.ParentCyclesPerThread = 200;
    B.ChildCyclesPerUnit = 90;
    B.SerialCyclesPerUnit = 210;
    B.ChildBlockBaseCycles = 70;
    Out.Batches.push_back(std::move(B));
    Out.ParentItems.emplace_back(); // identity: every variable

    MaxDelta = 0;
    for (uint32_t V = 0; V < F.NumVars; ++V) {
      double Acc = 0;
      uint32_t Occ = 0;
      for (uint32_t O = F.OccRowPtr[V]; O < F.OccRowPtr[V + 1]; ++O) {
        uint32_t Clause = F.OccClause[O];
        double ClauseField = 0;
        bool MySign = false;
        for (uint32_t L = 0; L < F.K; ++L) {
          uint32_t Lit = F.ClauseLits[Clause * F.K + L];
          uint32_t Var = Lit / 2;
          bool Neg = Lit & 1;
          if (Var == V) {
            MySign = Neg;
            continue;
          }
          ClauseField += Neg ? -Bias[Var] : Bias[Var];
        }
        Acc += MySign ? -ClauseField : ClauseField;
        ++Occ;
      }
      double Target = Occ ? std::tanh(Acc / (F.K * Occ)) : 0.0;
      NextBias[V] = 0.7 * Bias[V] + 0.3 * Target;
      MaxDelta = std::max(MaxDelta, std::fabs(NextBias[V] - Bias[V]));
    }
    Bias.swap(NextBias);
  }

  Out.Converged = MaxDelta <= 1e-3;
  double Sum = 0;
  for (double Value : Bias)
    Sum += Value;
  Out.CheckSum = Sum;
  return Out;
}

WorkloadOutput dpo::runBezier(const BezierDataset &D) {
  WorkloadOutput Out;

  // The BT parent computes each line's tessellation factor and launches a
  // child grid with one thread per tessellated point.
  NestedBatch B;
  B.NumParentThreads = D.Lines.size();
  B.ParentBlockDim = 128;
  B.ChildBlockDim = 64;
  B.ChildUnits.reserve(D.Lines.size());
  for (const BezierLine &L : D.Lines)
    B.ChildUnits.push_back(L.Tessellation);
  // The parent also performs the aggregated cudaMalloc for the vertex
  // buffer (Section VII: counted as parent work).
  B.ParentCyclesPerThread = 420;
  B.ChildCyclesPerUnit = 120;
  B.SerialCyclesPerUnit = 580;
  B.ChildBlockBaseCycles = 80;
  Out.Batches.push_back(std::move(B));
  Out.ParentItems.emplace_back(); // identity: every line

  // Functional result: tessellated points of the quadratic curves.
  double Sum = 0;
  for (const BezierLine &L : D.Lines) {
    for (uint32_t I = 0; I < L.Tessellation; ++I) {
      double T = L.Tessellation == 1 ? 0.0 : (double)I / (L.Tessellation - 1);
      double OneMinusT = 1.0 - T;
      double X = OneMinusT * OneMinusT * L.P0[0] +
                 2 * OneMinusT * T * L.P1[0] + T * T * L.P2[0];
      double Y = OneMinusT * OneMinusT * L.P0[1] +
                 2 * OneMinusT * T * L.P1[1] + T * T * L.P2[1];
      Sum += X * 1e-3 + Y * 1e-6;
    }
  }
  Out.CheckSum = Sum;
  return Out;
}
