//===--- Catalog.cpp -----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Catalog.h"

#include <map>
#include <mutex>

using namespace dpo;

const char *dpo::benchmarkName(BenchmarkId Id) {
  switch (Id) {
  case BenchmarkId::BFS: return "BFS";
  case BenchmarkId::BT: return "BT";
  case BenchmarkId::MSTF: return "MSTF";
  case BenchmarkId::MSTV: return "MSTV";
  case BenchmarkId::SP: return "SP";
  case BenchmarkId::SSSP: return "SSSP";
  case BenchmarkId::TC: return "TC";
  }
  return "?";
}

const char *dpo::datasetName(DatasetId Id) {
  switch (Id) {
  case DatasetId::KRON: return "KRON";
  case DatasetId::CNR: return "CNR";
  case DatasetId::ROAD_NY: return "ROAD-NY";
  case DatasetId::RAND3: return "RAND-3";
  case DatasetId::SAT5: return "5-SAT";
  case DatasetId::T0032_C16: return "T0032-C16";
  case DatasetId::T2048_C64: return "T2048-C64";
  }
  return "?";
}

std::string BenchCase::name() const {
  return std::string(benchmarkName(Bench)) + "/" + datasetName(Data);
}

const std::vector<BenchCase> &dpo::figure9Cases() {
  static const std::vector<BenchCase> Cases = {
      {BenchmarkId::BFS, DatasetId::KRON},
      {BenchmarkId::BFS, DatasetId::CNR},
      {BenchmarkId::BT, DatasetId::T0032_C16},
      {BenchmarkId::BT, DatasetId::T2048_C64},
      {BenchmarkId::MSTF, DatasetId::KRON},
      {BenchmarkId::MSTF, DatasetId::CNR},
      {BenchmarkId::MSTV, DatasetId::KRON},
      {BenchmarkId::MSTV, DatasetId::CNR},
      {BenchmarkId::SP, DatasetId::RAND3},
      {BenchmarkId::SP, DatasetId::SAT5},
      {BenchmarkId::SSSP, DatasetId::KRON},
      {BenchmarkId::SSSP, DatasetId::CNR},
      {BenchmarkId::TC, DatasetId::KRON},
      {BenchmarkId::TC, DatasetId::CNR},
  };
  return Cases;
}

const std::vector<BenchCase> &dpo::figure12Cases() {
  static const std::vector<BenchCase> Cases = {
      {BenchmarkId::BFS, DatasetId::ROAD_NY},
      {BenchmarkId::MSTF, DatasetId::ROAD_NY},
      {BenchmarkId::MSTV, DatasetId::ROAD_NY},
      {BenchmarkId::SSSP, DatasetId::ROAD_NY},
      {BenchmarkId::TC, DatasetId::ROAD_NY},
  };
  return Cases;
}

const std::vector<BenchCase> &dpo::figure11Cases() {
  static const std::vector<BenchCase> Cases = {
      {BenchmarkId::BFS, DatasetId::KRON},
      {BenchmarkId::BT, DatasetId::T2048_C64},
      {BenchmarkId::MSTF, DatasetId::KRON},
      {BenchmarkId::MSTV, DatasetId::KRON},
      {BenchmarkId::SP, DatasetId::SAT5},
      {BenchmarkId::SSSP, DatasetId::KRON},
      {BenchmarkId::TC, DatasetId::KRON},
  };
  return Cases;
}

namespace {

/// TC uses induced head subgraphs "due to memory constraints" (Table I
/// note); these sizes keep the exact count tractable while preserving the
/// degree skew.
constexpr uint32_t TcSubgraphVertices = 16384;

const CsrGraph &graphFor(DatasetId Id) {
  static std::map<DatasetId, CsrGraph> Cache;
  static std::mutex Mutex;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Cache.find(Id);
  if (It != Cache.end())
    return It->second;
  CsrGraph G;
  switch (Id) {
  case DatasetId::KRON:
    G = makeKronGraph();
    break;
  case DatasetId::CNR:
    G = makeWebGraph();
    break;
  case DatasetId::ROAD_NY:
    G = makeRoadGraph();
    break;
  default:
    break;
  }
  return Cache.emplace(Id, std::move(G)).first->second;
}

const SatFormula &formulaFor(DatasetId Id) {
  static std::map<DatasetId, SatFormula> Cache;
  static std::mutex Mutex;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Cache.find(Id);
  if (It != Cache.end())
    return It->second;
  SatFormula F = Id == DatasetId::RAND3
                     ? makeRandomKSat(10000, 42000, 3)
                     : makeRandomKSat(2500, 23459, 5); // 117,295 literals
  return Cache.emplace(Id, std::move(F)).first->second;
}

const BezierDataset &bezierFor(DatasetId Id) {
  static std::map<DatasetId, BezierDataset> Cache;
  static std::mutex Mutex;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Cache.find(Id);
  if (It != Cache.end())
    return It->second;
  BezierDataset D = Id == DatasetId::T0032_C16
                        ? makeBezierLines(20000, 32, 16.0)
                        : makeBezierLines(20000, 2048, 64.0);
  return Cache.emplace(Id, std::move(D)).first->second;
}

} // namespace

const CsrGraph &dpo::datasetGraph(DatasetId Id) { return graphFor(Id); }
const SatFormula &dpo::datasetFormula(DatasetId Id) { return formulaFor(Id); }
const BezierDataset &dpo::datasetBezier(DatasetId Id) { return bezierFor(Id); }

CsrGraph dpo::benchCaseGraph(const BenchCase &Case) {
  const CsrGraph &G = graphFor(Case.Data);
  return Case.Bench == BenchmarkId::TC ? G.headSubgraph(TcSubgraphVertices) : G;
}

const WorkloadOutput &dpo::runCase(const BenchCase &Case) {
  static std::map<std::pair<int, int>, WorkloadOutput> Cache;
  static std::mutex Mutex;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Key = std::make_pair((int)Case.Bench, (int)Case.Data);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  WorkloadOutput Out;
  switch (Case.Bench) {
  case BenchmarkId::BFS:
    Out = runBfs(graphFor(Case.Data));
    break;
  case BenchmarkId::SSSP:
    Out = runSssp(graphFor(Case.Data));
    break;
  case BenchmarkId::MSTF:
    Out = runMstFind(graphFor(Case.Data));
    break;
  case BenchmarkId::MSTV:
    Out = runMstVerify(graphFor(Case.Data));
    break;
  case BenchmarkId::TC:
    Out = runTriangleCount(graphFor(Case.Data).headSubgraph(TcSubgraphVertices));
    break;
  case BenchmarkId::SP:
    Out = runSurveyProp(formulaFor(Case.Data));
    break;
  case BenchmarkId::BT:
    Out = runBezier(bezierFor(Case.Data));
    break;
  }
  return Cache.emplace(Key, std::move(Out)).first->second;
}

DatasetStats dpo::datasetStats(DatasetId Id) {
  DatasetStats Stats;
  Stats.Name = datasetName(Id);
  switch (Id) {
  case DatasetId::KRON:
  case DatasetId::CNR:
  case DatasetId::ROAD_NY: {
    const CsrGraph &G = graphFor(Id);
    Stats.Vertices = G.NumVertices;
    Stats.Edges = G.numEdges();
    Stats.AvgDegree = G.avgDegree();
    Stats.MaxDegree = G.maxDegree();
    break;
  }
  case DatasetId::RAND3:
  case DatasetId::SAT5: {
    const SatFormula &F = formulaFor(Id);
    Stats.Vertices = F.NumVars;
    Stats.Edges = F.ClauseLits.size();
    Stats.AvgDegree = (double)F.ClauseLits.size() / F.NumVars;
    uint64_t Max = 0;
    for (uint32_t V = 0; V < F.NumVars; ++V)
      Max = std::max<uint64_t>(Max, F.occurrences(V));
    Stats.MaxDegree = Max;
    break;
  }
  case DatasetId::T0032_C16:
  case DatasetId::T2048_C64: {
    const BezierDataset &D = bezierFor(Id);
    Stats.Vertices = D.Lines.size();
    uint64_t Points = 0, Max = 0;
    for (const BezierLine &L : D.Lines) {
      Points += L.Tessellation;
      Max = std::max<uint64_t>(Max, L.Tessellation);
    }
    Stats.Edges = Points;
    Stats.AvgDegree = (double)Points / D.Lines.size();
    Stats.MaxDegree = Max;
    break;
  }
  }
  return Stats;
}
