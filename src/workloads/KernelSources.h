//===--- KernelSources.h - Table I benchmarks as DSL kernels ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven Table I benchmarks written as actual CUDA-subset translation
/// units the transform passes and the bytecode VM can consume — the step
/// from "the canonical nested shape driven by recorded batch sizes" to
/// "the real kernels, computing the real results, on real datasets".
///
/// Every source defines a parent kernel named `parent` containing exactly
/// one dynamic launch of a kernel named `child`, with the grid dimension
/// spelled as a Fig. 4 ceiling division, so all three transforms apply at
/// every knob setting. SP additionally defines a flat `update` kernel (no
/// launches; the damped bias update the paper's SP iteration performs
/// between rounds).
///
/// Two consumers:
///  - the differential harness (Differential.h) runs each source through
///    every registered pipeline on scaled-down Table I datasets and
///    asserts the *payload* (levels, distances, MST weight, triangle
///    count, checksums) is bit-identical to the native references in
///    Workloads.h;
///  - the empirical tuner measures candidate configs against the real
///    kernel bound to the full-size dataset (kernelVmWorkload), replaying
///    the native run's recorded per-round parent lists
///    (WorkloadOutput::ParentItems) as frontier arrays.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_KERNELSOURCES_H
#define DPO_WORKLOADS_KERNELSOURCES_H

#include "workloads/Catalog.h"
#include "workloads/VmWorkload.h"

#include <string>
#include <vector>

namespace dpo {

/// The DSL translation unit for one benchmark (see file comment).
const char *kernelSourceFor(BenchmarkId Bench);

/// The corpus' cooperative-transformability probe: same parent shape as
/// the Table I sources, but the child kernel performs a __shared__ block
/// reduction with __syncthreads barriers. Under the relaxed Section III-C
/// analysis this child IS serializable — the barriers are structural
/// (body top level and a block-uniform for loop), so thresholding lowers
/// it to the segmented serial form (one thread loop per barrier-free
/// segment, shared state hoisted to zero-initialized block locals). The
/// differential suite runs it through every pipeline to pin that path
/// end to end, payload-exact against the untransformed run.
const char *sharedChildProbeSource();

/// The genuinely-untransformable probe: the child synchronizes across
/// blocks through an atomic spin-wait (an atomic in a while condition),
/// which would never terminate once collapsed into one serial thread.
/// Thresholding must refuse to serialize it and leave the dynamic
/// launches fully in place.
const char *spinWaitProbeSource();

/// Block dimensions used by the sources (parent launches and the child
/// launch statement's literal). They match the native batches' dims.
uint32_t kernelParentBlockDim(BenchmarkId Bench);
uint32_t kernelChildBlockDim(BenchmarkId Bench);

/// A benchmark paired with a concrete dataset instance. Exactly one of
/// Graph / Formula / Bezier is meaningful, by benchmark kind.
struct KernelCase {
  BenchmarkId Bench = BenchmarkId::BFS;
  std::string Name; ///< e.g. "BFS/road-mini"
  CsrGraph Graph;
  SatFormula Formula;
  BezierDataset Bezier;

  std::string source() const { return kernelSourceFor(Bench); }
  /// Native reference over this case's dataset — the payload ground truth
  /// the differential harness compares against.
  WorkloadOutput reference() const;
};

KernelCase makeGraphKernelCase(BenchmarkId Bench, std::string Name,
                               CsrGraph Graph);
KernelCase makeSatKernelCase(std::string Name, SatFormula Formula);
KernelCase makeBezierKernelCase(std::string Name, BezierDataset Bezier);

/// Scaled-down deterministic instances of the Table I datasets, sized so
/// the full differential matrix (every pipeline, peephole on and off)
/// stays a tier-CI-sized job: at least two datasets per benchmark, same
/// generators and degree character as the full-size originals.
const std::vector<KernelCase> &differentialCorpus();

/// Device addresses of one staged kernel case: the dataset arrays plus
/// the benchmark's algorithm-state and payload arrays, initialized to the
/// algorithm's starting state (levels all unreached except source,
/// distances infinite, components identity, native initial biases, ...).
/// Which fields are meaningful depends on Bench; TC stores its forward
/// CSR in RowPtr/Col. Shared by the differential drivers and the tuner's
/// replay binding so both stage byte-identical images.
struct KernelImage {
  BenchmarkId Bench = BenchmarkId::BFS;
  uint32_t NumParents = 0; ///< Vertices / variables / lines.
  uint64_t NumEdges = 0;
  // Graph CSR (TC: forward CSR).
  uint64_t RowPtr = 0, Col = 0, Weight = 0;
  // Worklist machinery (BFS / SSSP).
  uint64_t Frontier = 0, Next = 0, NextSize = 0;
  uint64_t Levels = 0;                     // BFS payload
  uint64_t Dist = 0, InList = 0;           // SSSP
  uint64_t Comp = 0, Best = 0, Active = 0; // MSTF
  uint64_t MinW = 0;                       // MSTV
  uint64_t Tri = 0;                        // TC
  uint64_t OccRow = 0, OccClause = 0, Lits = 0, Bias = 0, NextBias = 0,
           Delta = 0, Term = 0; // SP
  uint32_t K = 0;
  uint64_t P0x = 0, P0y = 0, P1x = 0, P1y = 0, P2x = 0, P2y = 0, Out = 0,
           Tess = 0, OBase = 0; // BT
  uint64_t TotalPoints = 0;
};

class Device;

/// Loads Case's dataset and initial state into \p Dev. Two failure
/// channels, both to check: staging a dataset larger than device memory
/// fails through Dev.error(); a dataset outside the kernels' encoding
/// budget (>= 2^20 vertices or >= 2^22 weights for the MSTF/BFS 64-bit
/// keys, edge counts above int32) is reported through \p Error without
/// staging — relying on asserts alone would corrupt results silently in
/// NDEBUG builds.
KernelImage stageKernelCase(Device &Dev, const KernelCase &Case,
                            std::string *Error = nullptr);

/// The parent launch's argument vector for one round. \p Frontier and
/// \p Next are the round's ping-pong buffers where the benchmark has any
/// (BFS/SSSP worklists; for SP, \p Frontier carries the round's
/// current-bias buffer); \p Round feeds BFS's depth argument.
std::vector<int64_t> kernelParentArgs(const KernelImage &Img,
                                      uint64_t Frontier, uint64_t Next,
                                      uint32_t NumParents, uint32_t Round);

/// The 64-bit "infinite" sentinel shared by the SSSP distance and MSTF
/// best-edge-key arrays (INT64_MAX: every real value compares smaller).
int64_t kernelInf64();

/// The real kernel bound to the full-size Table I dataset for VM-in-the-
/// loop tuning: Source is the benchmark's DSL kernel, Batches are the
/// native run's batches, and Binding stages the dataset into device
/// memory and replays the recorded per-round parent lists. MinMemoryBytes
/// is sized from the dataset.
VmWorkload kernelVmWorkload(const BenchCase &Case);

/// Parses a --workload= spec "bfs:road_ny" / "tc:kron" (benchmark and
/// dataset names case-insensitive, '-' and '_' interchangeable). On
/// failure returns false and sets \p Error to the list of valid
/// spellings.
bool parseWorkloadSpec(std::string_view Spec, BenchCase &Out,
                       std::string &Error);

} // namespace dpo

#endif // DPO_WORKLOADS_KERNELSOURCES_H
