//===--- CoopKernels.h - Cooperative (barrier) kernel corpus ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative-kernel differential corpus: child kernels that use
/// `__shared__` memory and `__syncthreads` as first-class citizens of the
/// block-mode VM. Each case keeps the Table I parent shape (one dynamic
/// child launch per parent vertex, Fig. 4 ceiling division, block dim
/// 128) but the child is a barrier-bearing cooperative kernel:
///
///  - **TiledReduce** — the canonical shared-memory tree reduction: stage
///    a tile of edges, halve with a barrier per round, thread 0 publishes
///    with an atomic. The flagship case for barrier segmentation: the
///    reduction loop is block-uniform, so thresholding serializes it.
///  - **FrontierCompact** — BFS-style frontier compaction: per-thread
///    predicate flags in shared memory, a thread-0 exclusive scan between
///    two barriers, compacted ranks consumed after reconvergence.
///  - **TiledStencil** — a 1-D 3-point stencil over a shared tile with
///    halo cells, exercising rematerialized per-thread locals (the
///    lane/global indices live across the barrier).
///
/// Every payload is an integer accumulation (wraparound uint32), so it is
/// exact, order-independent across workers, and bit-comparable against
/// the native reference computed here with the same per-block window
/// structure.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_COOPKERNELS_H
#define DPO_WORKLOADS_COOPKERNELS_H

#include "datasets/Graph.h"
#include "vm/VM.h"

#include <string>
#include <string_view>
#include <vector>

namespace dpo {

/// One cooperative corpus entry: a DSL source (parent + barrier-bearing
/// child) paired with a concrete graph instance and its native reference.
struct CoopKernelCase {
  std::string Name; ///< e.g. "TiledReduce/kron-mini"
  const char *Source = nullptr;
  CsrGraph Graph;
  /// Native reference over Graph — replicates the kernel's per-block
  /// window structure exactly (wraparound uint32 arithmetic).
  std::vector<int32_t> (*Reference)(const CsrGraph &) = nullptr;

  std::vector<int32_t> reference() const { return Reference(Graph); }
};

/// The cooperative corpus: the three families above over mini instances
/// of the paper's dataset generators (Kron for skewed multi-block
/// children, Road for uniform tiny children, Web for mid-degree).
const std::vector<CoopKernelCase> &coopKernelCorpus();

/// One VM execution of a cooperative case through one pipeline.
struct CoopRun {
  bool Ok = false;
  std::string Error;
  std::vector<int32_t> Out; ///< The per-vertex payload array.
  VmStats Stats;
  std::string Src; ///< Post-transform source, for diagnosis.
};

/// Transforms the case's source through \p PipelineText (empty =
/// untransformed), lowers with the peephole optimizer on or off, and runs
/// the parent grid. \p Workers pins the device worker count (0 keeps the
/// DPO_VM_WORKERS default); \p Mode pins the execution engine. The
/// payload contract holds at every worker count and engine, and Steps is
/// bit-identical across engines and workers — the barrier-axis
/// differential tests assert both.
CoopRun runCoopCaseOnVm(const CoopKernelCase &Case,
                        std::string_view PipelineText, bool OptimizeBytecode,
                        unsigned Workers = 0, ExecMode Mode = ExecMode::Auto,
                        uint64_t MemoryBytes = 16ull << 20);

} // namespace dpo

#endif // DPO_WORKLOADS_COOPKERNELS_H
