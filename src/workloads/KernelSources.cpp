//===--- KernelSources.cpp ------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/KernelSources.h"

#include "support/StringUtils.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <limits>
#include <map>
#include <mutex>

using namespace dpo;

//===----------------------------------------------------------------------===//
// The DSL sources
//===----------------------------------------------------------------------===//
//
// Conventions shared by all seven translation units:
//  - the parent kernel is named `parent`, the launched kernel `child`;
//  - exactly one dynamic launch per unit, its grid dimension a Fig. 4
//    ceiling division with a literal block dimension;
//  - children are barrier-free and shared-memory-free (serializable per
//    Section III-C), so thresholding applies;
//  - expression shapes mirror the native references in Workloads.h
//    operation for operation where floating point is involved (SP, BT),
//    so payload comparison can demand bit-identical doubles.

namespace {

/// BFS: parent per frontier vertex, child per edge. Children claim
/// unvisited neighbors with a CAS on the level array and append them to
/// the next frontier.
const char *BfsSource = R"(
__global__ void child(int *col, int *levels, int *next, int *nextSize,
                      int edgeBase, int count, int depth) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int n = col[edgeBase + i];
    if (atomicCAS(&levels[n], -1, depth) == -1) {
      next[atomicAdd(nextSize, 1)] = n;
    }
  }
}
__global__ void parent(int *rowptr, int *col, int *levels, int *frontier,
                       int *next, int *nextSize, int numF, int depth) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numF) {
    int u = frontier[v];
    int count = rowptr[u + 1] - rowptr[u];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, levels, next, nextSize,
                                          rowptr[u], count, depth);
    }
  }
}
)";

/// SSSP: worklist Bellman-Ford. Children relax edges with a 64-bit
/// atomicMin and enqueue improved vertices once per round (CAS on the
/// in-list flag). Reading dist[u] inside the child only changes which
/// round an improvement lands in, never the fixpoint the payload checks.
const char *SsspSource = R"(
__global__ void child(int *col, int *weight, long long *dist, int *inlist,
                      int *next, int *nextSize, int edgeBase, int u,
                      int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int n = col[edgeBase + i];
    long long cand = dist[u] + (long long)weight[edgeBase + i];
    long long old = atomicMin(&dist[n], cand);
    if (cand < old) {
      if (atomicCAS(&inlist[n], 0, 1) == 0) {
        next[atomicAdd(nextSize, 1)] = n;
      }
    }
  }
}
__global__ void parent(int *rowptr, int *col, int *weight, long long *dist,
                       int *inlist, int *frontier, int *next, int *nextSize,
                       int numF) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numF) {
    int u = frontier[v];
    int count = rowptr[u + 1] - rowptr[u];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, weight, dist, inlist, next,
                                          nextSize, rowptr[u], u, count);
    }
  }
}
)";

/// MSTF: one Boruvka find-min-edge round. Components are fully compressed
/// (comp[v] is the root) before each round; children fold candidate edges
/// into a per-component 64-bit key whose order is exactly the native
/// reference's (weight, min endpoint, max endpoint) tie-break, so the
/// harness-side merge reproduces the native MST weight bit for bit.
const char *MstfSource = R"(
__global__ void child(int *col, int *weight, int *comp, long long *best,
                      int edgeBase, int u, int cu, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int v = col[edgeBase + i];
    if (comp[v] != cu) {
      int w = weight[edgeBase + i];
      int mn = min(u, v);
      int mx = max(u, v);
      long long key = ((long long)w << 40) | ((long long)mn << 20) |
                      (long long)mx;
      atomicMin(&best[cu], key);
    }
  }
}
__global__ void parent(int *rowptr, int *col, int *weight, int *comp,
                       long long *best, int *active, int numA) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numA) {
    int u = active[v];
    int count = rowptr[u + 1] - rowptr[u];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, weight, comp, best, rowptr[u],
                                          u, comp[u], count);
    }
  }
}
)";

/// MSTV: one pass over all vertices; the child folds the minimum incident
/// weight per vertex (the local-minimality check the verify kernel makes).
const char *MstvSource = R"(
__global__ void child(int *weight, int *minw, int v, int edgeBase,
                      int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    atomicMin(&minw[v], weight[edgeBase + i]);
  }
}
__global__ void parent(int *rowptr, int *weight, int *minw, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(weight, minw, v, rowptr[v], count);
    }
  }
}
)";

/// TC: edge-iterator triangle counting over the forward (higher-numbered,
/// sorted, deduplicated) adjacency. The child intersects two sorted lists
/// with the same two-pointer walk as the native reference.
const char *TcSource = R"(
__global__ void child(int *fptr, int *fcol, long long *tri, int u, int fBase,
                      int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int v = fcol[fBase + i];
    int a = fptr[u];
    int ae = fptr[u + 1];
    int b = fptr[v];
    int be = fptr[v + 1];
    int c = 0;
    while (a < ae && b < be) {
      if (fcol[a] < fcol[b]) {
        a = a + 1;
      } else if (fcol[a] > fcol[b]) {
        b = b + 1;
      } else {
        c = c + 1;
        a = a + 1;
        b = b + 1;
      }
    }
    if (c > 0) {
      atomicAdd(tri, (long long)c);
    }
  }
}
__global__ void parent(int *fptr, int *fcol, long long *tri, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = fptr[v + 1] - fptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(fptr, fcol, tri, v, fptr[v], count);
    }
  }
}
)";

/// SP: parent per variable, child per occurrence. The child computes the
/// signed clause field for one occurrence (term array); the flat `update`
/// kernel then reduces each variable's terms in occurrence order and
/// applies the damped tanh update — the same operation order as the
/// native reference, so biases stay bit-identical.
const char *SpSource = R"(
__global__ void child(int *occclause, int *lits, double *bias, double *term,
                      int k, int v, int occBase, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int clause = occclause[occBase + i];
    double field = 0.0;
    int mysign = 0;
    int l = 0;
    while (l < k) {
      int lit = lits[clause * k + l];
      int var = lit / 2;
      int neg = lit - var * 2;
      if (var == v) {
        mysign = neg;
      } else {
        field = field + (neg == 1 ? -bias[var] : bias[var]);
      }
      l = l + 1;
    }
    term[occBase + i] = mysign == 1 ? -field : field;
  }
}
__global__ void parent(int *occrow, int *occclause, int *lits, double *bias,
                       double *term, int k, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = occrow[v + 1] - occrow[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(occclause, lits, bias, term, k, v,
                                       occrow[v], count);
    }
  }
}
__global__ void update(int *occrow, double *bias, double *nextbias,
                       double *delta, double *term, int k, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    double acc = 0.0;
    int o = occrow[v];
    int oe = occrow[v + 1];
    int occ = oe - o;
    while (o < oe) {
      acc = acc + term[o];
      o = o + 1;
    }
    double target = 0.0;
    if (occ > 0) {
      target = tanh(acc / (k * occ));
    }
    double nb = 0.7 * bias[v] + 0.3 * target;
    nextbias[v] = nb;
    delta[v] = fabs(nb - bias[v]);
  }
}
)";

/// BT: parent per Bezier line, child per tessellated point, evaluating
/// the quadratic curve with the native reference's exact expression.
const char *BtSource = R"(
__global__ void child(float *p0x, float *p0y, float *p1x, float *p1y,
                      float *p2x, float *p2y, double *out, int line,
                      int outBase, int tess) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < tess) {
    double t = tess == 1 ? 0.0 : (double)i / (tess - 1);
    double omt = 1.0 - t;
    double x = omt * omt * p0x[line] + 2 * omt * t * p1x[line] +
               t * t * p2x[line];
    double y = omt * omt * p0y[line] + 2 * omt * t * p1y[line] +
               t * t * p2y[line];
    out[outBase + i] = x * 1e-3 + y * 1e-6;
  }
}
__global__ void parent(float *p0x, float *p0y, float *p1x, float *p1y,
                       float *p2x, float *p2y, double *out, int *tess,
                       int *obase, int numLines) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numLines) {
    int count = tess[v];
    if (count > 0) {
      child<<<(count + 63) / 64, 64>>>(p0x, p0y, p1x, p1y, p2x, p2y, out, v,
                                       obase[v], count);
    }
  }
}
)";

/// Cooperative transformability probe: the child performs a __shared__
/// block reduction with __syncthreads barriers. The barriers are
/// structural — body top level plus a block-uniform for loop — so the
/// relaxed Section III-C analysis accepts the child and thresholding
/// serializes it in the segmented form (thread loop per barrier-free
/// segment, shared state as zero-initialized block locals). Coarsening
/// (block-strided loop, barriers stay block-uniform) and aggregation
/// (one block per child block, lenient reconvergence masks the tail)
/// remain applicable and semantics-preserving. The parent shape matches
/// the corpus convention (one dynamic launch, Fig. 4 ceiling division)
/// so every registered pipeline parses and runs it.
const char *SharedChildProbe = R"(
__global__ void child(int *col, int *sums, int edgeBase, int v, int count) {
  __shared__ int scratch[128];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < count ? col[edgeBase + i] : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    atomicAdd(&sums[v], scratch[0]);
}
__global__ void parent(int *rowptr, int *col, int *sums, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(col, sums, rowptr[v], v, count);
    }
  }
}
)";

/// Untransformable probe: thread 0 of each child block publishes a flag
/// with an atomic and then spin-waits on it in a loop *condition* — the
/// inter-block-synchronization idiom the relaxed analysis still rejects
/// outright (a serial thread loop would spin forever if the flag were
/// set by a later thread). The spin resolves instantly on the real
/// device, so the probe stays runnable through every pipeline.
const char *SpinWaitProbe = R"(
__global__ void child(int *flag, int *sums, int v, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i == 0) {
    atomicAdd(&flag[v], 1);
    while (atomicAdd(&flag[v], 0) < 1) { sums[v] = sums[v]; }
  }
  if (i < count)
    atomicAdd(&sums[v], 1);
}
__global__ void parent(int *rowptr, int *col, int *sums, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 127) / 128, 128>>>(sums, sums, v, count);
    }
  }
}
)";

} // namespace

const char *dpo::sharedChildProbeSource() { return SharedChildProbe; }

const char *dpo::spinWaitProbeSource() { return SpinWaitProbe; }

const char *dpo::kernelSourceFor(BenchmarkId Bench) {
  switch (Bench) {
  case BenchmarkId::BFS: return BfsSource;
  case BenchmarkId::SSSP: return SsspSource;
  case BenchmarkId::MSTF: return MstfSource;
  case BenchmarkId::MSTV: return MstvSource;
  case BenchmarkId::TC: return TcSource;
  case BenchmarkId::SP: return SpSource;
  case BenchmarkId::BT: return BtSource;
  }
  return "";
}

uint32_t dpo::kernelParentBlockDim(BenchmarkId Bench) {
  (void)Bench;
  return 128; // Every native batch uses ParentBlockDim 128.
}

uint32_t dpo::kernelChildBlockDim(BenchmarkId Bench) {
  switch (Bench) {
  case BenchmarkId::SP: return 32;
  case BenchmarkId::BT: return 64;
  default: return 128;
  }
}

//===----------------------------------------------------------------------===//
// Cases
//===----------------------------------------------------------------------===//

WorkloadOutput KernelCase::reference() const {
  switch (Bench) {
  case BenchmarkId::BFS: return runBfs(Graph);
  case BenchmarkId::SSSP: return runSssp(Graph);
  case BenchmarkId::MSTF: return runMstFind(Graph);
  case BenchmarkId::MSTV: return runMstVerify(Graph);
  case BenchmarkId::TC: return runTriangleCount(Graph);
  case BenchmarkId::SP: return runSurveyProp(Formula);
  case BenchmarkId::BT: return runBezier(Bezier);
  }
  return {};
}

KernelCase dpo::makeGraphKernelCase(BenchmarkId Bench, std::string Name,
                                    CsrGraph Graph) {
  KernelCase Case;
  Case.Bench = Bench;
  Case.Name = std::move(Name);
  Case.Graph = std::move(Graph);
  return Case;
}

KernelCase dpo::makeSatKernelCase(std::string Name, SatFormula Formula) {
  KernelCase Case;
  Case.Bench = BenchmarkId::SP;
  Case.Name = std::move(Name);
  Case.Formula = std::move(Formula);
  return Case;
}

KernelCase dpo::makeBezierKernelCase(std::string Name, BezierDataset Bezier) {
  KernelCase Case;
  Case.Bench = BenchmarkId::BT;
  Case.Name = std::move(Name);
  Case.Bezier = std::move(Bezier);
  return Case;
}

const std::vector<KernelCase> &dpo::differentialCorpus() {
  static const std::vector<KernelCase> Corpus = [] {
    // Scaled-down instances of the Table I generators: same degree
    // character (power-law / grid / lognormal / k-SAT / curvature), a few
    // hundred parents each, so the full pipeline x peephole matrix stays
    // CI-sized.
    CsrGraph KronMini = makeKronGraph(/*ScaleLog2=*/8, /*EdgeFactor=*/6.0);
    CsrGraph RoadMini = makeRoadGraph(/*Side=*/18);
    CsrGraph WebMini = makeWebGraph(/*NumVertices=*/400, /*AvgDegree=*/6.0);
    SatFormula Rand3Mini = makeRandomKSat(150, 630, 3);
    SatFormula Sat5Mini = makeRandomKSat(80, 750, 5);
    BezierDataset T32Mini = makeBezierLines(300, 32, 16.0);
    BezierDataset T2048Mini = makeBezierLines(96, 2048, 64.0);

    std::vector<KernelCase> Cases;
    auto Graph = [&](BenchmarkId B, const char *DName, const CsrGraph &G) {
      Cases.push_back(makeGraphKernelCase(
          B, std::string(benchmarkName(B)) + "/" + DName, G));
    };
    Graph(BenchmarkId::BFS, "kron-mini", KronMini);
    Graph(BenchmarkId::BFS, "road-mini", RoadMini);
    Graph(BenchmarkId::SSSP, "kron-mini", KronMini);
    Graph(BenchmarkId::SSSP, "road-mini", RoadMini);
    Graph(BenchmarkId::MSTF, "kron-mini", KronMini);
    Graph(BenchmarkId::MSTF, "road-mini", RoadMini);
    Graph(BenchmarkId::MSTV, "kron-mini", KronMini);
    Graph(BenchmarkId::MSTV, "web-mini", WebMini);
    Graph(BenchmarkId::TC, "kron-mini", KronMini);
    Graph(BenchmarkId::TC, "web-mini", WebMini);
    Cases.push_back(makeSatKernelCase("SP/rand3-mini", Rand3Mini));
    Cases.push_back(makeSatKernelCase("SP/sat5-mini", Sat5Mini));
    Cases.push_back(makeBezierKernelCase("BT/t32-mini", T32Mini));
    Cases.push_back(makeBezierKernelCase("BT/t2048-mini", T2048Mini));
    return Cases;
  }();
  return Corpus;
}

//===----------------------------------------------------------------------===//
// Device staging (shared by the differential harness and the tuner
// binding)
//===----------------------------------------------------------------------===//

namespace {

std::vector<int32_t> toI32(const std::vector<uint32_t> &V) {
  std::vector<int32_t> Out(V.size());
  for (size_t I = 0; I < V.size(); ++I) {
    assert(V[I] <= (uint32_t)std::numeric_limits<int32_t>::max());
    Out[I] = (int32_t)V[I];
  }
  return Out;
}

/// The forward (higher-numbered, sorted, deduplicated) adjacency TC runs
/// on — the same construction as the native reference.
void buildForwardCsr(const CsrGraph &G, std::vector<int32_t> &FPtr,
                     std::vector<int32_t> &FCol) {
  FPtr.assign(G.NumVertices + 1, 0);
  FCol.clear();
  std::vector<uint32_t> Fwd;
  for (uint32_t U = 0; U < G.NumVertices; ++U) {
    Fwd.clear();
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E)
      if (G.Col[E] > U)
        Fwd.push_back(G.Col[E]);
    std::sort(Fwd.begin(), Fwd.end());
    Fwd.erase(std::unique(Fwd.begin(), Fwd.end()), Fwd.end());
    for (uint32_t V : Fwd)
      FCol.push_back((int32_t)V);
    FPtr[U + 1] = (int32_t)FCol.size();
  }
}

/// The native reference's deterministic initial SP bias.
double initialSpBias(uint32_t V) {
  return ((V * 2654435761u) % 1000) / 1000.0 * 0.5 - 0.25;
}

} // namespace

namespace dpo {

int64_t kernelInf64() { return 0x7fffffffffffffffLL; }

KernelImage stageKernelCase(Device &Dev, const KernelCase &Case,
                            std::string *Error) {
  KernelImage Img;
  Img.Bench = Case.Bench;
  const CsrGraph &G = Case.Graph;

  // Encoding-budget validation, reported through *Error so NDEBUG builds
  // fail loudly instead of packing overlapping key fields.
  auto Reject = [&](const std::string &Why) {
    if (Error && Error->empty())
      *Error = "dataset outside kernel encoding budget: " + Why;
    return Img;
  };
  switch (Case.Bench) {
  case BenchmarkId::BFS:
  case BenchmarkId::SSSP:
  case BenchmarkId::MSTF:
  case BenchmarkId::MSTV:
  case BenchmarkId::TC:
    if (G.numEdges() > (uint64_t)std::numeric_limits<int32_t>::max())
      return Reject("edge count exceeds int32");
    if (G.NumVertices >= (1u << 20) &&
        (Case.Bench == BenchmarkId::MSTF || Case.Bench == BenchmarkId::BFS ||
         Case.Bench == BenchmarkId::SSSP))
      return Reject("vertex ids exceed the 20-bit key field");
    if (Case.Bench == BenchmarkId::MSTF)
      for (uint32_t W : G.Weight)
        if (W >= (1u << 22))
          return Reject("edge weights exceed the 22-bit key field");
    break;
  default:
    break;
  }

  switch (Case.Bench) {
  case BenchmarkId::BFS: {
    assert(G.NumVertices < (1u << 20) && "frontier ids exceed key budget");
    Img.NumParents = G.NumVertices;
    Img.NumEdges = G.numEdges();
    Img.RowPtr = Dev.allocI32(toI32(G.RowPtr));
    Img.Col = Dev.allocI32(toI32(G.Col));
    Img.Levels = Dev.alloc((uint64_t)G.NumVertices * 4);
    Img.Frontier = Dev.alloc(std::max<uint64_t>(1, G.NumVertices) * 4);
    Img.Next = Dev.alloc(std::max<uint64_t>(1, G.NumVertices) * 4);
    Img.NextSize = Dev.alloc(4);
    if (!Dev.error().empty()) // out of device memory: no address is valid
      return Img;
    Dev.fillI32(Img.Levels, G.NumVertices, -1);
    Dev.writeI32(Img.Levels, 0); // source vertex 0 at level 0
    Dev.writeI32(Img.Frontier, 0);
    break;
  }
  case BenchmarkId::SSSP: {
    Img.NumParents = G.NumVertices;
    Img.NumEdges = G.numEdges();
    Img.RowPtr = Dev.allocI32(toI32(G.RowPtr));
    Img.Col = Dev.allocI32(toI32(G.Col));
    Img.Weight = Dev.allocI32(toI32(G.Weight));
    Img.Dist = Dev.alloc((uint64_t)G.NumVertices * 8);
    Img.InList = Dev.alloc((uint64_t)G.NumVertices * 4);
    Img.Frontier = Dev.alloc(std::max<uint64_t>(1, G.NumVertices) * 4);
    Img.Next = Dev.alloc(std::max<uint64_t>(1, G.NumVertices) * 4);
    Img.NextSize = Dev.alloc(4);
    if (!Dev.error().empty()) // out of device memory: no address is valid
      return Img;
    Dev.fillI64(Img.Dist, G.NumVertices, kernelInf64());
    Dev.writeI64(Img.Dist, 0); // source vertex 0
    Dev.writeI32(Img.InList, 1);
    Dev.writeI32(Img.Frontier, 0);
    break;
  }
  case BenchmarkId::MSTF: {
    assert(G.NumVertices < (1u << 20) && "vertex ids exceed key budget");
    Img.NumParents = G.NumVertices;
    Img.NumEdges = G.numEdges();
    Img.RowPtr = Dev.allocI32(toI32(G.RowPtr));
    Img.Col = Dev.allocI32(toI32(G.Col));
    Img.Weight = Dev.allocI32(toI32(G.Weight));
    for (uint32_t W : G.Weight)
      assert(W < (1u << 22) && "weights exceed key budget");
    std::vector<int32_t> Identity(G.NumVertices);
    for (uint32_t V = 0; V < G.NumVertices; ++V)
      Identity[V] = (int32_t)V;
    Img.Comp = Dev.allocI32(Identity);
    Img.Best = Dev.alloc((uint64_t)G.NumVertices * 8);
    Img.Active = Dev.allocI32(Identity);
    if (!Dev.error().empty())
      return Img;
    Dev.fillI64(Img.Best, G.NumVertices, kernelInf64());
    break;
  }
  case BenchmarkId::MSTV: {
    Img.NumParents = G.NumVertices;
    Img.NumEdges = G.numEdges();
    Img.RowPtr = Dev.allocI32(toI32(G.RowPtr));
    std::vector<int32_t> W = G.Weight.empty()
                                 ? std::vector<int32_t>(G.numEdges(), 1)
                                 : toI32(G.Weight);
    Img.Weight = Dev.allocI32(W);
    Img.MinW = Dev.alloc((uint64_t)G.NumVertices * 4);
    if (!Dev.error().empty())
      return Img;
    Dev.fillI32(Img.MinW, G.NumVertices,
                std::numeric_limits<int32_t>::max());
    break;
  }
  case BenchmarkId::TC: {
    std::vector<int32_t> FPtr, FCol;
    buildForwardCsr(G, FPtr, FCol);
    Img.NumParents = G.NumVertices;
    Img.NumEdges = FCol.size();
    Img.RowPtr = Dev.allocI32(FPtr);
    Img.Col = Dev.allocI32(FCol);
    Img.Tri = Dev.alloc(8);
    break;
  }
  case BenchmarkId::SP: {
    const SatFormula &F = Case.Formula;
    Img.NumParents = F.NumVars;
    Img.K = F.K;
    Img.OccRow = Dev.allocI32(toI32(F.OccRowPtr));
    Img.OccClause = Dev.allocI32(toI32(F.OccClause));
    Img.Lits = Dev.allocI32(toI32(F.ClauseLits));
    std::vector<double> Bias(F.NumVars);
    for (uint32_t V = 0; V < F.NumVars; ++V)
      Bias[V] = initialSpBias(V);
    Img.Bias = Dev.allocF64(Bias);
    Img.NextBias = Dev.alloc((uint64_t)F.NumVars * 8);
    Img.Delta = Dev.alloc(std::max<uint64_t>(1, F.NumVars) * 8);
    Img.Term = Dev.alloc(std::max<uint64_t>(1, F.OccClause.size()) * 8);
    break;
  }
  case BenchmarkId::BT: {
    const BezierDataset &D = Case.Bezier;
    Img.NumParents = (uint32_t)D.Lines.size();
    size_t N = D.Lines.size();
    std::vector<float> P0x(N), P0y(N), P1x(N), P1y(N), P2x(N), P2y(N);
    std::vector<int32_t> Tess(N), OBase(N);
    int64_t Points = 0;
    for (size_t I = 0; I < N; ++I) {
      const BezierLine &L = D.Lines[I];
      P0x[I] = L.P0[0]; P0y[I] = L.P0[1];
      P1x[I] = L.P1[0]; P1y[I] = L.P1[1];
      P2x[I] = L.P2[0]; P2y[I] = L.P2[1];
      Tess[I] = (int32_t)L.Tessellation;
      OBase[I] = (int32_t)Points;
      Points += L.Tessellation;
    }
    Img.TotalPoints = (uint64_t)Points;
    Img.P0x = Dev.allocF32(P0x); Img.P0y = Dev.allocF32(P0y);
    Img.P1x = Dev.allocF32(P1x); Img.P1y = Dev.allocF32(P1y);
    Img.P2x = Dev.allocF32(P2x); Img.P2y = Dev.allocF32(P2y);
    Img.Tess = Dev.allocI32(Tess);
    Img.OBase = Dev.allocI32(OBase);
    Img.Out = Dev.alloc(std::max<uint64_t>(1, (uint64_t)Points) * 8);
    break;
  }
  }
  return Img;
}

std::vector<int64_t> kernelParentArgs(const KernelImage &Img,
                                      uint64_t Frontier, uint64_t Next,
                                      uint32_t NumParents, uint32_t Round) {
  switch (Img.Bench) {
  case BenchmarkId::BFS:
    return {(int64_t)Img.RowPtr, (int64_t)Img.Col,     (int64_t)Img.Levels,
            (int64_t)Frontier,   (int64_t)Next,        (int64_t)Img.NextSize,
            (int64_t)NumParents, (int64_t)(Round + 1)};
  case BenchmarkId::SSSP:
    return {(int64_t)Img.RowPtr,   (int64_t)Img.Col,  (int64_t)Img.Weight,
            (int64_t)Img.Dist,     (int64_t)Img.InList, (int64_t)Frontier,
            (int64_t)Next,         (int64_t)Img.NextSize,
            (int64_t)NumParents};
  case BenchmarkId::MSTF:
    return {(int64_t)Img.RowPtr, (int64_t)Img.Col,  (int64_t)Img.Weight,
            (int64_t)Img.Comp,   (int64_t)Img.Best, (int64_t)Img.Active,
            (int64_t)NumParents};
  case BenchmarkId::MSTV:
    return {(int64_t)Img.RowPtr, (int64_t)Img.Weight, (int64_t)Img.MinW,
            (int64_t)NumParents};
  case BenchmarkId::TC:
    return {(int64_t)Img.RowPtr, (int64_t)Img.Col, (int64_t)Img.Tri,
            (int64_t)NumParents};
  case BenchmarkId::SP:
    // `Frontier` carries the round's current-bias buffer (the harness
    // ping-pongs Bias/NextBias between rounds).
    return {(int64_t)Img.OccRow, (int64_t)Img.OccClause, (int64_t)Img.Lits,
            (int64_t)Frontier,   (int64_t)Img.Term,      (int64_t)Img.K,
            (int64_t)NumParents};
  case BenchmarkId::BT:
    return {(int64_t)Img.P0x,  (int64_t)Img.P0y,   (int64_t)Img.P1x,
            (int64_t)Img.P1y,  (int64_t)Img.P2x,   (int64_t)Img.P2y,
            (int64_t)Img.Out,  (int64_t)Img.Tess,  (int64_t)Img.OBase,
            (int64_t)NumParents};
  }
  return {};
}

} // namespace dpo

//===----------------------------------------------------------------------===//
// Tuner binding: replaying recorded rounds against the full dataset
//===----------------------------------------------------------------------===//

namespace {

/// Replays the native run's recorded per-round parent lists as frontier
/// arrays, so the tuner measures the real kernel's per-round work shape
/// (the exact child sizes of the heaviest rounds). Algorithm state
/// (levels, distances, components, biases) starts from the initial image
/// and evolves only through the sampled rounds actually executed: the
/// work *shape* is exact, state-dependent branch rates are approximate.
/// End-to-end correctness is the differential harness's job, not this
/// one's.
class ReplayBinding : public VmWorkloadBinding {
public:
  ReplayBinding(KernelCase Case, std::vector<std::vector<uint32_t>> Items)
      : Case(std::move(Case)), ParentItems(std::move(Items)) {}

  bool setup(Device &Dev, std::string &Error) override {
    std::string StageError;
    KernelImage Staged = stageKernelCase(Dev, Case, &StageError);
    if (!StageError.empty() || !Dev.error().empty()) {
      Error = "dataset staging failed: " +
              (StageError.empty() ? Dev.error() : StageError);
      return false;
    }
    // One binding serves concurrent measurement devices (the tuner's
    // parallel candidate prefetch), so the staged image is kept per
    // device under a lock instead of in a shared member.
    std::lock_guard<std::mutex> Lock(ImagesMutex);
    Images[&Dev] = Staged;
    return true;
  }

  std::vector<int64_t> argsFor(Device &Dev, const NestedBatch &Batch,
                               unsigned OriginalIndex) override {
    KernelImage Img;
    {
      std::lock_guard<std::mutex> Lock(ImagesMutex);
      Img = Images.at(&Dev);
    }
    uint32_t NumParents = Batch.NumParentThreads;
    uint64_t Frontier = Img.Frontier;
    switch (Case.Bench) {
    case BenchmarkId::BFS:
    case BenchmarkId::SSSP:
      Dev.writeI32(Img.NextSize, 0);
      writeFrontier(Dev, Img.Frontier, OriginalIndex, NumParents);
      break;
    case BenchmarkId::MSTF:
      Dev.fillI64(Img.Best, Img.NumParents, kernelInf64());
      writeFrontier(Dev, Img.Active, OriginalIndex, NumParents);
      break;
    case BenchmarkId::SP:
      Frontier = Img.Bias;
      break;
    default:
      break;
    }
    return kernelParentArgs(Img, Frontier, Img.Next, NumParents,
                            OriginalIndex);
  }

private:
  void writeFrontier(Device &Dev, uint64_t Addr, unsigned Round,
                     uint32_t Count) {
    std::vector<int32_t> Items(Count);
    const std::vector<uint32_t> *Rec =
        Round < ParentItems.size() ? &ParentItems[Round] : nullptr;
    for (uint32_t I = 0; I < Count; ++I)
      Items[I] = Rec && I < Rec->size() ? (int32_t)(*Rec)[I] : (int32_t)I;
    Dev.writeI32Array(Addr, Items);
  }

  KernelCase Case;
  std::vector<std::vector<uint32_t>> ParentItems;
  std::mutex ImagesMutex;
  std::map<const Device *, KernelImage> Images;
};

uint64_t datasetBytes(const KernelCase &Case) {
  uint64_t Bytes = 0;
  switch (Case.Bench) {
  case BenchmarkId::SP:
    Bytes = (uint64_t)Case.Formula.OccRowPtr.size() * 4 +
            Case.Formula.OccClause.size() * 12 + // occ + term
            Case.Formula.ClauseLits.size() * 4 +
            (uint64_t)Case.Formula.NumVars * 24;
    break;
  case BenchmarkId::BT: {
    uint64_t Points = 0;
    for (const BezierLine &L : Case.Bezier.Lines)
      Points += L.Tessellation;
    Bytes = (uint64_t)Case.Bezier.Lines.size() * 32 + Points * 8;
    break;
  }
  default:
    Bytes = ((uint64_t)Case.Graph.NumVertices + 1 + Case.Graph.numEdges() +
             Case.Graph.Weight.size()) *
                4 +
            (uint64_t)Case.Graph.NumVertices * 24; // aux arrays
    break;
  }
  return Bytes;
}

} // namespace

VmWorkload dpo::kernelVmWorkload(const BenchCase &Case) {
  const WorkloadOutput &Out = runCase(Case);

  KernelCase KC;
  KC.Bench = Case.Bench;
  KC.Name = Case.name();
  switch (Case.Bench) {
  case BenchmarkId::SP:
    KC.Formula = datasetFormula(Case.Data);
    break;
  case BenchmarkId::BT:
    KC.Bezier = datasetBezier(Case.Data);
    break;
  default:
    KC.Graph = benchCaseGraph(Case);
    break;
  }

  VmWorkload W;
  W.Name = KC.Name;
  W.Source = KC.source();
  W.Batches = Out.Batches;
  W.MinMemoryBytes = datasetBytes(KC) * 2 + (8ull << 20);
  // A TC "unit" is a whole sorted-list intersection (hub pairs run to
  // tens of thousands of steps each); cap the sample so a measurement
  // probe stays inside the VM step budget.
  if (Case.Bench == BenchmarkId::TC)
    W.SampleUnitCap = 4000;
  W.Binding = std::make_shared<ReplayBinding>(std::move(KC), Out.ParentItems);
  return W;
}

bool dpo::parseWorkloadSpec(std::string_view Spec, BenchCase &Out,
                            std::string &Error) {
  auto Canon = [](std::string_view S) {
    std::string C;
    for (char Ch : S)
      C.push_back(Ch == '-' ? '_' : (char)std::tolower((unsigned char)Ch));
    return C;
  };
  size_t Colon = Spec.find(':');
  std::string Bench = Canon(Spec.substr(0, Colon));
  std::string Data =
      Colon == std::string_view::npos ? "" : Canon(Spec.substr(Colon + 1));

  static const std::pair<const char *, BenchmarkId> Benches[] = {
      {"bfs", BenchmarkId::BFS},   {"sssp", BenchmarkId::SSSP},
      {"mstf", BenchmarkId::MSTF}, {"mstv", BenchmarkId::MSTV},
      {"tc", BenchmarkId::TC},     {"sp", BenchmarkId::SP},
      {"bt", BenchmarkId::BT}};
  static const std::pair<const char *, DatasetId> Datasets[] = {
      {"kron", DatasetId::KRON},         {"cnr", DatasetId::CNR},
      {"road_ny", DatasetId::ROAD_NY},   {"rand_3", DatasetId::RAND3},
      {"rand3", DatasetId::RAND3},       {"5_sat", DatasetId::SAT5},
      {"sat5", DatasetId::SAT5},         {"t0032_c16", DatasetId::T0032_C16},
      {"t2048_c64", DatasetId::T2048_C64}};

  bool BenchOk = false, DataOk = false;
  for (const auto &[Name, Id] : Benches)
    if (Bench == Name) {
      Out.Bench = Id;
      BenchOk = true;
    }
  for (const auto &[Name, Id] : Datasets)
    if (Data == Name) {
      Out.Data = Id;
      DataOk = true;
    }
  if (BenchOk && Data.empty()) {
    // Default dataset: the benchmark's Fig. 11 pairing.
    for (const BenchCase &C : figure11Cases())
      if (C.Bench == Out.Bench) {
        Out.Data = C.Data;
        DataOk = true;
      }
  }
  if (!BenchOk || !DataOk) {
    Error = "expected <benchmark>[:<dataset>] with benchmark one of "
            "bfs, sssp, mstf, mstv, tc, sp, bt and dataset one of "
            "kron, cnr, road_ny, rand3, sat5, t0032_c16, t2048_c64";
    return false;
  }
  // The pair must be of the same kind — a graph benchmark on a SAT
  // formula would silently run on an empty dataset.
  auto DataKind = [](DatasetId Id) {
    switch (Id) {
    case DatasetId::RAND3:
    case DatasetId::SAT5:
      return BenchmarkId::SP;
    case DatasetId::T0032_C16:
    case DatasetId::T2048_C64:
      return BenchmarkId::BT;
    default:
      return BenchmarkId::BFS; // any graph benchmark
    }
  };
  BenchmarkId Kind = DataKind(Out.Data);
  bool GraphBench = Out.Bench != BenchmarkId::SP && Out.Bench != BenchmarkId::BT;
  if ((Kind == BenchmarkId::BFS) != GraphBench ||
      (!GraphBench && Kind != Out.Bench)) {
    Error = "dataset '" + Data + "' is not valid for benchmark '" + Bench +
            "' (graph benchmarks take kron/cnr/road_ny, sp takes "
            "rand3/sat5, bt takes t0032_c16/t2048_c64)";
    return false;
  }
  return true;
}
