//===--- VmWorkload.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/VmWorkload.h"

#include "vm/VM.h"

#include <random>

using namespace dpo;

bool dpo::launchWorkloadParent(Device &Dev, const std::string &ParentKernel,
                               uint32_t NumParents, uint32_t ParentBlockDim,
                               const std::vector<int64_t> &Args) {
  if (NumParents == 0)
    return true;
  uint32_t PB = ParentBlockDim ? ParentBlockDim : 128;
  uint32_t GridX = (NumParents + PB - 1) / PB;
  std::string Wrapper = ParentKernel + "_agg";
  if (Dev.hasHostFunction(Wrapper)) {
    std::vector<int64_t> HostArgs = {GridX, 1, 1, PB, 1, 1};
    HostArgs.insert(HostArgs.end(), Args.begin(), Args.end());
    return Dev.callHost(Wrapper, HostArgs);
  }
  return Dev.launchKernel(ParentKernel, {GridX, 1, 1}, {PB, 1, 1}, Args);
}

std::string dpo::nestedVmSource(uint32_t ChildBlockDim) {
  std::string B = std::to_string(ChildBlockDim);
  return "__global__ void child(int *out, int base, int count) {\n"
         "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
         "  if (i < count) {\n"
         "    out[base + i] = base * 7 + i * 3 + count;\n"
         "  }\n"
         "}\n"
         "__global__ void parent(int *out, int *counts, int *offsets, "
         "int numV) {\n"
         "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
         "  if (v < numV) {\n"
         "    int count = counts[v];\n"
         "    if (count > 0) {\n"
         "      child<<<(count + " +
         std::to_string(ChildBlockDim - 1) + ") / " + B + ", " + B +
         ">>>(out, offsets[v], count);\n"
         "    }\n"
         "  }\n"
         "}\n";
}

VmWorkload dpo::makeNestedVmWorkload(std::string Name,
                                     std::vector<NestedBatch> Batches,
                                     uint32_t ChildBlockDim) {
  VmWorkload W;
  W.Name = std::move(Name);
  W.Source = nestedVmSource(ChildBlockDim);
  W.Batches = std::move(Batches);
  return W;
}

VmWorkload dpo::canonicalTuneWorkload(unsigned Seed) {
  return makeNestedVmWorkload("canonical", makeSkewedBatches(4, 20000, Seed));
}

std::vector<NestedBatch> dpo::makeSkewedBatches(unsigned NumBatches,
                                                unsigned ParentsPerBatch,
                                                unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  std::vector<NestedBatch> Batches(NumBatches);
  for (NestedBatch &B : Batches) {
    B.NumParentThreads = ParentsPerBatch;
    B.ChildUnits.resize(ParentsPerBatch);
    for (uint32_t &Units : B.ChildUnits) {
      double X = U(Rng);
      Units = X < 0.4 ? 0 : X < 0.9 ? (1 + Rng() % 24) : (64 + Rng() % 1000);
    }
  }
  return Batches;
}
