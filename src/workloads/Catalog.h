//===--- Catalog.h - Benchmark/dataset pairs of Table I -----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef DPO_WORKLOADS_CATALOG_H
#define DPO_WORKLOADS_CATALOG_H

#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace dpo {

enum class BenchmarkId { BFS, BT, MSTF, MSTV, SP, SSSP, TC };
enum class DatasetId { KRON, CNR, ROAD_NY, RAND3, SAT5, T0032_C16, T2048_C64 };

const char *benchmarkName(BenchmarkId Id);
const char *datasetName(DatasetId Id);

struct BenchCase {
  BenchmarkId Bench;
  DatasetId Data;
  std::string name() const;
};

/// The 14 benchmark/dataset pairs of Fig. 9 (Table I), in figure order.
const std::vector<BenchCase> &figure9Cases();

/// The 5 graph benchmarks on the road graph (Fig. 12).
const std::vector<BenchCase> &figure12Cases();

/// The 7 per-benchmark sweep cases of Fig. 11 (one dataset each).
const std::vector<BenchCase> &figure11Cases();

/// Runs a case, generating (and caching) its dataset. Dataset generation
/// and the native algorithms are deterministic, so repeated calls return
/// identical batches and results.
const WorkloadOutput &runCase(const BenchCase &Case);

// The cached dataset instances behind runCase (the same objects each
// call). Only valid for the matching dataset kind.
const CsrGraph &datasetGraph(DatasetId Id);       ///< KRON / CNR / ROAD_NY
const SatFormula &datasetFormula(DatasetId Id);   ///< RAND3 / SAT5
const BezierDataset &datasetBezier(DatasetId Id); ///< T0032 / T2048

/// The graph a graph benchmark actually runs on for \p Case (TC runs the
/// induced head subgraph per the Table I note; everything else the full
/// graph).
CsrGraph benchCaseGraph(const BenchCase &Case);

/// Dataset statistics for the Table I reproduction.
struct DatasetStats {
  std::string Name;
  uint64_t Vertices = 0; ///< Or variables / lines.
  uint64_t Edges = 0;    ///< Or literal occurrences / tessellation points.
  double AvgDegree = 0;
  uint64_t MaxDegree = 0;
};
DatasetStats datasetStats(DatasetId Id);

} // namespace dpo

#endif // DPO_WORKLOADS_CATALOG_H
