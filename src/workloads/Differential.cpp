//===--- Differential.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Differential.h"

#include "parse/Parser.h"
#include "transform/Pipeline.h"
#include "vm/Compiler.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

using namespace dpo;

namespace {

/// The parent launch shape for one program (the wrapper routing itself
/// lives in launchWorkloadParent, shared with the empirical tuner).
struct ParentEntry {
  uint32_t ParentBlockDim = 128;
};

bool launchParent(Device &Dev, const ParentEntry &E, uint32_t NumParents,
                  const std::vector<int64_t> &Args, std::string &Error) {
  if (launchWorkloadParent(Dev, "parent", NumParents, E.ParentBlockDim, Args))
    return true;
  Error = "parent launch failed: " + Dev.error();
  return false;
}

//===----------------------------------------------------------------------===//
// Per-benchmark drivers. Each mirrors its native reference's host loop
// (round structure, termination conditions, reduction order) while the
// VM kernels do the per-round work — including producing the next
// frontier/worklist, so the rounds themselves are VM-computed state.
//===----------------------------------------------------------------------===//

bool driveBfs(Device &Dev, const KernelImage &Img, const ParentEntry &E,
              WorkloadOutput &P, std::string &Error) {
  uint64_t Cur = Img.Frontier, Nxt = Img.Next;
  uint32_t NumF = 1; // staged frontier: the source vertex
  for (uint32_t Round = 0; NumF > 0; ++Round) {
    if (Round > Img.NumParents) {
      Error = "BFS did not terminate";
      return false;
    }
    Dev.writeI32(Img.NextSize, 0);
    if (!launchParent(Dev, E,
                      NumF, kernelParentArgs(Img, Cur, Nxt, NumF, Round),
                      Error))
      return false;
    NumF = (uint32_t)Dev.readI32(Img.NextSize);
    std::swap(Cur, Nxt);
  }
  std::vector<int32_t> Levels = Dev.readI32Array(Img.Levels, Img.NumParents);
  P.Levels.resize(Levels.size());
  for (size_t V = 0; V < Levels.size(); ++V)
    P.Levels[V] = Levels[V] < 0 ? UnreachedLevel : (uint32_t)Levels[V];
  return true;
}

bool driveSssp(Device &Dev, const KernelImage &Img, const ParentEntry &E,
               WorkloadOutput &P, std::string &Error) {
  uint64_t Cur = Img.Frontier, Nxt = Img.Next;
  uint32_t NumF = 1;
  unsigned Iterations = 0;
  const unsigned MaxIterations = 4000; // the native reference's cap
  while (NumF > 0 && Iterations++ < MaxIterations) {
    // The native loop clears every worklist member's in-list flag before
    // any relaxation; mirroring that here keeps re-queueing exact even
    // when thresholding interleaves serialized relaxations.
    std::vector<int32_t> Members = Dev.readI32Array(Cur, NumF);
    for (int32_t M : Members)
      Dev.writeI32(Img.InList + (uint64_t)M * 4, 0);
    Dev.writeI32(Img.NextSize, 0);
    if (!launchParent(Dev, E,
                      NumF, kernelParentArgs(Img, Cur, Nxt, NumF, 0), Error))
      return false;
    NumF = (uint32_t)Dev.readI32(Img.NextSize);
    std::swap(Cur, Nxt);
  }
  std::vector<int64_t> Dist = Dev.readI64Array(Img.Dist, Img.NumParents);
  P.Dist.resize(Dist.size());
  for (size_t V = 0; V < Dist.size(); ++V)
    P.Dist[V] = Dist[V] == kernelInf64() ? InfDist : (uint64_t)Dist[V];
  return true;
}

bool driveMstf(Device &Dev, const KernelImage &Img, const ParentEntry &E,
               WorkloadOutput &P, std::string &Error) {
  uint32_t NumV = Img.NumParents;
  std::vector<uint32_t> Comp(NumV), Active(NumV);
  for (uint32_t V = 0; V < NumV; ++V)
    Comp[V] = Active[V] = V;
  auto Find = [&](uint32_t V) {
    while (Comp[V] != V) {
      Comp[V] = Comp[Comp[V]]; // path halving, as the native reference
      V = Comp[V];
    }
    return V;
  };

  std::vector<int32_t> RowPtrHost, ColHost;
  // The still-active recomputation needs host-side adjacency; read the
  // staged CSR back once (it is the dataset, unmodified).
  RowPtrHost = Dev.readI32Array(Img.RowPtr, NumV + 1);
  ColHost = Dev.readI32Array(Img.Col, Img.NumEdges);

  for (unsigned Round = 0; Round < 64; ++Round) {
    // Stage the round: fully-compressed components, reset best keys,
    // current active list.
    std::vector<int32_t> CompC(NumV);
    for (uint32_t V = 0; V < NumV; ++V)
      CompC[V] = (int32_t)Find(V);
    Dev.writeI32Array(Img.Comp, CompC);
    Dev.fillI64(Img.Best, NumV, kernelInf64());
    std::vector<int32_t> ActiveI(Active.begin(), Active.end());
    Dev.writeI32Array(Img.Active, ActiveI);

    if (!launchParent(Dev, E, (uint32_t)Active.size(),
                      kernelParentArgs(Img, 0, 0, (uint32_t)Active.size(), 0),
                      Error))
      return false;

    std::vector<int64_t> Best = Dev.readI64Array(Img.Best, NumV);
    bool AnyCandidate = false;
    for (int64_t Key : Best)
      if (Key != kernelInf64())
        AnyCandidate = true;
    if (!AnyCandidate) // native: Cheapest.empty()
      break;

    bool Merged = false;
    for (uint32_t R = 0; R < NumV; ++R) {
      int64_t Key = Best[R];
      if (Key == kernelInf64())
        continue;
      uint32_t Mx = (uint32_t)(Key & 0xFFFFF);
      uint32_t Mn = (uint32_t)((Key >> 20) & 0xFFFFF);
      uint32_t W = (uint32_t)(Key >> 40);
      uint32_t RU = Find(Mn);
      uint32_t RV = Find(Mx);
      if (RU == RV)
        continue;
      Comp[std::max(RU, RV)] = std::min(RU, RV);
      P.MstWeight += W;
      Merged = true;
    }
    if (!Merged)
      break;

    std::vector<uint32_t> StillActive;
    for (uint32_t U : Active) {
      uint32_t CU = Find(U);
      bool HasOut = false;
      for (int32_t EIdx = RowPtrHost[U]; EIdx < RowPtrHost[U + 1] && !HasOut;
           ++EIdx)
        HasOut = Find((uint32_t)ColHost[EIdx]) != CU;
      if (HasOut)
        StillActive.push_back(U);
    }
    if (StillActive.empty())
      break;
    Active.swap(StillActive);
  }
  return true;
}

bool driveMstv(Device &Dev, const KernelImage &Img, const ParentEntry &E,
               WorkloadOutput &P, std::string &Error) {
  if (!launchParent(Dev, E, Img.NumParents,
                    kernelParentArgs(Img, 0, 0, Img.NumParents, 0), Error))
    return false;
  std::vector<int32_t> MinW = Dev.readI32Array(Img.MinW, Img.NumParents);
  double Sum = 0;
  for (int32_t W : MinW)
    if (W != std::numeric_limits<int32_t>::max())
      Sum += (uint32_t)W;
  P.CheckSum = Sum;
  return true;
}

bool driveTc(Device &Dev, const KernelImage &Img, const ParentEntry &E,
             WorkloadOutput &P, std::string &Error) {
  if (!launchParent(Dev, E, Img.NumParents,
                    kernelParentArgs(Img, 0, 0, Img.NumParents, 0), Error))
    return false;
  P.TriangleCount = (uint64_t)Dev.readI64(Img.Tri);
  return true;
}

bool driveSp(Device &Dev, const KernelImage &Img, const ParentEntry &E,
             WorkloadOutput &P, std::string &Error) {
  uint64_t Bias = Img.Bias, NextBias = Img.NextBias;
  double MaxDelta = 1.0;
  const unsigned MaxIters = 24; // runSurveyProp's default
  for (unsigned Iter = 0; Iter < MaxIters && MaxDelta > 1e-3; ++Iter) {
    if (!launchParent(Dev, E, Img.NumParents,
                      kernelParentArgs(Img, Bias, 0, Img.NumParents, 0),
                      Error))
      return false;
    if (!Dev.launchKernel(
            "update", {(Img.NumParents + 127) / 128, 1, 1}, {128, 1, 1},
            {(int64_t)Img.OccRow, (int64_t)Bias, (int64_t)NextBias,
             (int64_t)Img.Delta, (int64_t)Img.Term, (int64_t)Img.K,
             (int64_t)Img.NumParents})) {
      Error = "update launch failed: " + Dev.error();
      return false;
    }
    std::vector<double> Delta = Dev.readF64Array(Img.Delta, Img.NumParents);
    MaxDelta = 0;
    for (double D : Delta)
      MaxDelta = std::max(MaxDelta, D);
    std::swap(Bias, NextBias);
  }
  P.Converged = MaxDelta <= 1e-3;
  std::vector<double> Final = Dev.readF64Array(Bias, Img.NumParents);
  double Sum = 0;
  for (double B : Final)
    Sum += B;
  P.CheckSum = Sum;
  return true;
}

bool driveBt(Device &Dev, const KernelImage &Img, const ParentEntry &E,
             WorkloadOutput &P, std::string &Error) {
  if (!launchParent(Dev, E, Img.NumParents,
                    kernelParentArgs(Img, 0, 0, Img.NumParents, 0), Error))
    return false;
  std::vector<double> Points = Dev.readF64Array(Img.Out, Img.TotalPoints);
  double Sum = 0;
  for (double V : Points)
    Sum += V;
  P.CheckSum = Sum;
  return true;
}

bool bitIdentical(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

} // namespace

DifferentialRun dpo::runKernelCaseOnVm(const KernelCase &Case,
                                       std::string_view PipelineText,
                                       bool OptimizeBytecode,
                                       uint64_t MemoryBytes,
                                       unsigned Workers, ExecMode Mode,
                                       const LaunchProfile *ProfileIn,
                                       LaunchProfile *ProfileOut) {
  DifferentialRun R;

  std::string Src = Case.source();
  if (!PipelineText.empty()) {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Src, PipelineText,
                                      literalKnobConfig(ProfileIn), Diags);
    if (Src.empty()) {
      R.Error = "pipeline '" + std::string(PipelineText) +
                "' failed: " + Diags.str();
      return R;
    }
  }
  R.TransformedSource = Src;

  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Src, Ctx, Diags);
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = OptimizeBytecode;
  VmProgram Program;
  if (TU)
    Program = compileProgram(TU, Diags, Opts);
  if (!TU || Diags.hasErrors()) {
    R.Error = "bytecode compile failed: " + Diags.str();
    return R;
  }
  DifferentialRun Run = runKernelCaseOnVmProgram(
      Case, std::move(Program), MemoryBytes, Workers, Mode,
      /*CaptureGridLog=*/false, ProfileOut);
  Run.TransformedSource = std::move(R.TransformedSource);
  return Run;
}

DifferentialRun dpo::runKernelCaseOnVmProgram(const KernelCase &Case,
                                              VmProgram Program,
                                              uint64_t MemoryBytes,
                                              unsigned Workers, ExecMode Mode,
                                              bool CaptureGridLog,
                                              LaunchProfile *ProfileOut) {
  DifferentialRun R;
  auto Dev = std::make_unique<Device>(std::move(Program), MemoryBytes, Mode);
  if (Workers)
    Dev->setWorkers(Workers);
  if (ProfileOut || CaptureGridLog)
    Dev->setGridLogEnabled(true);

  std::string StageError;
  KernelImage Img = stageKernelCase(*Dev, Case, &StageError);
  if (!StageError.empty() || !Dev->error().empty()) {
    R.Error = "dataset staging failed: " +
              (StageError.empty() ? Dev->error() : StageError);
    return R;
  }

  ParentEntry E;
  E.ParentBlockDim = kernelParentBlockDim(Case.Bench);

  bool Ok = false;
  switch (Case.Bench) {
  case BenchmarkId::BFS: Ok = driveBfs(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::SSSP: Ok = driveSssp(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::MSTF: Ok = driveMstf(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::MSTV: Ok = driveMstv(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::TC: Ok = driveTc(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::SP: Ok = driveSp(*Dev, Img, E, R.Payload, R.Error); break;
  case BenchmarkId::BT: Ok = driveBt(*Dev, Img, E, R.Payload, R.Error); break;
  }
  if (!Ok)
    return R;

  R.Stats = Dev->stats();
  if (CaptureGridLog)
    R.GridLog = Dev->gridLog();
  if (ProfileOut)
    *ProfileOut = harvestProfile(Dev->gridLog(), Dev->program());
  R.Ok = true;
  return R;
}

bool dpo::payloadsMatch(BenchmarkId Bench, const WorkloadOutput &Native,
                        const WorkloadOutput &Vm, std::string &Why) {
  auto CheckSumMatch = [&](const char *What) {
    if (bitIdentical(Native.CheckSum, Vm.CheckSum))
      return true;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s checksum differs: native %.17g vs VM %.17g", What,
                  Native.CheckSum, Vm.CheckSum);
    Why = Buf;
    return false;
  };

  switch (Bench) {
  case BenchmarkId::BFS:
    if (Native.Levels.size() != Vm.Levels.size()) {
      Why = "level array size differs";
      return false;
    }
    for (size_t V = 0; V < Native.Levels.size(); ++V)
      if (Native.Levels[V] != Vm.Levels[V]) {
        Why = "level of vertex " + std::to_string(V) + " differs: native " +
              std::to_string(Native.Levels[V]) + " vs VM " +
              std::to_string(Vm.Levels[V]);
        return false;
      }
    return true;
  case BenchmarkId::SSSP:
    if (Native.Dist.size() != Vm.Dist.size()) {
      Why = "distance array size differs";
      return false;
    }
    for (size_t V = 0; V < Native.Dist.size(); ++V)
      if (Native.Dist[V] != Vm.Dist[V]) {
        Why = "distance of vertex " + std::to_string(V) +
              " differs: native " + std::to_string(Native.Dist[V]) +
              " vs VM " + std::to_string(Vm.Dist[V]);
        return false;
      }
    return true;
  case BenchmarkId::MSTF:
    if (Native.MstWeight != Vm.MstWeight) {
      Why = "MST weight differs: native " + std::to_string(Native.MstWeight) +
            " vs VM " + std::to_string(Vm.MstWeight);
      return false;
    }
    return true;
  case BenchmarkId::MSTV:
    return CheckSumMatch("MSTV");
  case BenchmarkId::TC:
    if (Native.TriangleCount != Vm.TriangleCount) {
      Why = "triangle count differs: native " +
            std::to_string(Native.TriangleCount) + " vs VM " +
            std::to_string(Vm.TriangleCount);
      return false;
    }
    return true;
  case BenchmarkId::SP:
    if (Native.Converged != Vm.Converged) {
      Why = "SP convergence flag differs";
      return false;
    }
    return CheckSumMatch("SP");
  case BenchmarkId::BT:
    return CheckSumMatch("BT");
  }
  Why = "unknown benchmark";
  return false;
}

const std::vector<std::string> &dpo::differentialPipelines() {
  static const std::vector<std::string> Pipelines = {
      "", // untransformed lowering
      // Thresholding across its range (never / mid / always serialize).
      "threshold[4]",
      "threshold[64]",
      "threshold[1000000]",
      // Coarsening factors.
      "coarsen[2]",
      "coarsen[8]",
      // Every aggregation granularity, plus the Section V-B
      // participation threshold.
      "aggregate[warp]",
      "aggregate[block]",
      "aggregate[multiblock:4]",
      "aggregate[grid]",
      "aggregate[block:agg-threshold=2]",
      // Paper-ordered combinations (Fig. 8(a)).
      "threshold[32],coarsen[4]",
      "threshold[32],aggregate[multiblock:8]",
      "coarsen[4],aggregate[block]",
      "threshold[32],coarsen[2],aggregate[multiblock:4]",
      "threshold[16],coarsen[4],aggregate[grid]",
      // Reversed orderings only spellable through -passes= (these caught
      // the serializer's loop-variable capture bug).
      "coarsen[2],threshold[32]",
      "aggregate[block],threshold[16]",
      // Repeated application: the second coarsening must detect the
      // already-coarsened kernel and stay semantics-preserving.
      "coarsen[2],coarsen[2]",
      // Speculative serialization: a tiny bound (guard almost always
      // fails, fallback launch path), a huge bound (guard always passes,
      // serialized path), and the composition after thresholding.
      "speculate[4]",
      "speculate[1000000]",
      "threshold[32],speculate[64]",
  };
  return Pipelines;
}
