//===--- Simulator.cpp --------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dpo;

namespace {

uint64_t ceilDiv(uint64_t A, uint64_t B) { return (A + B - 1) / B; }

double log2Ceil(uint64_t V) {
  double L = 0;
  uint64_t X = 1;
  while (X < V) {
    X <<= 1;
    ++L;
  }
  return L;
}

} // namespace

SimResult dpo::simulateBatch(const GpuModel &Gpu, const NestedBatch &Batch,
                             const ExecConfig &Config) {
  SimResult Result;
  if (Batch.NumParentThreads == 0)
    return Result;

  LaunchPlan Plan = buildLaunchPlan(Batch, Config);
  Result.DeviceLaunches = Plan.DeviceLaunches;
  Result.HostLaunches = Plan.HostLaunches;
  Result.ChildBlocks = Plan.TotalCoarsenedBlocks;

  const double Clock = Gpu.ClockGHz * 1e3; // cycles per microsecond
  const unsigned W = Gpu.WarpSize;

  //===--- Parent kernel: warp-granular lane-max accounting ---------------===//

  double ParentWarpCyclesSum = 0; // pure parent work + serialized children
  double ParentMaxWarpCycles = 0;
  double AggLogicCycles = 0;      // Fig. 7 parent-side logic
  double LaunchIssueCycles = 0;   // per-launching-lane issue cost

  double PresenceCycles =
      (Batch.KernelHasLaunch && !Config.NoCdp) ? Gpu.LaunchPresenceCycles : 0;

  double AggPerParent = 0;
  switch (Config.Agg) {
  case AggGranularity::Warp:
    AggPerParent = Gpu.AggWarpStoreCycles;
    break;
  case AggGranularity::Block:
    AggPerParent = Gpu.AggSharedStoreCycles;
    break;
  case AggGranularity::MultiBlock:
  case AggGranularity::Grid:
    AggPerParent = Gpu.AggStoreCyclesPerParent;
    break;
  case AggGranularity::None:
    break;
  }

  for (uint32_t Base = 0; Base < Batch.NumParentThreads; Base += W) {
    uint32_t End = std::min(Batch.NumParentThreads, Base + W);
    double MaxWork = 0;  // divergent serialized work: lane max
    double MaxAgg = 0;
    double MaxIssue = 0;
    for (uint32_t Tid = Base; Tid < End; ++Tid) {
      double Lane = Batch.ParentCyclesPerThread + PresenceCycles +
                    Plan.SerializedUnits[Tid] * Batch.SerialCyclesPerUnit;
      MaxWork = std::max(MaxWork, Lane);
      if (Plan.Participates[Tid]) {
        if (Config.Agg == AggGranularity::None)
          MaxIssue = std::max(MaxIssue, Gpu.LaunchIssueCycles);
        else
          MaxAgg = std::max(MaxAgg, AggPerParent);
      }
    }
    ParentWarpCyclesSum += MaxWork;
    ParentMaxWarpCycles = std::max(ParentMaxWarpCycles, MaxWork);
    AggLogicCycles += MaxAgg;
    LaunchIssueCycles += MaxIssue;
  }

  // Group-completion counters: one atomic per parent block (block /
  // multi-block) or per thread (warp); single hot counter for grid.
  uint64_t ParentBlocks =
      ceilDiv(Batch.NumParentThreads, Batch.ParentBlockDim);
  if (Config.Agg == AggGranularity::Block ||
      Config.Agg == AggGranularity::MultiBlock)
    AggLogicCycles += (double)ParentBlocks * Gpu.AggGroupCounterCycles / W;
  if (Config.Agg == AggGranularity::Warp)
    AggLogicCycles +=
        (double)Plan.ParticipantCount * Gpu.AggGroupCounterCycles / W;
  double ParentUs =
      std::max(ParentWarpCyclesSum / (Gpu.NumSMs * Clock),
               ParentMaxWarpCycles / Clock);
  double AggUs = AggLogicCycles / (Gpu.NumSMs * Clock);
  // Contention: participants in the same group serialize on that group's
  // packed counter (a true serial chain, not hidden by SM parallelism).
  // The biggest group bounds the chain.
  if (Config.Agg != AggGranularity::None)
    AggUs += (double)Plan.MaxGroupParticipants * Gpu.AtomicContentionCycles /
             Clock;

  //===--- Launch subsystem ------------------------------------------------===//

  double LaunchUs = 0;
  uint64_t DevLaunches = Plan.DeviceLaunches;
  if (DevLaunches > 0) {
    LaunchUs += Gpu.LaunchBaseLatencyUs;
    LaunchUs += (double)DevLaunches * Gpu.LaunchServiceUs;
    double K = std::min((double)DevLaunches, 20000.0) / 1000.0;
    LaunchUs += K * K * Gpu.LaunchCongestionQuadUs;
    if (DevLaunches > Gpu.PendingLaunchPool)
      LaunchUs += (double)(DevLaunches - Gpu.PendingLaunchPool) *
                  Gpu.PoolStallServiceUs;
    LaunchUs += LaunchIssueCycles / (Gpu.NumSMs * Clock);
  }
  if (Plan.HostLaunches > 0)
    LaunchUs += Gpu.HostSyncOverheadUs +
                (double)Plan.HostLaunches * Gpu.HostLaunchOverheadUs;

  // Launch processing overlaps the tail of parent execution.
  double LaunchVisibleUs =
      std::max(0.0, LaunchUs - ParentUs * Gpu.LaunchOverlapFraction);

  //===--- Child execution --------------------------------------------------===//

  double ChildWorkWarpCycles = 0;
  double DisaggCycles = 0;
  double MaxGridCriticalCycles = 0;
  double SumGridCriticalCycles = 0;

  for (const PlannedGrid &Grid : Plan.Grids) {
    if (Grid.CoarsenedBlocks == 0)
      continue;
    // Per original block: warps of work plus the per-block preamble.
    double PerOrigCycles =
        (double)ceilDiv(Grid.BlockDim, W) * Batch.ChildCyclesPerUnit +
        Batch.ChildBlockBaseCycles;
    double GridWorkCycles = (double)Grid.OrigBlocks * PerOrigCycles;
    ChildWorkWarpCycles += GridWorkCycles;

    double PerBlockDisagg = 0;
    if (Grid.Participants > 1 || Config.Agg != AggGranularity::None) {
      PerBlockDisagg = Gpu.DisaggSetupCycles +
                       log2Ceil(std::max<uint64_t>(1, Grid.Participants)) *
                           Gpu.DisaggProbeCycles;
      DisaggCycles += (double)Grid.CoarsenedBlocks * PerBlockDisagg;
    }

    // Critical path of this grid: one coarsened block.
    double OrigPerCoarse =
        (double)ceilDiv(Grid.OrigBlocks, Grid.CoarsenedBlocks);
    double BlockCycles = PerBlockDisagg + OrigPerCoarse * PerOrigCycles;
    MaxGridCriticalCycles = std::max(MaxGridCriticalCycles, BlockCycles);
    SumGridCriticalCycles += BlockCycles;
  }

  double ChildUs = 0;
  if (!Plan.Grids.empty()) {
    double WorkUs = (ChildWorkWarpCycles + DisaggCycles) / (Gpu.NumSMs * Clock);
    double DispatchUs = (double)Plan.TotalCoarsenedBlocks * Gpu.BlockDispatchUs;
    // Concurrency limit: tiny grids cannot fill the device; grids beyond
    // the resident limit serialize in waves of average critical path.
    double AvgGridCriticalUs =
        SumGridCriticalCycles / Plan.Grids.size() / Clock;
    double ConcurrencyUs = 0;
    if (Plan.Grids.size() > Gpu.MaxConcurrentGrids)
      ConcurrencyUs = (double)Plan.Grids.size() / Gpu.MaxConcurrentGrids *
                      AvgGridCriticalUs;
    double CriticalUs = MaxGridCriticalCycles / Clock;
    ChildUs = std::max({WorkUs + DispatchUs, ConcurrencyUs, CriticalUs});
  }

  double ChildOverlap = 0;
  switch (Config.Agg) {
  case AggGranularity::None:
    ChildOverlap = Gpu.ChildOverlapNoAgg;
    break;
  case AggGranularity::Warp:
    ChildOverlap = Gpu.ChildOverlapWarp;
    break;
  case AggGranularity::Block:
    ChildOverlap = Gpu.ChildOverlapBlock;
    break;
  case AggGranularity::MultiBlock:
    ChildOverlap = Gpu.ChildOverlapMultiBlock;
    break;
  case AggGranularity::Grid:
    ChildOverlap = 0;
    break;
  }
  double ChildVisibleUs =
      ChildUs - std::min(ChildUs * ChildOverlap, ParentUs * 0.9);

  //===--- Compose -----------------------------------------------------------===//

  double DisaggUs = DisaggCycles / (Gpu.NumSMs * Clock);
  double ChildWorkUs = std::max(0.0, ChildVisibleUs - DisaggUs);
  if (ChildVisibleUs <= 0)
    ChildWorkUs = 0;

  Result.Breakdown.ParentWork = ParentUs;
  Result.Breakdown.Aggregation = AggUs;
  Result.Breakdown.Launch = LaunchVisibleUs;
  Result.Breakdown.Disaggregation = std::min(DisaggUs, ChildVisibleUs);
  Result.Breakdown.ChildWork = ChildWorkUs;
  Result.TimeUs = Result.Breakdown.total();
  return Result;
}

SimResult dpo::simulateBatches(const GpuModel &Gpu,
                               const std::vector<NestedBatch> &Batches,
                               const ExecConfig &Config) {
  SimResult Total;
  for (const NestedBatch &Batch : Batches)
    Total += simulateBatch(Gpu, Batch, Config);
  return Total;
}

std::vector<size_t> dpo::rankConfigs(const GpuModel &Gpu,
                                     const std::vector<NestedBatch> &Batches,
                                     const std::vector<ExecConfig> &Candidates) {
  std::vector<double> Times(Candidates.size());
  for (size_t I = 0; I < Candidates.size(); ++I)
    Times[I] = simulateBatches(Gpu, Batches, Candidates[I]).TimeUs;
  std::vector<size_t> Order(Candidates.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return Times[A] < Times[B]; });
  return Order;
}
