//===--- Simulator.h - Timing model for nested-parallel kernels ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the execution time and the Fig. 10 phase breakdown of one
/// parent-kernel invocation (a NestedBatch) under an execution strategy
/// (ExecConfig), using the LaunchPlan from src/rt.
///
/// Model summary (all at warp granularity, the unit of SIMD execution):
///
///  parent time  = max(sum of parent warp-cycles / (SMs * clock),
///                     slowest warp)   -- divergence = per-warp lane max
///  launch time  = pipeline latency + per-launch service (congestion) +
///                 pending-pool stalls, minus what hides under the parent
///  child time   = max(work-limited, dispatch-limited, concurrency-limited,
///                     critical path), minus granularity-dependent overlap
///  aggregation  = parent-side Fig. 7 logic incl. single-counter contention
///  disaggregation = per *coarsened* block binary search + config loads
///                   (coarsening amortizes it across original blocks)
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SIM_SIMULATOR_H
#define DPO_SIM_SIMULATOR_H

#include "rt/LaunchPlan.h"
#include "sim/GpuModel.h"

#include <vector>

namespace dpo {

/// Fig. 10 execution-time buckets (microseconds).
struct PhaseBreakdown {
  double ParentWork = 0;
  double ChildWork = 0;
  double Launch = 0;
  double Aggregation = 0;
  double Disaggregation = 0;

  double total() const {
    return ParentWork + ChildWork + Launch + Aggregation + Disaggregation;
  }
  PhaseBreakdown &operator+=(const PhaseBreakdown &O) {
    ParentWork += O.ParentWork;
    ChildWork += O.ChildWork;
    Launch += O.Launch;
    Aggregation += O.Aggregation;
    Disaggregation += O.Disaggregation;
    return *this;
  }
};

struct SimResult {
  double TimeUs = 0;           ///< Makespan of the batch.
  PhaseBreakdown Breakdown;    ///< Attributable time per phase.
  uint64_t DeviceLaunches = 0;
  uint64_t HostLaunches = 0;
  uint64_t ChildBlocks = 0;    ///< Coarsened blocks actually scheduled.

  SimResult &operator+=(const SimResult &O) {
    TimeUs += O.TimeUs;
    Breakdown += O.Breakdown;
    DeviceLaunches += O.DeviceLaunches;
    HostLaunches += O.HostLaunches;
    ChildBlocks += O.ChildBlocks;
    return *this;
  }
};

/// Simulates one batch under \p Config.
SimResult simulateBatch(const GpuModel &Gpu, const NestedBatch &Batch,
                        const ExecConfig &Config);

/// Simulates a multi-iteration workload (sums batch results).
SimResult simulateBatches(const GpuModel &Gpu,
                          const std::vector<NestedBatch> &Batches,
                          const ExecConfig &Config);

/// Ranks candidate execution strategies by simulated makespan: returns the
/// indices into \p Candidates ordered fastest-first (stable — equal-time
/// candidates keep their input order, which keeps tuner runs
/// deterministic). The hybrid autotuner uses this as a cheap first-stage
/// filter before spending VM-execution budget on the survivors.
std::vector<size_t> rankConfigs(const GpuModel &Gpu,
                                const std::vector<NestedBatch> &Batches,
                                const std::vector<ExecConfig> &Candidates);

} // namespace dpo

#endif // DPO_SIM_SIMULATOR_H
