//===--- GpuModel.h - V100-like device parameters -----------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost-model parameters for the timing simulator. Defaults approximate a
/// Volta V100 (the paper's evaluation platform): 80 SMs, 1.38 GHz, 32
/// warps/SM. The launch-subsystem parameters encode the first-order
/// effects the paper identifies: a device-side launch path with limited
/// throughput (congestion when tens of thousands of grids are launched), a
/// bounded pending-launch pool, a bounded number of concurrently resident
/// grids (underutilization when grids are tiny), per-block dispatch
/// overhead (what coarsening reduces), and host involvement for
/// grid-granularity aggregation. Absolute microseconds are synthetic; the
/// model's job is to preserve the *shape* of the paper's results.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SIM_GPUMODEL_H
#define DPO_SIM_GPUMODEL_H

namespace dpo {

struct GpuModel {
  // Compute fabric.
  unsigned NumSMs = 80;
  double ClockGHz = 1.38;
  unsigned WarpSize = 32;
  unsigned MaxThreadsPerSM = 2048;
  unsigned MaxBlocksPerSM = 32;
  unsigned MaxConcurrentGrids = 128;

  // Device-side launch path. The per-launch cost is cheap until the
  // launch queue saturates; past the knee, contention grows quadratically
  // (this is what makes ~6k-8k launches the paper's sweet spot, Section
  // VIII-C).
  double LaunchBaseLatencyUs = 5.0;  ///< Issue-to-schedulable latency.
  double LaunchServiceUs = 0.24;     ///< Per-launch throughput cost.
  double LaunchCongestionQuadUs = 0.30; ///< Saturates at 20k launches. ///< x (launches/1000)^2.
  unsigned PendingLaunchPool = 2048; ///< cudaLimitDevRuntimePendingLaunchCount.
  double PoolStallServiceUs = 0.10;   ///< Extra serialization past the pool.
  /// Per-thread instruction overhead from merely containing a launch
  /// (Section VIII-D: present even if the launch never executes).
  double LaunchPresenceCycles = 160;
  /// Issue cost paid by a launching parent thread (parameter marshalling).
  double LaunchIssueCycles = 700;

  // Block dispatch (GigaThread engine).
  double BlockDispatchUs = 0.025;

  // Host involvement (grid-granularity aggregation).
  double HostLaunchOverheadUs = 9.0;
  double HostSyncOverheadUs = 6.0;

  // Aggregation logic (Fig. 7 parent-side code).
  double AggStoreCyclesPerParent = 180;  ///< Packed atomic + stores + max.
  double AggSharedStoreCycles = 90;      ///< Block granularity (shared mem).
  double AggWarpStoreCycles = 55;        ///< Warp granularity (intrinsics).
  double AggGroupCounterCycles = 160;    ///< Finished-counter atomic per block.
  /// Serialized atomic throughput on one counter under contention; makes
  /// grid-granularity aggregation pay for hammering a single counter.
  double AtomicContentionCycles = 8.0;

  // Disaggregation logic (binary search + configuration loads).
  double DisaggProbeCycles = 50;  ///< One binary-search probe (global load).
  double DisaggSetupCycles = 130; ///< Parameter/configuration loads.

  // Overlap fractions: how much of a phase hides under the parent kernel.
  double LaunchOverlapFraction = 0.85;
  double ChildOverlapNoAgg = 0.5;   ///< Children start while parent runs.
  double ChildOverlapWarp = 0.45;
  double ChildOverlapBlock = 0.30;
  double ChildOverlapMultiBlock = 0.26;
  // Grid granularity: zero overlap (children wait for the whole parent).

  double cyclesToUs(double Cycles) const { return Cycles / (ClockGHz * 1e3); }
};

} // namespace dpo

#endif // DPO_SIM_GPUMODEL_H
