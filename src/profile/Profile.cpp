//===--- Profile.cpp ------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include "support/StringUtils.h"
#include "vm/VM.h"

#include <algorithm>
#include <sstream>

using namespace dpo;

//===----------------------------------------------------------------------===//
// Accumulation
//===----------------------------------------------------------------------===//

void LaunchProfile::addRecord(const std::string &SiteName, uint64_t Blocks,
                              uint64_t Threads, uint64_t BlockDim) {
  SiteHistogram &H = Sites[SiteName];
  ++H.Launches;
  ++H.Blocks[Blocks];
  ++H.Threads[Threads];
  ++H.BlockDims[BlockDim];
}

void LaunchProfile::merge(const LaunchProfile &Other) {
  for (const auto &[Name, H] : Other.Sites) {
    SiteHistogram &Mine = Sites[Name];
    Mine.Launches += H.Launches;
    for (const auto &[K, V] : H.Blocks)
      Mine.Blocks[K] += V;
    for (const auto &[K, V] : H.Threads)
      Mine.Threads[K] += V;
    for (const auto &[K, V] : H.BlockDims)
      Mine.BlockDims[K] += V;
  }
}

LaunchProfile dpo::harvestProfile(const std::vector<GridRecord> &Log,
                                  const VmProgram &Program) {
  LaunchProfile P;
  for (const GridRecord &R : Log) {
    if (R.Site == 0 || R.Site > Program.LaunchSiteNames.size())
      continue;
    P.addRecord(Program.LaunchSiteNames[R.Site - 1], R.Blocks, R.Threads,
                R.BlockDim);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Per-site knob selection
//===----------------------------------------------------------------------===//

namespace {

/// Smallest power of two >= \p X (X >= 1; saturates at 2^63).
uint64_t ceilPow2(uint64_t X) {
  uint64_t P = 1;
  while (P < X && P < (1ull << 63))
    P <<= 1;
  return P;
}

/// Largest power of two <= \p X (X >= 1).
uint64_t floorPow2(uint64_t X) {
  uint64_t P = 1;
  while ((P << 1) <= X && P < (1ull << 63))
    P <<= 1;
  return P;
}

/// Smallest key whose cumulative frequency reaches \p Pct percent of the
/// histogram's total mass (the inclusive percentile). 0 on empty.
uint64_t percentile(const std::map<uint64_t, uint64_t> &Hist, unsigned Pct) {
  uint64_t Total = 0;
  for (const auto &[K, V] : Hist)
    Total += V;
  if (Total == 0)
    return 0;
  uint64_t Need = (Total * Pct + 99) / 100;
  uint64_t Seen = 0;
  for (const auto &[K, V] : Hist) {
    Seen += V;
    if (Seen >= Need)
      return K;
  }
  return Hist.rbegin()->first;
}

} // namespace

unsigned LaunchProfile::siteThreshold(const std::string &SiteName,
                                      unsigned GlobalK) const {
  const SiteHistogram *H = find(SiteName);
  if (!H || H->Threads.empty())
    return GlobalK;
  // Largest observed launch the global knob would have serialized.
  uint64_t MaxSmall = 0;
  for (const auto &[Threads, Count] : H->Threads)
    if (Threads < GlobalK)
      MaxSmall = std::max(MaxSmall, Threads);
  if (MaxSmall == 0)
    return 1; // Nothing below the global threshold: never serialize here.
  uint64_t K = ceilPow2(MaxSmall + 1);
  return (unsigned)std::min<uint64_t>(K, GlobalK);
}

unsigned LaunchProfile::siteCoarsenFactor(const std::string &SiteName,
                                          unsigned GlobalF) const {
  const SiteHistogram *H = find(SiteName);
  if (!H || H->Blocks.empty())
    return GlobalF;
  uint64_t Median = percentile(H->Blocks, 50);
  if (Median <= 1)
    return 1;
  return (unsigned)std::min<uint64_t>(floorPow2(Median), GlobalF);
}

bool LaunchProfile::siteSpeculationBound(const std::string &SiteName,
                                         uint64_t &Bound) const {
  const SiteHistogram *H = find(SiteName);
  if (!H || H->Threads.empty())
    return false;
  Bound = ceilPow2(std::max<uint64_t>(percentile(H->Threads, 90), 1));
  return true;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void writeHist(std::ostringstream &OS, const char *Tag,
               const std::map<uint64_t, uint64_t> &Hist) {
  OS << "  " << Tag;
  for (const auto &[K, V] : Hist)
    OS << ' ' << K << ':' << V;
  OS << '\n';
}

bool parseHistLine(std::string_view Rest, std::map<uint64_t, uint64_t> &Hist,
                   std::string &Error) {
  for (std::string_view Pair : split(Rest, ' ')) {
    Pair = trim(Pair);
    if (Pair.empty())
      continue;
    size_t Colon = Pair.find(':');
    if (Colon == std::string_view::npos) {
      Error = "malformed histogram entry '" + std::string(Pair) + "'";
      return false;
    }
    uint64_t K = 0, V = 0;
    if (!parseU64(Pair.substr(0, Colon), K) ||
        !parseU64(Pair.substr(Colon + 1), V) || V == 0) {
      Error = "malformed histogram entry '" + std::string(Pair) + "'";
      return false;
    }
    Hist[K] += V;
  }
  return true;
}

} // namespace

std::string dpo::serializeProfile(const LaunchProfile &Profile) {
  std::ostringstream OS;
  OS << "dpo-profile v1\n";
  for (const auto &[Name, H] : Profile.Sites) {
    OS << "site " << Name << '\n';
    OS << "  launches " << H.Launches << '\n';
    writeHist(OS, "blocks", H.Blocks);
    writeHist(OS, "threads", H.Threads);
    writeHist(OS, "blockdims", H.BlockDims);
  }
  return OS.str();
}

bool dpo::parseProfile(std::string_view Text, LaunchProfile &Out,
                       std::string &Error) {
  Out = LaunchProfile();
  SiteHistogram *Cur = nullptr;
  bool SawHeader = false;
  for (std::string_view Line : split(Text, '\n')) {
    std::string_view T = trim(Line);
    if (T.empty())
      continue;
    if (!SawHeader) {
      if (T != "dpo-profile v1") {
        Error = "not a dpo-profile v1 file";
        return false;
      }
      SawHeader = true;
      continue;
    }
    if (startsWith(T, "site ")) {
      std::string Name(trim(T.substr(5)));
      if (Name.empty()) {
        Error = "empty site name";
        return false;
      }
      Cur = &Out.Sites[Name];
      continue;
    }
    if (!Cur) {
      Error = "histogram line before any 'site' line";
      return false;
    }
    if (startsWith(T, "launches ")) {
      uint64_t N = 0;
      if (!parseU64(trim(T.substr(9)), N)) {
        Error = "malformed launches line";
        return false;
      }
      Cur->Launches += N;
    } else if (startsWith(T, "blocks")) {
      if (!parseHistLine(T.substr(6), Cur->Blocks, Error))
        return false;
    } else if (startsWith(T, "threads")) {
      if (!parseHistLine(T.substr(7), Cur->Threads, Error))
        return false;
    } else if (startsWith(T, "blockdims")) {
      if (!parseHistLine(T.substr(9), Cur->BlockDims, Error))
        return false;
    } else {
      Error = "unrecognized profile line '" + std::string(T) + "'";
      return false;
    }
  }
  if (!SawHeader) {
    Error = "empty profile";
    return false;
  }
  return true;
}
