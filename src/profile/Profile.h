//===--- Profile.h - Per-launch-site execution profiles -------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile artifact: per-launch-site grid-dimension/occupancy
/// histograms harvested from vm::Device grid logs.
///
/// A profile is keyed by *site name* — the stable
/// "<caller>-><kernel>#<ordinal>" strings the bytecode compiler records
/// in VmProgram::LaunchSiteNames and every execution engine threads
/// through to GridRecord::Site. Histograms use sorted maps and count
/// only quantities that are deterministic at any worker count (grid
/// blocks, total threads, block dim — never step counts), so the same
/// workload serializes to byte-identical text no matter how many
/// workers drained the launch queue or which engine executed it.
///
/// Consumers:
///  - ThresholdingPass / CoarseningPass pick per-site knob values
///    (pipeline syntax `threshold[profile]` / `coarsen[profile]`);
///  - SpeculationPass picks the per-site small-grid guard bound;
///  - dpoptcc --profile-out= / --profile-in= record and replay them.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_PROFILE_PROFILE_H
#define DPO_PROFILE_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dpo {

struct GridRecord;
struct VmProgram;

/// Observed launch distribution of one launch site. Sorted maps keep
/// serialization order-independent of grid-log arrival order.
struct SiteHistogram {
  uint64_t Launches = 0;
  std::map<uint64_t, uint64_t> Blocks;    ///< grid block count -> frequency
  std::map<uint64_t, uint64_t> Threads;   ///< total thread count -> frequency
  std::map<uint64_t, uint64_t> BlockDims; ///< block dim -> frequency
};

/// A harvested (or parsed) profile: site name -> histogram. The map is
/// sorted by site name, so iteration — and therefore serialization — is
/// deterministic.
class LaunchProfile {
public:
  std::map<std::string, SiteHistogram> Sites;

  bool empty() const { return Sites.empty(); }

  /// Folds \p Other into this profile (histograms add).
  void merge(const LaunchProfile &Other);

  /// Accumulates one grid-log record under \p SiteName.
  void addRecord(const std::string &SiteName, uint64_t Blocks,
                 uint64_t Threads, uint64_t BlockDim);

  const SiteHistogram *find(const std::string &SiteName) const {
    auto It = Sites.find(SiteName);
    return It == Sites.end() ? nullptr : &It->second;
  }

  //===--- Per-site knob selection ----------------------------------------===//
  //
  // All three rules are pure functions of the site's histogram, so the
  // same profile always yields the same knob values. Sites absent from
  // the profile fall back to the global knob.

  /// Per-site serialization threshold for ThresholdingPass. A launch
  /// whose total thread count is below the threshold runs serialized.
  ///  - site unseen: \p GlobalK (no evidence, keep the global policy);
  ///  - every observed launch was >= \p GlobalK: 1 (serialization never
  ///    fires here — make the check constant-false-shaped and cheap);
  ///  - otherwise: the smallest power of two strictly above the largest
  ///    observed sub-threshold launch, capped at \p GlobalK (covers
  ///    everything the global knob would have serialized, no more).
  unsigned siteThreshold(const std::string &SiteName,
                         unsigned GlobalK) const;

  /// Per-site coarsening factor for CoarseningPass: the largest power of
  /// two no greater than the site's median grid block count, clamped to
  /// [1, \p GlobalF]. Unseen sites return \p GlobalF; a result of 1
  /// means "do not coarsen this site".
  unsigned siteCoarsenFactor(const std::string &SiteName,
                             unsigned GlobalF) const;

  /// Per-site speculation bound for SpeculationPass: the smallest power
  /// of two covering the site's 90th-percentile total thread count.
  /// Returns false when the site was never observed (no basis to
  /// speculate on).
  bool siteSpeculationBound(const std::string &SiteName, uint64_t &Bound) const;
};

/// Builds a profile from a device grid log: every record whose Site
/// ordinal is attached (non-zero, in range) accumulates under its
/// VmProgram::LaunchSiteNames entry. Host launches carry no site and are
/// skipped. Deterministic for any log ordering.
LaunchProfile harvestProfile(const std::vector<GridRecord> &Log,
                             const VmProgram &Program);

/// Serializes to the "dpo-profile v1" text format. Byte-deterministic:
/// sites in name order, histogram entries in key order.
std::string serializeProfile(const LaunchProfile &Profile);

/// Parses the text format back. Returns false and sets \p Error on
/// malformed input. parse(serialize(P)) == P exactly.
bool parseProfile(std::string_view Text, LaunchProfile &Out,
                  std::string &Error);

} // namespace dpo

#endif // DPO_PROFILE_PROFILE_H
