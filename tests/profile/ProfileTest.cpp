//===--- ProfileTest.cpp - Launch-profile artifact unit tests -----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile artifact in isolation: histogram accumulation and merge,
/// the three per-site knob rules as pure functions of a histogram, the
/// "dpo-profile v1" text format (byte-deterministic serialization, exact
/// parse round-trip, malformed-input rejection), and harvesting from a
/// real device grid log with compiler-assigned site names.
///
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

//===----------------------------------------------------------------------===//
// Accumulation and merge
//===----------------------------------------------------------------------===//

TEST(ProfileTest, AddRecordAccumulatesHistograms) {
  LaunchProfile P;
  P.addRecord("a->b#0", 2, 64, 32);
  P.addRecord("a->b#0", 2, 64, 32);
  P.addRecord("a->b#0", 5, 160, 32);
  const SiteHistogram *H = P.find("a->b#0");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Launches, 3u);
  EXPECT_EQ(H->Blocks.at(2), 2u);
  EXPECT_EQ(H->Blocks.at(5), 1u);
  EXPECT_EQ(H->Threads.at(64), 2u);
  EXPECT_EQ(H->Threads.at(160), 1u);
  EXPECT_EQ(H->BlockDims.at(32), 3u);
  EXPECT_EQ(P.find("a->b#1"), nullptr);
}

TEST(ProfileTest, MergeAddsHistograms) {
  LaunchProfile A, B;
  A.addRecord("a->b#0", 1, 32, 32);
  B.addRecord("a->b#0", 1, 32, 32);
  B.addRecord("c->d#0", 4, 512, 128);
  A.merge(B);
  EXPECT_EQ(A.find("a->b#0")->Launches, 2u);
  EXPECT_EQ(A.find("a->b#0")->Blocks.at(1), 2u);
  ASSERT_NE(A.find("c->d#0"), nullptr);
  EXPECT_EQ(A.find("c->d#0")->Threads.at(512), 1u);
}

//===----------------------------------------------------------------------===//
// Per-site knob rules (pure functions of the histogram)
//===----------------------------------------------------------------------===//

TEST(ProfileTest, SiteThresholdUnseenSiteKeepsGlobalKnob) {
  LaunchProfile P;
  EXPECT_EQ(P.siteThreshold("never->seen#0", 128), 128u);
}

TEST(ProfileTest, SiteThresholdNothingBelowGlobalDisables) {
  // Every observed launch is at or above the global threshold:
  // serialization never fires at this site, so the per-site knob
  // collapses to 1 (a constant-false-shaped, cheap check).
  LaunchProfile P;
  P.addRecord("a->b#0", 4, 128, 32);
  P.addRecord("a->b#0", 8, 256, 32);
  EXPECT_EQ(P.siteThreshold("a->b#0", 128), 1u);
}

TEST(ProfileTest, SiteThresholdCoversLargestSmallLaunch) {
  // Sub-threshold observations at 33 and 60 threads: the tightened
  // per-site threshold is the smallest power of two strictly above 60.
  LaunchProfile P;
  P.addRecord("a->b#0", 2, 33, 32);
  P.addRecord("a->b#0", 2, 60, 32);
  P.addRecord("a->b#0", 8, 256, 32);
  EXPECT_EQ(P.siteThreshold("a->b#0", 128), 64u);
}

TEST(ProfileTest, SiteThresholdNeverExceedsGlobal) {
  // The largest sub-threshold observation rounds up past the global
  // knob; the cap keeps the per-site policy a subset of the global one.
  LaunchProfile P;
  P.addRecord("a->b#0", 4, 100, 32);
  EXPECT_EQ(P.siteThreshold("a->b#0", 128), 128u);
}

TEST(ProfileTest, SiteCoarsenFactorTracksMedianBlocks) {
  LaunchProfile P;
  // Blocks histogram {1:1, 6:2}: median 6, floor-pow2 4.
  P.addRecord("a->b#0", 1, 32, 32);
  P.addRecord("a->b#0", 6, 192, 32);
  P.addRecord("a->b#0", 6, 192, 32);
  EXPECT_EQ(P.siteCoarsenFactor("a->b#0", 8), 4u);
  // Clamped at the global factor.
  EXPECT_EQ(P.siteCoarsenFactor("a->b#0", 2), 2u);
  // Unseen sites keep the global factor.
  EXPECT_EQ(P.siteCoarsenFactor("x->y#0", 8), 8u);
}

TEST(ProfileTest, SiteCoarsenFactorSingleBlockMedianDisables) {
  LaunchProfile P;
  P.addRecord("a->b#0", 1, 32, 32);
  P.addRecord("a->b#0", 1, 32, 32);
  P.addRecord("a->b#0", 16, 512, 32);
  EXPECT_EQ(P.siteCoarsenFactor("a->b#0", 8), 1u);
}

TEST(ProfileTest, SiteSpeculationBoundCoversNinetiethPercentile) {
  LaunchProfile P;
  // Nine launches at 40 threads, one at 4096: p90 is 40, bound 64 — the
  // speculative small-grid assumption covers the common case and lets
  // the outlier fall back through the guard.
  for (int I = 0; I < 9; ++I)
    P.addRecord("a->b#0", 2, 40, 20);
  P.addRecord("a->b#0", 128, 4096, 32);
  uint64_t Bound = 0;
  ASSERT_TRUE(P.siteSpeculationBound("a->b#0", Bound));
  EXPECT_EQ(Bound, 64u);
  // No observations: no basis to speculate.
  EXPECT_FALSE(P.siteSpeculationBound("x->y#0", Bound));
}

//===----------------------------------------------------------------------===//
// Serialization: byte determinism and exact round-trip
//===----------------------------------------------------------------------===//

LaunchProfile sampleProfile() {
  LaunchProfile P;
  P.addRecord("parent->child#0", 2, 64, 32);
  P.addRecord("parent->child#0", 5, 160, 32);
  P.addRecord("parent->child#1", 1, 8, 8);
  P.addRecord("outer->parent#0", 10, 1280, 128);
  return P;
}

TEST(ProfileTest, SerializationIsInsertionOrderIndependent) {
  LaunchProfile Forward = sampleProfile();
  LaunchProfile Backward;
  Backward.addRecord("outer->parent#0", 10, 1280, 128);
  Backward.addRecord("parent->child#1", 1, 8, 8);
  Backward.addRecord("parent->child#0", 5, 160, 32);
  Backward.addRecord("parent->child#0", 2, 64, 32);
  EXPECT_EQ(serializeProfile(Forward), serializeProfile(Backward));
}

TEST(ProfileTest, ParseRoundTripIsExact) {
  std::string Text = serializeProfile(sampleProfile());
  LaunchProfile Parsed;
  std::string Error;
  ASSERT_TRUE(parseProfile(Text, Parsed, Error)) << Error;
  EXPECT_EQ(serializeProfile(Parsed), Text);
  const SiteHistogram *H = Parsed.find("parent->child#0");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Launches, 2u);
  EXPECT_EQ(H->Threads.at(160), 1u);
}

TEST(ProfileTest, ParseRejectsMalformedInput) {
  LaunchProfile P;
  std::string Error;
  EXPECT_FALSE(parseProfile("", P, Error));
  EXPECT_FALSE(parseProfile("not a profile\n", P, Error));
  EXPECT_FALSE(parseProfile("dpo-profile v1\n  launches 3\n", P, Error))
      << "histogram lines before any site must be rejected";
  EXPECT_FALSE(
      parseProfile("dpo-profile v1\nsite a->b#0\n  blocks 4\n", P, Error))
      << "histogram entries must be key:count pairs";
  EXPECT_FALSE(
      parseProfile("dpo-profile v1\nsite a->b#0\n  bogus 1:1\n", P, Error));
}

//===----------------------------------------------------------------------===//
// Harvesting from a real device grid log
//===----------------------------------------------------------------------===//

TEST(ProfileTest, HarvestFromDeviceGridLog) {
  DiagnosticEngine Diags;
  auto Dev = buildDevice(R"(
__global__ void child(int *out, int *counts, int *offsets, int v) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < counts[v])
    out[offsets[v] + i] = v;
}
__global__ void parent(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v >= numV)
    return;
  if (counts[v] > 0)
    child<<<(counts[v] + 31) / 32, 32>>>(out, counts, offsets, v);
}
)",
                         Diags);
  ASSERT_NE(Dev, nullptr) << Diags.str();
  Dev->setGridLogEnabled(true);

  uint64_t Counts = Dev->allocI32({5, 0, 40, 33});
  uint64_t Offsets = Dev->allocI32({0, 5, 5, 45});
  uint64_t Out = Dev->alloc(78 * 4);
  ASSERT_TRUE(Dev->launchKernel("parent", {1, 1, 1}, {4, 1, 1},
                                {(int64_t)Out, (int64_t)Counts,
                                 (int64_t)Offsets, 4}))
      << Dev->error();

  LaunchProfile P = harvestProfile(Dev->gridLog(), Dev->program());
  // One device launch site; the host's parent launch carries no site
  // ordinal and must not appear.
  ASSERT_EQ(P.Sites.size(), 1u) << serializeProfile(P);
  const SiteHistogram *H = P.find("parent->child#0");
  ASSERT_NE(H, nullptr) << serializeProfile(P);
  // counts {5, 0, 40, 33}: v=1 skips its launch; grids are 1, 2, and 2
  // blocks of 32 threads.
  EXPECT_EQ(H->Launches, 3u);
  EXPECT_EQ(H->Blocks.at(1), 1u);
  EXPECT_EQ(H->Blocks.at(2), 2u);
  EXPECT_EQ(H->Threads.at(32), 1u);
  EXPECT_EQ(H->Threads.at(64), 2u);
  EXPECT_EQ(H->BlockDims.at(32), 3u);
  EXPECT_EQ(H->Launches, Dev->stats().DeviceLaunches);

  // The knob rules applied to the harvested profile.
  EXPECT_EQ(P.siteThreshold("parent->child#0", 256), 128u);
  EXPECT_EQ(P.siteCoarsenFactor("parent->child#0", 8), 2u);
  uint64_t Bound = 0;
  ASSERT_TRUE(P.siteSpeculationBound("parent->child#0", Bound));
  EXPECT_EQ(Bound, 64u);
}

} // namespace
