//===--- PrinterTest.cpp - Printer + round-trip tests -------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The key property: parse(print(parse(S))) is structurally equal to
/// parse(S) for every source in the corpus. Expression printing is also
/// checked against exact expected text for precedence-sensitive cases.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include "ast/Equivalence.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

std::string printedExpr(std::string_view Source) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Expr *E = parseExprSource(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  if (!E)
    return std::string();
  return printExpr(E);
}

TEST(PrinterTest, SimpleArithmetic) {
  EXPECT_EQ(printedExpr("a + b * c"), "a + b * c");
}

TEST(PrinterTest, ParensPreserved) {
  EXPECT_EQ(printedExpr("(a + b) * c"), "(a + b) * c");
}

TEST(PrinterTest, CeilDivPatternA) {
  EXPECT_EQ(printedExpr("(N - 1) / b + 1"), "(N - 1) / b + 1");
}

TEST(PrinterTest, CeilDivPatternB) {
  EXPECT_EQ(printedExpr("(N + b - 1) / b"), "(N + b - 1) / b");
}

TEST(PrinterTest, CeilDivPatternCTernary) {
  // Explicit parentheses written by the programmer survive re-printing.
  EXPECT_EQ(printedExpr("N / b + ((N % b == 0) ? 0 : 1)"),
            "N / b + ((N % b == 0) ? 0 : 1)");
  // Synthesized ternaries get only the parens precedence demands.
  EXPECT_EQ(printedExpr("N / b + (N % b == 0 ? 0 : 1)"),
            "N / b + (N % b == 0 ? 0 : 1)");
}

TEST(PrinterTest, CastPrinting) {
  EXPECT_EQ(printedExpr("ceil((float)N / b)"), "ceil((float)N / b)");
}

TEST(PrinterTest, UnaryMinusChain) {
  EXPECT_EQ(printedExpr("- -x"), "- -x");
}

TEST(PrinterTest, AssignmentChain) {
  EXPECT_EQ(printedExpr("a = b = c + 1"), "a = b = c + 1");
}

TEST(PrinterTest, MemberAndSubscript) {
  EXPECT_EQ(printedExpr("data[blockIdx.x * blockDim.x + threadIdx.x]"),
            "data[blockIdx.x * blockDim.x + threadIdx.x]");
}

TEST(PrinterTest, ShiftPrinting) {
  EXPECT_EQ(printedExpr("a << 2 | b >> 3"), "a << 2 | b >> 3");
}

TEST(PrinterTest, MixedPrecedenceNeedsParens) {
  // (a | b) & c must keep its parens.
  EXPECT_EQ(printedExpr("(a | b) & c"), "(a | b) & c");
}

TEST(PrinterTest, HexSpellingPreserved) {
  EXPECT_EQ(printedExpr("x & 0xFF"), "x & 0xFF");
}

TEST(PrinterTest, FloatSuffixPreserved) {
  EXPECT_EQ(printedExpr("x * 0.5f"), "x * 0.5f");
}

TEST(PrinterTest, LaunchPrinting) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(R"(
__global__ void child(int *d) { d[0] = 1; }
__global__ void parent(int *d, int n) {
  child<<<(n + 255) / 256, 256>>>(d);
}
)",
                                    Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  std::string Text = printTranslationUnit(TU);
  EXPECT_NE(Text.find("child<<<(n + 255) / 256, 256>>>(d);"),
            std::string::npos)
      << Text;
}

// Round-trip corpus: parse -> print -> parse must be structurally stable.

class RoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  ASTContext Ctx1;
  DiagnosticEngine Diags1;
  TranslationUnit *TU1 = parseSource(GetParam(), Ctx1, Diags1);
  ASSERT_NE(TU1, nullptr) << Diags1.str();

  std::string Printed = printTranslationUnit(TU1);

  ASTContext Ctx2;
  DiagnosticEngine Diags2;
  TranslationUnit *TU2 = parseSource(Printed, Ctx2, Diags2);
  ASSERT_NE(TU2, nullptr) << "re-parse failed:\n"
                          << Diags2.str() << "\nprinted source:\n"
                          << Printed;

  EXPECT_TRUE(structurallyEqual(TU1, TU2))
      << "round trip changed the tree; printed source:\n"
      << Printed;

  // Printing must reach a fixed point after one round.
  std::string Printed2 = printTranslationUnit(TU2);
  EXPECT_EQ(Printed, Printed2);
}

const char *RoundTripCorpus[] = {
    // Simple kernel.
    R"(__global__ void k(int *d, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) d[i] = i;
}
)",
    // Parent/child with launch.
    R"(__global__ void child(int *d, int n) {
  d[threadIdx.x] = n;
}
__global__ void parent(int *d, int *offsets, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int count = offsets[v + 1] - offsets[v];
    child<<<(count + 31) / 32, 32>>>(d, count);
  }
}
)",
    // All the ceiling-division patterns from Fig. 4.
    R"(__global__ void c(int *d) { d[0] = 1; }
__global__ void p(int *d, int N, int b) {
  c<<<(N - 1) / b + 1, b>>>(d);
  c<<<(N + b - 1) / b, b>>>(d);
  c<<<N / b + ((N % b == 0) ? 0 : 1), b>>>(d);
  c<<<ceil((float)N / b), b>>>(d);
  c<<<ceil(N / (float)b), b>>>(d);
}
)",
    // dim3 and multi-dimensional config.
    R"(__global__ void c(float *d) { d[threadIdx.x] = 0.0f; }
__global__ void p(float *d, int n, int m) {
  dim3 grid((n + 15) / 16, (m + 15) / 16, 1);
  dim3 block(16, 16, 1);
  c<<<grid, block>>>(d);
}
)",
    // Control flow variety.
    R"(__device__ int classify(int x) {
  if (x < 0)
    return -1;
  else if (x == 0)
    return 0;
  else
    return 1;
}
__device__ int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0)
      n = n / 2;
    else
      n = 3 * n + 1;
    steps++;
  }
  return steps;
}
__device__ int sum3(int *a) {
  int s = 0;
  for (int i = 0; i < 3; ++i)
    s += a[i];
  do
    s--;
  while (s > 100);
  return s;
}
)",
    // Shared memory, barriers, atomics.
    R"(__global__ void reduce(int *in, int *out, int n) {
  __shared__ int scratch[256];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < n ? in[i] : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    atomicAdd(out, scratch[0]);
}
)",
    // Preprocessor passthrough and globals.
    R"(#include <cstdint>
#define THRESHOLD 128
int gCounter = 0;
__device__ unsigned int hash(unsigned int x) {
  x = x ^ x >> 16;
  x = x * 2654435761u;
  return x;
}
)",
    // Pointer-heavy code.
    R"(__device__ void swap(int **a, int **b) {
  int *t = *a;
  *a = *b;
  *b = t;
}
)",
    // Multi-declarator statements and comma/ternary mix.
    R"(__device__ int f(int n, int b) {
  int q = n / b, r = n % b;
  int blocks = r == 0 ? q : q + 1;
  return blocks;
}
)",
    // Launch with smem + stream expressions.
    R"(__global__ void c(int *d) { d[0] = 1; }
__global__ void p(int *d, int n) {
  c<<<n, 128, n * sizeof(int), 0>>>(d);
}
)",
};

INSTANTIATE_TEST_SUITE_P(Corpus, RoundTripTest,
                         ::testing::ValuesIn(RoundTripCorpus));

// Statement-shape printing checks.

TEST(PrinterTest, IfElsePrinting) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(
      "__device__ int f(int x) { if (x > 0) { return 1; } else { return 0; } }",
      Ctx, Diags);
  ASSERT_NE(TU, nullptr);
  std::string Text = printTranslationUnit(TU);
  EXPECT_NE(Text.find("} else {"), std::string::npos) << Text;
}

TEST(PrinterTest, TypePrinting) {
  EXPECT_EQ(Type(BuiltinKind::Int).str(), "int");
  EXPECT_EQ(Type(BuiltinKind::UInt).str(), "unsigned int");
  EXPECT_EQ(Type(BuiltinKind::Float, 1).str(), "float *");
  EXPECT_EQ(Type(BuiltinKind::Int, 2).str(), "int **");
  Type ConstPtr(BuiltinKind::Char, 1, /*IsConst=*/true);
  EXPECT_EQ(ConstPtr.str(), "const char *");
  EXPECT_EQ(Type(BuiltinKind::Dim3).str(), "dim3");
  EXPECT_EQ(Type::named("Node", 1).str(), "Node *");
}

TEST(PrinterTest, StoreSizes) {
  EXPECT_EQ(Type(BuiltinKind::Int).storeSizeBytes(), 4u);
  EXPECT_EQ(Type(BuiltinKind::Double).storeSizeBytes(), 8u);
  EXPECT_EQ(Type(BuiltinKind::Char).storeSizeBytes(), 1u);
  EXPECT_EQ(Type(BuiltinKind::Float, 1).storeSizeBytes(), 8u);
  EXPECT_EQ(Type(BuiltinKind::Dim3).storeSizeBytes(), 12u);
}

} // namespace
