//===--- WalkTest.cpp - Traversal/rewrite/clone/equivalence tests -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Walk.h"

#include "ast/ASTPrinter.h"
#include "ast/Clone.h"
#include "ast/Equivalence.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

class WalkTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  DiagnosticEngine Diags;

  FunctionDecl *parseFunction(std::string_view Source,
                              const std::string &Name) {
    TranslationUnit *TU = parseSource(Source, Ctx, Diags);
    EXPECT_NE(TU, nullptr) << Diags.str();
    if (!TU)
      return nullptr;
    FunctionDecl *F = TU->findFunction(Name);
    EXPECT_NE(F, nullptr);
    return F;
  }
};

TEST_F(WalkTest, CountsAllDeclRefs) {
  FunctionDecl *F = parseFunction(R"(
__global__ void k(int *d, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) d[i] = i + n;
}
)",
                                  "k");
  int Count = 0;
  forEachExpr(F->body(), [&](Expr *E) {
    if (isa<DeclRefExpr>(E))
      ++Count;
  });
  // blockIdx, blockDim, threadIdx, i, n, d, i, i, n.
  EXPECT_EQ(Count, 9);
}

TEST_F(WalkTest, VisitsLaunchOperands) {
  FunctionDecl *F = parseFunction(R"(
__global__ void c(int *d) { d[0] = 1; }
__global__ void p(int *d, int n) {
  c<<<(n + 31) / 32, 32>>>(d);
}
)",
                                  "p");
  bool SawGridN = false;
  int LaunchCount = 0;
  forEachExpr(F->body(), [&](Expr *E) {
    if (isa<LaunchExpr>(E))
      ++LaunchCount;
    if (auto *Ref = dyn_cast<DeclRefExpr>(E))
      if (Ref->name() == "n")
        SawGridN = true;
  });
  EXPECT_EQ(LaunchCount, 1);
  EXPECT_TRUE(SawGridN);
}

TEST_F(WalkTest, VisitsDeclInitializers) {
  FunctionDecl *F = parseFunction(
      "__device__ void f() { int a = 1 + 2; int buf[7]; }", "f");
  int Literals = 0;
  forEachExpr(F->body(), [&](Expr *E) {
    if (isa<IntegerLiteral>(E))
      ++Literals;
  });
  EXPECT_EQ(Literals, 3); // 1, 2, 7
}

TEST_F(WalkTest, RewriteRenamesVariable) {
  FunctionDecl *F = parseFunction(R"(
__device__ void f(int x) {
  int y = x + 1;
  y = y * x;
}
)",
                                  "f");
  rewriteExprs(F->body(), [&](Expr *E) -> Expr * {
    if (auto *Ref = dyn_cast<DeclRefExpr>(E))
      if (Ref->name() == "x")
        return Ctx.ref("renamed");
    return nullptr;
  });
  int Renamed = 0, Original = 0;
  forEachExpr(F->body(), [&](Expr *E) {
    if (auto *Ref = dyn_cast<DeclRefExpr>(E)) {
      if (Ref->name() == "renamed")
        ++Renamed;
      if (Ref->name() == "x")
        ++Original;
    }
  });
  EXPECT_EQ(Renamed, 2);
  EXPECT_EQ(Original, 0);
}

TEST_F(WalkTest, RewriteReplacesMemberExpr) {
  FunctionDecl *F = parseFunction(R"(
__global__ void k(int *d) {
  d[blockIdx.x] = blockIdx.x + 1;
}
)",
                                  "k");
  // blockIdx.x -> _bx, the exact rewrite thresholding performs.
  rewriteExprs(F->body(), [&](Expr *E) -> Expr * {
    auto *M = dyn_cast<MemberExpr>(E);
    if (!M || M->member() != "x")
      return nullptr;
    auto *Base = dyn_cast<DeclRefExpr>(M->base());
    if (!Base || Base->name() != "blockIdx")
      return nullptr;
    return Ctx.ref("_bx");
  });
  std::string Text = printStmt(F->body());
  EXPECT_EQ(Text.find("blockIdx"), std::string::npos) << Text;
  EXPECT_NE(Text.find("d[_bx] = _bx + 1;"), std::string::npos) << Text;
}

TEST_F(WalkTest, RewriteStmtsReplacesLaunchStatement) {
  FunctionDecl *F = parseFunction(R"(
__global__ void c(int *d) { d[0] = 1; }
__global__ void p(int *d, int n) {
  if (n > 0)
    c<<<n, 32>>>(d);
}
)",
                                  "p");
  rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
    if (!isa<LaunchExpr>(S))
      return nullptr;
    return Ctx.create<NullStmt>();
  });
  int Launches = 0;
  forEachExpr(F->body(), [&](Expr *E) {
    if (isa<LaunchExpr>(E))
      ++Launches;
  });
  EXPECT_EQ(Launches, 0);
}

TEST_F(WalkTest, CloneIsDeepAndEqual) {
  FunctionDecl *F = parseFunction(R"(
__global__ void k(int *d, int n) {
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0)
      d[i] = i;
    else
      d[i] = -i;
  }
}
)",
                                  "k");
  Stmt *Copy = cloneStmt(Ctx, F->body());
  EXPECT_TRUE(structurallyEqual(F->body(), Copy));
  EXPECT_NE(static_cast<Stmt *>(F->body()), Copy);

  // Mutating the clone must not affect the original.
  rewriteExprs(Copy, [&](Expr *E) -> Expr * {
    if (auto *Ref = dyn_cast<DeclRefExpr>(E))
      if (Ref->name() == "d")
        return Ctx.ref("other");
    return nullptr;
  });
  EXPECT_FALSE(structurallyEqual(F->body(), Copy));
  std::string Original = printStmt(F->body());
  EXPECT_NE(Original.find("d[i] = i;"), std::string::npos);
}

TEST_F(WalkTest, CloneFunctionPreservesSignature) {
  FunctionDecl *F = parseFunction(
      "__global__ void k(float *data, int n) { data[n] = 1.0f; }", "k");
  FunctionDecl *Copy = cloneFunction(Ctx, F);
  EXPECT_TRUE(structurallyEqual(F, Copy));
  Copy->setName("k_clone");
  EXPECT_FALSE(structurallyEqual(F, Copy));
}

TEST_F(WalkTest, EquivalenceIgnoresParens) {
  DiagnosticEngine D2;
  Expr *A = parseExprSource("a + b * c", Ctx, D2);
  Expr *B = parseExprSource("a + (b * c)", Ctx, D2);
  Expr *C = parseExprSource("(a + b) * c", Ctx, D2);
  ASSERT_TRUE(A && B && C);
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST_F(WalkTest, EquivalenceIgnoresLiteralSpelling) {
  DiagnosticEngine D2;
  Expr *A = parseExprSource("x & 0xFF", Ctx, D2);
  Expr *B = parseExprSource("x & 255", Ctx, D2);
  ASSERT_TRUE(A && B);
  EXPECT_TRUE(structurallyEqual(A, B));
}

TEST_F(WalkTest, RewriteStmtsDoesNotTouchNestedExprLaunch) {
  // A launch below an expression (not statement position) must not be
  // visited by rewriteStmts.
  FunctionDecl *F = parseFunction(R"(
__global__ void c(int *d) { d[0] = 1; }
__global__ void p(int *d) {
  c<<<1, 1>>>(d);
}
)",
                                  "p");
  int Visited = 0;
  rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
    if (isa<LaunchExpr>(S))
      ++Visited;
    return nullptr;
  });
  EXPECT_EQ(Visited, 1);
}

} // namespace
