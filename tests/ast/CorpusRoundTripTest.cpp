//===--- CorpusRoundTripTest.cpp - Printer round-trip over the kernel corpus --===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Printer-drift gate for every construct the Table I kernel corpus uses:
/// each DSL source parses, pretty-prints, reparses, and must be
/// structurally equal to the first parse — and the same must hold after
/// the sources go through a full transform pipeline (the generated
/// serial/aggregated code is itself printed and reparsed by the
/// differential harness, so printer fidelity there is load-bearing, not
/// cosmetic). The corpus exercises 64-bit atomics, shifts, casts,
/// address-of on subscripts, conditional expressions, double math, float
/// arrays, and early-return children — well beyond the canonical nested
/// shape the older PrinterTest covers.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "ast/Equivalence.h"
#include "ast/Walk.h"
#include "parse/Parser.h"
#include "support/Casting.h"
#include "transform/Pipeline.h"
#include "workloads/KernelSources.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

const BenchmarkId AllBenchmarks[] = {
    BenchmarkId::BFS, BenchmarkId::SSSP, BenchmarkId::MSTF, BenchmarkId::MSTV,
    BenchmarkId::TC,  BenchmarkId::SP,   BenchmarkId::BT};

TranslationUnit *parseOrNull(const std::string &Source, ASTContext &Ctx,
                             std::string &Error) {
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU || Diags.hasErrors()) {
    Error = Diags.str();
    return nullptr;
  }
  return TU;
}

TEST(CorpusRoundTripTest, EveryKernelSourceRoundTrips) {
  for (BenchmarkId Bench : AllBenchmarks) {
    SCOPED_TRACE(benchmarkName(Bench));
    std::string Source = kernelSourceFor(Bench);
    ASTContext Ctx;
    std::string Error;
    TranslationUnit *TU = parseOrNull(Source, Ctx, Error);
    ASSERT_NE(TU, nullptr) << Error;

    std::string Printed = printTranslationUnit(TU);
    ASTContext Ctx2;
    TranslationUnit *Reparsed = parseOrNull(Printed, Ctx2, Error);
    ASSERT_NE(Reparsed, nullptr) << Error << "\nprinted:\n" << Printed;

    EXPECT_TRUE(structurallyEqual(TU, Reparsed))
        << "printer drift for " << benchmarkName(Bench) << ":\n"
        << Printed;
  }
}

TEST(CorpusRoundTripTest, TransformedKernelSourcesRoundTrip) {
  // The differential harness prints and reparses transformed sources;
  // round-trip the full paper pipeline's output for each benchmark so the
  // generated serial helpers, coarsening loops, and aggregation wrappers
  // are covered too.
  const char *Pipeline = "threshold[32],coarsen[2],aggregate[multiblock:4]";
  for (BenchmarkId Bench : AllBenchmarks) {
    SCOPED_TRACE(benchmarkName(Bench));
    DiagnosticEngine Diags;
    std::string Transformed = transformSourceWithPipeline(
        kernelSourceFor(Bench), Pipeline, literalKnobConfig(), Diags);
    ASSERT_FALSE(Transformed.empty()) << Diags.str();

    ASTContext Ctx;
    std::string Error;
    TranslationUnit *TU = parseOrNull(Transformed, Ctx, Error);
    ASSERT_NE(TU, nullptr) << Error << "\ntransformed:\n" << Transformed;

    std::string Printed = printTranslationUnit(TU);
    ASTContext Ctx2;
    TranslationUnit *Reparsed = parseOrNull(Printed, Ctx2, Error);
    ASSERT_NE(Reparsed, nullptr) << Error << "\nprinted:\n" << Printed;

    EXPECT_TRUE(structurallyEqual(TU, Reparsed))
        << "printer drift for transformed " << benchmarkName(Bench);
  }
}

TEST(CorpusRoundTripTest, EveryParentHasExactlyOneTransformableLaunch) {
  // The corpus convention the transforms rely on: one dynamic launch per
  // unit, from `parent`, of `child`.
  for (BenchmarkId Bench : AllBenchmarks) {
    SCOPED_TRACE(benchmarkName(Bench));
    ASTContext Ctx;
    std::string Error;
    TranslationUnit *TU = parseOrNull(kernelSourceFor(Bench), Ctx, Error);
    ASSERT_NE(TU, nullptr) << Error;
    ASSERT_NE(TU->findFunction("parent"), nullptr);
    ASSERT_NE(TU->findFunction("child"), nullptr);
    unsigned Launches = 0;
    forEachExpr(TU->findFunction("parent")->body(), [&](const Expr *E) {
      if (isa<LaunchExpr>(E))
        ++Launches;
    });
    EXPECT_EQ(Launches, 1u);
  }
}

} // namespace
