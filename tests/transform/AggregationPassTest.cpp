//===--- AggregationPassTest.cpp - Fig. 7 transformation tests ----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/AggregationPass.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

const char *BasicSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
  }
}
void host(int *data, int *counts, int numV) {
  parent<<<(numV + 127) / 128, 128>>>(data, counts, numV);
}
)";

struct RunResult {
  std::string Output;
  AggregationResult Report;
  std::string DiagText;
};

RunResult runAggregation(std::string_view Source,
                         AggregationOptions Options = {}) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  RunResult R;
  if (!TU)
    return R;
  R.Report = applyAggregation(Ctx, TU, Options, Diags);
  R.DiagText = Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  R.Output = printTranslationUnit(TU);
  return R;
}

TEST(AggregationPassTest, MultiBlockBasics) {
  RunResult R = runAggregation(BasicSource);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  EXPECT_EQ(R.Report.GeneratedKernels, 1u);
  EXPECT_EQ(R.Report.GeneratedWrappers, 1u);

  // Aggregated child kernel with binary-search disaggregation.
  EXPECT_NE(R.Output.find("__global__ void child_agg"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("while (_aggLo < _aggHi)"), std::string::npos);
  EXPECT_NE(R.Output.find("if (threadIdx.x < _aggBDimX)"), std::string::npos);

  // Packed 64-bit atomic scan in the parent.
  EXPECT_NE(
      R.Output.find("atomicAdd(&_aggCnt0[_aggGroupIdx], ((unsigned long "
                    "long)1 << 32) + (unsigned long long)_aggG)"),
      std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("atomicMax(&_aggMaxB0[_aggGroupIdx], _aggB)"),
            std::string::npos);

  // Group-completion epilogue: fence, barrier, finished counter, launch by
  // the last block of the group.
  EXPECT_NE(R.Output.find("__threadfence();"), std::string::npos);
  EXPECT_NE(R.Output.find("__syncthreads();"), std::string::npos);
  EXPECT_NE(R.Output.find("atomicAdd(&_aggFin0[_aggGroupIdx], 1u)"),
            std::string::npos);
  EXPECT_NE(R.Output.find("child_agg<<<_aggTotal, _aggMaxB0[_aggGroupIdx]>>>"),
            std::string::npos)
      << R.Output;

  // Group indexing uses the multi-block group size macro.
  EXPECT_NE(R.Output.find("blockIdx.x / _AGG_SIZE"), std::string::npos);
  EXPECT_NE(R.Output.find("#define _AGG_SIZE 8"), std::string::npos);
}

TEST(AggregationPassTest, ParentGainsBufferParams) {
  RunResult R = runAggregation(BasicSource);
  EXPECT_NE(
      R.Output.find(
          "__global__ void parent(int *data, int *counts, int numV, "
          "unsigned long long *_aggCnt0, unsigned int *_aggMaxB0, unsigned "
          "int *_aggFin0, unsigned int *_aggScan0, unsigned int "
          "*_aggBDimArr0, int **_aggArg0_0, int *_aggArg1_0)"),
      std::string::npos)
      << R.Output;
}

TEST(AggregationPassTest, HostWrapperGenerated) {
  RunResult R = runAggregation(BasicSource);
  EXPECT_NE(R.Output.find("void parent_agg(dim3 _aggGrid, dim3 _aggBlock, "
                          "int *data, int *counts, int numV)"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("cudaMalloc((void **)&_aggCnt0"), std::string::npos);
  EXPECT_NE(R.Output.find("cudaMemset(_aggCnt0, 0"), std::string::npos);
  EXPECT_NE(R.Output.find("cudaFree(_aggCnt0);"), std::string::npos);
  // The existing host launch is redirected to the wrapper.
  EXPECT_NE(R.Output.find(
                "parent_agg(dim3((numV + 127) / 128, 1, 1), dim3(128, 1, 1), "
                "data, counts, numV);"),
            std::string::npos)
      << R.Output;
}

TEST(AggregationPassTest, BlockGranularity) {
  AggregationOptions Options;
  Options.Granularity = AggGranularity::Block;
  RunResult R = runAggregation(BasicSource, Options);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  // Group = one block.
  EXPECT_NE(R.Output.find("unsigned int _aggGroupIdx = blockIdx.x;"),
            std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("_AGG_SIZE"), std::string::npos);
}

TEST(AggregationPassTest, WarpGranularity) {
  AggregationOptions Options;
  Options.Granularity = AggGranularity::Warp;
  RunResult R = runAggregation(BasicSource, Options);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  EXPECT_NE(R.Output.find(
                "(blockIdx.x * blockDim.x + threadIdx.x) / 32u"),
            std::string::npos)
      << R.Output;
  // Thread-counted groups: no __syncthreads in the warp epilogue.
  size_t Epi = R.Output.find("_aggGroupSize");
  ASSERT_NE(Epi, std::string::npos);
}

TEST(AggregationPassTest, GridGranularity) {
  AggregationOptions Options;
  Options.Granularity = AggGranularity::Grid;
  RunResult R = runAggregation(BasicSource, Options);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  // No device-side epilogue: the host performs the aggregated launch.
  EXPECT_EQ(R.Output.find("_aggFin0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("cudaDeviceSynchronize();"), std::string::npos);
  EXPECT_NE(R.Output.find("cudaMemcpy(&_aggPacked, _aggCnt0"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child_agg<<<_aggTotal, _aggMaxBH>>>"),
            std::string::npos)
      << R.Output;
}

TEST(AggregationPassTest, AggregationThresholdBlockGranularity) {
  AggregationOptions Options;
  Options.Granularity = AggGranularity::Block;
  Options.UseAggregationThreshold = true;
  RunResult R = runAggregation(BasicSource, Options);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  // Per-thread slot memory at the top of the parent.
  EXPECT_NE(R.Output.find("unsigned int _aggMySlot0 = 4294967295u;"),
            std::string::npos)
      << R.Output;
  // Below-threshold path: each participant launches its own grid.
  EXPECT_NE(R.Output.find("if (_aggNumP < _AGG_THRESHOLD)"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child<<<_aggMyG0, _aggMyB0>>>(_aggArg0_0["
                          "_aggMySlot0], _aggArg1_0[_aggMySlot0]);"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("#define _AGG_THRESHOLD 4"), std::string::npos);
}

TEST(AggregationPassTest, SkipsDim3Launches) {
  RunResult R = runAggregation(R"(
__global__ void child(float *img, int w) {
  img[blockIdx.x * w + threadIdx.x] = 0.0f;
}
__global__ void parent(float *img, int w, int h) {
  dim3 grid((w + 15) / 16, (h + 15) / 16, 1);
  child<<<grid, 16>>>(img, w);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 0u);
  ASSERT_EQ(R.Report.SkipReasons.size(), 1u);
  EXPECT_NE(R.Report.SkipReasons[0].find("1-D"), std::string::npos);
}

TEST(AggregationPassTest, SkipsParentWithEarlyReturn) {
  RunResult R = runAggregation(R"(
__global__ void child(int *d) { d[threadIdx.x] = 1; }
__global__ void parent(int *d, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v >= n)
    return;
  child<<<d[v], 32>>>(d);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 0u);
  ASSERT_EQ(R.Report.SkipReasons.size(), 1u);
  EXPECT_NE(R.Report.SkipReasons[0].find("early return"), std::string::npos);
}

TEST(AggregationPassTest, GridGranularityAllowsEarlyReturn) {
  AggregationOptions Options;
  Options.Granularity = AggGranularity::Grid;
  RunResult R = runAggregation(R"(
__global__ void child(int *d) { d[threadIdx.x] = 1; }
__global__ void parent(int *d, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v >= n)
    return;
  child<<<d[v], 32>>>(d);
}
)",
                               Options);
  // Grid granularity has no device epilogue, so early returns are fine.
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
}

TEST(AggregationPassTest, SkipsLaunchInsideLoop) {
  RunResult R = runAggregation(R"(
__global__ void child(int *d) { d[threadIdx.x] = 1; }
__global__ void parent(int *d, int n) {
  for (int i = 0; i < n; ++i) {
    child<<<n, 32>>>(d);
  }
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 0u);
  ASSERT_EQ(R.Report.SkipReasons.size(), 1u);
  EXPECT_NE(R.Report.SkipReasons[0].find("loop"), std::string::npos);
}

TEST(AggregationPassTest, OutputReparses) {
  for (AggGranularity G :
       {AggGranularity::Warp, AggGranularity::Block, AggGranularity::MultiBlock,
        AggGranularity::Grid}) {
    AggregationOptions Options;
    Options.Granularity = G;
    RunResult R = runAggregation(BasicSource, Options);
    ASTContext Ctx;
    DiagnosticEngine Diags;
    EXPECT_NE(parseSource(R.Output, Ctx, Diags), nullptr)
        << "granularity " << aggGranularityName(G) << ":\n"
        << Diags.str() << "\n"
        << R.Output;
  }
}

// Full pipeline composition (Fig. 8).

TEST(PipelineTest, ThresholdCoarsenAggregateCompose) {
  PipelineOptions Options;
  Options.EnableThresholding = true;
  Options.EnableCoarsening = true;
  Options.EnableAggregation = true;
  DiagnosticEngine Diags;
  std::string Output = transformSource(BasicSource, Options, Diags);
  ASSERT_FALSE(Output.empty()) << Diags.str();

  // All three optimizations visible in the output.
  EXPECT_NE(Output.find("child_serial"), std::string::npos) << Output;
  EXPECT_NE(Output.find("_CFACTOR"), std::string::npos);
  EXPECT_NE(Output.find("child_agg"), std::string::npos);
  // Thresholding guard wraps the coarsened+aggregated launch path.
  EXPECT_NE(Output.find("if (_threads0 >= _THRESHOLD)"), std::string::npos);
  // The coarsened original grid dimension is one of the aggregated
  // arguments (stored per parent).
  EXPECT_NE(Output.find("_aggArg2_0"), std::string::npos) << Output;

  // The composed output still parses.
  ASTContext Ctx;
  DiagnosticEngine Diags2;
  EXPECT_NE(parseSource(Output, Ctx, Diags2), nullptr)
      << Diags2.str() << "\n"
      << Output;
}

TEST(PipelineTest, PassesAreIndependent) {
  // Any single pass or pair of passes also produces parseable output.
  for (int Mask = 1; Mask < 8; ++Mask) {
    PipelineOptions Options;
    Options.EnableThresholding = (Mask & 1) != 0;
    Options.EnableCoarsening = (Mask & 2) != 0;
    Options.EnableAggregation = (Mask & 4) != 0;
    DiagnosticEngine Diags;
    std::string Output = transformSource(BasicSource, Options, Diags);
    ASSERT_FALSE(Output.empty()) << "mask " << Mask << ": " << Diags.str();
    ASTContext Ctx;
    DiagnosticEngine Diags2;
    EXPECT_NE(parseSource(Output, Ctx, Diags2), nullptr)
        << "mask " << Mask << ":\n"
        << Diags2.str() << "\n"
        << Output;
  }
}

} // namespace
