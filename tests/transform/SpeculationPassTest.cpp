//===--- SpeculationPassTest.cpp - Speculative serialization tests ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculation transform at the source level: guarded serial path
/// with a fallback launch, macro/literal bound spellings, profile-backed
/// per-site bounds (p90 rounded up to a power of two; unseen sites and
/// profile-less profile mode transform nothing), and the eligibility
/// skips (non-serializable children, dim3 or impure launch configs).
///
//===----------------------------------------------------------------------===//

#include "transform/SpeculationPass.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "profile/Profile.h"
#include "transform/PassManager.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

const char *BasicSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
  }
}
)";

struct RunResult {
  std::string Output;
  SpeculationResult Report;
  std::string DiagText;
};

RunResult runSpeculation(std::string_view Source,
                         SpeculationOptions Options = {}) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  RunResult R;
  if (!TU)
    return R;
  R.Report = applySpeculation(Ctx, TU, Options, Diags);
  R.DiagText = Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  R.Output = printTranslationUnit(TU);
  return R;
}

TEST(SpeculationPassTest, GuardedSerialPathWithFallbackLaunch) {
  RunResult R = runSpeculation(BasicSource);
  EXPECT_EQ(R.Report.SpeculatedLaunches, 1u);
  EXPECT_EQ(R.Report.SkippedLaunches, 0u);
  // The hoisted total-thread count feeding the guard.
  EXPECT_NE(R.Output.find("unsigned long long _spec0 = ((count + 31) / 32) * "
                          "(32);"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("if (__dpo_spec_guard(_spec0, _SPEC_BOUND))"),
            std::string::npos)
      << R.Output;
  // Speculated path serializes; the fallback keeps the real launch.
  EXPECT_NE(R.Output.find("child_serial(data, count, (count + 31) / 32, 32);"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child<<<(count + 31) / 32, 32>>>(data, count);"),
            std::string::npos)
      << R.Output;
  // Both macros emitted: guard degradation for host compilers, bound
  // default for the macro spelling.
  EXPECT_NE(R.Output.find("#define __dpo_spec_guard(n, k) ((n) <= (k))"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("#define _SPEC_BOUND 64"), std::string::npos)
      << R.Output;
}

TEST(SpeculationPassTest, LiteralSpellingInlinesTheBound) {
  SpeculationOptions Options;
  Options.MaxThreads = 100;
  Options.Spelling = KnobSpelling::Literal;
  RunResult R = runSpeculation(BasicSource, Options);
  EXPECT_EQ(R.Report.SpeculatedLaunches, 1u);
  EXPECT_NE(R.Output.find("__dpo_spec_guard(_spec0, 100)"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("_SPEC_BOUND"), std::string::npos) << R.Output;
  // The guard-degradation macro is unconditional — the printed source
  // must stay valid CUDA.
  EXPECT_NE(R.Output.find("#define __dpo_spec_guard(n, k) ((n) <= (k))"),
            std::string::npos)
      << R.Output;
}

TEST(SpeculationPassTest, ProfileModePicksPerSiteBound) {
  LaunchProfile P;
  // p90 of observed total threads is 40 -> bound 64, spelled literally.
  for (int I = 0; I < 10; ++I)
    P.addRecord("parent->child#0", 2, 40, 20);
  SpeculationOptions Options;
  Options.UseProfile = true;
  Options.Profile = &P;
  RunResult R = runSpeculation(BasicSource, Options);
  EXPECT_EQ(R.Report.SpeculatedLaunches, 1u);
  EXPECT_NE(R.Output.find("__dpo_spec_guard(_spec0, 64)"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("_SPEC_BOUND"), std::string::npos)
      << "profile mode spells per-site bounds literally:\n"
      << R.Output;
}

TEST(SpeculationPassTest, ProfileModeSkipsUnseenSites) {
  LaunchProfile P;
  P.addRecord("someOther->site#0", 1, 32, 32);
  SpeculationOptions Options;
  Options.UseProfile = true;
  Options.Profile = &P;
  RunResult R = runSpeculation(BasicSource, Options);
  EXPECT_EQ(R.Report.SpeculatedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 1u);
  ASSERT_EQ(R.Report.SkipReasons.size(), 1u);
  EXPECT_NE(R.Report.SkipReasons[0].find("absent from profile"),
            std::string::npos)
      << R.Report.SkipReasons[0];
  EXPECT_EQ(R.Output.find("__dpo_spec_guard"), std::string::npos) << R.Output;
}

TEST(SpeculationPassTest, ProfileModeWithoutProfileTransformsNothing) {
  SpeculationOptions Options;
  Options.UseProfile = true;
  Options.Profile = nullptr;
  RunResult R = runSpeculation(BasicSource, Options);
  EXPECT_EQ(R.Report.SpeculatedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 1u);
  EXPECT_EQ(R.Output.find("child_serial"), std::string::npos) << R.Output;
}

TEST(SpeculationPassTest, SkipsNonSerializableChild) {
  // A barrier under divergent control flow stays non-serializable even
  // under the relaxed (segmentation-capable) transformability contract.
  RunResult R = runSpeculation(R"(
__global__ void child(int *data, int n) {
  int i = threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
    __syncthreads();
    data[i] = data[n - 1 - i];
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
  }
}
)");
  EXPECT_EQ(R.Report.SpeculatedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 1u);
  EXPECT_EQ(R.Output.find("__dpo_spec_guard"), std::string::npos) << R.Output;
}

TEST(SpeculationPassTest, SkipsImpureLaunchConfiguration) {
  // The guard re-evaluates grid and block expressions, so an impure
  // config (atomic in the grid dim) must not be speculated.
  RunResult R = runSpeculation(R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n)
    data[i] = i;
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV)
    child<<<atomicAdd(&counts[0], 1) + 1, 32>>>(data, counts[v]);
}
)");
  EXPECT_EQ(R.Report.SpeculatedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 1u);
  ASSERT_EQ(R.Report.SkipReasons.size(), 1u);
  EXPECT_NE(R.Report.SkipReasons[0].find("not pure"), std::string::npos)
      << R.Report.SkipReasons[0];
}

TEST(SpeculationPassTest, OutputReparses) {
  RunResult R = runSpeculation(BasicSource);
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(R.Output, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str() << "\n" << R.Output;
}

TEST(SpeculationPassTest, RegistrySpellingsRoundTrip) {
  PassPipelineConfig Config;
  std::string Error;
  for (const char *Spec :
       {"speculate", "speculate[128]", "speculate[100:literal]"}) {
    PassManager PM;
    ASSERT_TRUE(parsePassPipeline(PM, Spec, Config, Error)) << Spec << ": "
                                                            << Error;
    ASSERT_EQ(PM.size(), 1u);
  }
  PassManager PM;
  ASSERT_TRUE(parsePassPipeline(PM, "speculate[profile]", Config, Error))
      << Error;
  EXPECT_EQ(PM.passes()[0]->repr(), "speculate[profile]");
  PassManager Bad;
  EXPECT_FALSE(parsePassPipeline(Bad, "speculate[banana]", Config, Error));
  EXPECT_NE(Error.find("speculate"), std::string::npos) << Error;
}

} // namespace
