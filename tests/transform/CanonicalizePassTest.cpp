//===--- CanonicalizePassTest.cpp - Launch-dim canonicalization tests ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/CanonicalizePass.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "sema/Analysis.h"
#include "transform/ThresholdingPass.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

TranslationUnit *parseOrDie(std::string_view Source, ASTContext &Ctx,
                            DiagnosticEngine &Diags) {
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  return TU;
}

/// A dynamic launch whose ceiling division is spelled with a right shift:
/// no Div node anywhere, so the Fig. 4 matcher alone reports "no division
/// found" and thresholding skips the site.
const char *ShiftSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) >> 5, 32>>>(data, count);
  }
}
)";

/// The shift hides behind an assigned-once local, the chain the matcher's
/// variable resolution follows.
const char *ShiftViaLocalSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    int blocks = (count + 63) >> 6;
    child<<<blocks, 64>>>(data, count);
  }
}
)";

/// Division is present but the dividend's block-size term is spelled
/// `(1 << 5)` while the divisor is the literal 32: the matcher strips
/// dividend adjustments by literal-ness or structural equality with the
/// divisor, both of which fail until the shift folds to 32 — the count it
/// recovers is the inexact `count + (1 << 5)` instead of `count`.
const char *LiteralShiftSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + (1 << 5) - 1) / 32, 32>>>(data, count);
  }
}
)";

TEST(CanonicalizePassTest, ShiftDivisionBecomesDivision) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(ShiftSource, Ctx, Diags);

  CanonicalizeResult R = applyCanonicalize(Ctx, TU, Diags);
  EXPECT_EQ(R.NormalizedShiftDivs, 1u);
  EXPECT_EQ(R.TouchedFunctions.size(), 1u);

  std::string Output = printTranslationUnit(TU);
  EXPECT_NE(Output.find("child<<<(count + 31) / 32, 32>>>"), std::string::npos)
      << Output;
}

TEST(CanonicalizePassTest, MakesShiftSpelledLaunchThresholdable) {
  // Without canonicalization the site is skipped...
  {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    TranslationUnit *TU = parseOrDie(ShiftSource, Ctx, Diags);
    ThresholdingResult T = applyThresholding(Ctx, TU, {}, Diags);
    EXPECT_EQ(T.TransformedLaunches, 0u);
    EXPECT_EQ(T.SkippedLaunches, 1u);
  }
  // ...and with it the exact count is recovered and the guard emitted.
  {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    TranslationUnit *TU = parseOrDie(ShiftSource, Ctx, Diags);
    AnalysisManager AM(Ctx, TU);
    applyCanonicalize(Ctx, TU, Diags, AM);
    ThresholdingResult T = applyThresholding(Ctx, TU, {}, Diags, AM);
    EXPECT_EQ(T.TransformedLaunches, 1u) << Diags.str();
    std::string Output = printTranslationUnit(TU);
    EXPECT_NE(Output.find("_threads0 = count"), std::string::npos) << Output;
    EXPECT_NE(Output.find("child_serial"), std::string::npos) << Output;
  }
}

TEST(CanonicalizePassTest, FollowsAssignedOnceLocals) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(ShiftViaLocalSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  CanonicalizeResult R = applyCanonicalize(Ctx, TU, Diags, AM);
  EXPECT_EQ(R.NormalizedShiftDivs, 1u);
  EXPECT_NE(printTranslationUnit(TU).find("int blocks = (count + 63) / 64;"),
            std::string::npos);

  ThresholdingResult T = applyThresholding(Ctx, TU, {}, Diags, AM);
  EXPECT_EQ(T.TransformedLaunches, 1u) << Diags.str();
}

TEST(CanonicalizePassTest, FoldsLiteralShiftsForStructuralMatching) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(LiteralShiftSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  CanonicalizeResult R = applyCanonicalize(Ctx, TU, Diags, AM);
  EXPECT_GE(R.FoldedLiterals, 2u); // Both (1 << 5) occurrences.
  EXPECT_NE(printTranslationUnit(TU).find("(count + 32 - 1) / 32"),
            std::string::npos)
      << printTranslationUnit(TU);

  // The dividend's `+ 32` now structurally equals the divisor, so the
  // recovered thread count is exactly `count`.
  ThresholdingResult T = applyThresholding(Ctx, TU, {}, Diags, AM);
  EXPECT_EQ(T.TransformedLaunches, 1u) << Diags.str();
  EXPECT_NE(printTranslationUnit(TU).find("_threads0 = count"),
            std::string::npos)
      << printTranslationUnit(TU);
}

TEST(CanonicalizePassTest, IdempotentAndPreservationDeclared) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(ShiftSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  CanonicalizePass Pass;
  PreservedAnalyses PA = Pass.run(Ctx, TU, AM, Diags);
  EXPECT_EQ(Pass.result().total(), 1u);
  // Launch nodes and child bodies are untouched; grid-dim/purity caches
  // are dropped, scoped to the mutated caller.
  EXPECT_TRUE(PA.isPreserved(AnalysisID::LaunchSites));
  EXPECT_TRUE(PA.isPreserved(AnalysisID::Transformability));
  EXPECT_FALSE(PA.isPreserved(AnalysisID::GridDim));
  EXPECT_FALSE(PA.isPreserved(AnalysisID::Purity));
  ASSERT_TRUE(PA.isScoped());
  EXPECT_EQ(PA.touchedFunctions().size(), 1u);

  // A second run finds nothing to do and preserves everything.
  std::string After = printTranslationUnit(TU);
  CanonicalizePass Again;
  PreservedAnalyses PA2 = Again.run(Ctx, TU, AM, Diags);
  EXPECT_EQ(Again.result().total(), 0u);
  EXPECT_TRUE(PA2.isPreserved(AnalysisID::GridDim));
  EXPECT_EQ(printTranslationUnit(TU), After);
}

TEST(CanonicalizePassTest, RegisteredInPipelineGrammar) {
  {
    PassManager PM;
    std::string Error;
    ASSERT_TRUE(parsePassPipeline(PM, "canonicalize,threshold",
                                  PassPipelineConfig(), Error))
        << Error;
    EXPECT_EQ(PM.pipelineText(), "canonicalize,threshold[128]");

    ASTContext Ctx;
    DiagnosticEngine Diags;
    TranslationUnit *TU = parseOrDie(ShiftSource, Ctx, Diags);
    AnalysisManager AM(Ctx, TU);
    ASSERT_TRUE(PM.run(Ctx, TU, AM, Diags)) << Diags.str();
    EXPECT_NE(printTranslationUnit(TU).find("child_serial"),
              std::string::npos);
  }
  {
    // No parameters accepted.
    PassManager PM;
    std::string Error;
    EXPECT_FALSE(
        parsePassPipeline(PM, "canonicalize[2]", PassPipelineConfig(), Error));
    EXPECT_NE(Error.find("canonicalize"), std::string::npos);
  }
}

TEST(CanonicalizePassTest, LeavesUnrelatedShiftsAlone) {
  // Shifts outside launch configurations (kernel body arithmetic) are not
  // grid dimensions and must survive untouched.
  const char *Source = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] >> 2;
  }
}
__global__ void parent(int *data, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    child<<<(numV + 31) / 32, 32>>>(data, numV);
  }
}
)";
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(Source, Ctx, Diags);
  CanonicalizeResult R = applyCanonicalize(Ctx, TU, Diags);
  EXPECT_EQ(R.total(), 0u);
  EXPECT_NE(printTranslationUnit(TU).find("data[i] >> 2"), std::string::npos);
}

} // namespace
