//===--- CoarseningPassTest.cpp - Fig. 6 transformation tests -----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/CoarseningPass.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

const char *BasicSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + gridDim.x;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
  }
}
)";

struct RunResult {
  std::string Output;
  CoarseningResult Report;
};

RunResult runCoarsening(std::string_view Source,
                        CoarseningOptions Options = {}) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  RunResult R;
  if (!TU)
    return R;
  R.Report = applyCoarsening(Ctx, TU, Options, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  R.Output = printTranslationUnit(TU);
  return R;
}

TEST(CoarseningPassTest, ScalarModeKernelRewrite) {
  RunResult R = runCoarsening(BasicSource);
  EXPECT_EQ(R.Report.CoarsenedKernels, 1u);
  EXPECT_EQ(R.Report.RewrittenLaunches, 1u);
  // Scalar launches produce the scalar parameter form.
  EXPECT_NE(R.Output.find(
                "__global__ void child(int *data, int n, unsigned int "
                "_gDimX)"),
            std::string::npos)
      << R.Output;
  // The block-strided coarsening loop.
  EXPECT_NE(R.Output.find("for (unsigned int _bx = blockIdx.x; _bx < _gDimX; "
                          "_bx += gridDim.x)"),
            std::string::npos)
      << R.Output;
  // Body remaps: blockIdx.x -> _bx, gridDim.x -> _gDimX.
  EXPECT_NE(R.Output.find("int i = _bx * blockDim.x + threadIdx.x;"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("data[i] = data[i] + _gDimX;"), std::string::npos)
      << R.Output;
}

TEST(CoarseningPassTest, LaunchSiteRewrite) {
  RunResult R = runCoarsening(BasicSource);
  EXPECT_NE(R.Output.find("unsigned int _gDimX0 = (count + 31) / 32;"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find(
                "unsigned int _cgDimX0 = (_gDimX0 + _CFACTOR - 1) / _CFACTOR;"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child<<<_cgDimX0, 32>>>(data, count, _gDimX0);"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("#define _CFACTOR 4"), std::string::npos);
}

TEST(CoarseningPassTest, LiteralFactor) {
  CoarseningOptions Options;
  Options.Spelling = KnobSpelling::Literal;
  Options.Factor = 16;
  RunResult R = runCoarsening(BasicSource, Options);
  EXPECT_NE(R.Output.find("(_gDimX0 + 16 - 1) / 16"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("#define"), std::string::npos);
}

TEST(CoarseningPassTest, HostLaunchPatchedWithIdentity) {
  RunResult R = runCoarsening(R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) data[i] = 1;
}
__global__ void parent(int *data, int n) {
  child<<<(n + 31) / 32, 32>>>(data, n);
}
void host(int *data, int n) {
  child<<<(n + 31) / 32, 32>>>(data, n);
}
)");
  EXPECT_EQ(R.Report.RewrittenLaunches, 2u);
  // Host launch keeps the original configuration but passes it as _gDimX.
  EXPECT_NE(R.Output.find("child<<<_gDimX1, 32>>>(data, n, _gDimX1);"),
            std::string::npos)
      << R.Output;
  // No coarsened config variable for the identity-patched site.
  EXPECT_EQ(R.Output.find("_cgDimX1"), std::string::npos) << R.Output;
}

TEST(CoarseningPassTest, Dim3ModeKernelRewrite) {
  RunResult R = runCoarsening(R"(
__global__ void child(float *img, int w) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  img[y * w + x] = 0.0f;
}
__global__ void parent(float *img, int w, int h) {
  dim3 grid((w + 15) / 16, (h + 15) / 16, 1);
  dim3 block(16, 16, 1);
  child<<<grid, block>>>(img, w);
}
)");
  EXPECT_EQ(R.Report.CoarsenedKernels, 1u);
  // dim3 launches produce the Fig. 6 dim3 parameter form.
  EXPECT_NE(R.Output.find("dim3 _gDim)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("_bx < _gDim.x"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("_cgDim0.x = (_gDim0.x + _CFACTOR - 1) / _CFACTOR;"),
            std::string::npos)
      << R.Output;
  // blockIdx.y is untouched (y is not coarsened).
  EXPECT_NE(R.Output.find("blockIdx.y"), std::string::npos) << R.Output;
}

TEST(CoarseningPassTest, EarlyReturnUsesHelper) {
  RunResult R = runCoarsening(R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n)
    return;
  data[i] = i;
}
__global__ void parent(int *data, int n) {
  child<<<(n + 127) / 128, 128>>>(data, n);
}
)");
  EXPECT_EQ(R.Report.CoarsenedKernels, 1u);
  EXPECT_NE(R.Output.find("__device__ void child_coarse_body"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child_coarse_body(data, n, _gDimX, _bx);"),
            std::string::npos)
      << R.Output;
}

TEST(CoarseningPassTest, BarrierKernelsAreCoarsened) {
  // Unlike thresholding, coarsening legally applies to kernels with
  // barriers (the loop trip count is uniform across the block).
  RunResult R = runCoarsening(R"(
__global__ void child(int *data) {
  __shared__ int tile[32];
  tile[threadIdx.x] = data[blockIdx.x * 32 + threadIdx.x];
  __syncthreads();
  data[blockIdx.x * 32 + threadIdx.x] = tile[31 - threadIdx.x];
}
__global__ void parent(int *data, int n) {
  child<<<(n + 31) / 32, 32>>>(data);
}
)");
  EXPECT_EQ(R.Report.CoarsenedKernels, 1u);
  EXPECT_NE(R.Output.find("__syncthreads();"), std::string::npos);
  EXPECT_NE(R.Output.find("tile[threadIdx.x] = data[_bx * 32 + threadIdx.x];"),
            std::string::npos)
      << R.Output;
}

TEST(CoarseningPassTest, AlreadyCoarsenedIsSkipped) {
  std::string Once;
  {
    RunResult R = runCoarsening(BasicSource);
    Once = R.Output;
  }
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Once, Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  CoarseningOptions Options;
  CoarseningResult Second = applyCoarsening(Ctx, TU, Options, Diags);
  EXPECT_EQ(Second.CoarsenedKernels, 0u);
  EXPECT_GE(Second.SkippedLaunches, 1u);
}

TEST(CoarseningPassTest, OutputReparses) {
  RunResult R = runCoarsening(BasicSource);
  ASTContext Ctx;
  DiagnosticEngine Diags;
  EXPECT_NE(parseSource(R.Output, Ctx, Diags), nullptr)
      << Diags.str() << "\n"
      << R.Output;
}

} // namespace
