//===--- ThresholdingPassTest.cpp - Fig. 3 transformation tests ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/ThresholdingPass.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

const char *BasicSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
  }
}
)";

struct RunResult {
  std::string Output;
  ThresholdingResult Report;
  std::string DiagText;
};

RunResult runThresholding(std::string_view Source,
                          ThresholdingOptions Options = {}) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  RunResult R;
  if (!TU)
    return R;
  R.Report = applyThresholding(Ctx, TU, Options, Diags);
  R.DiagText = Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  R.Output = printTranslationUnit(TU);
  return R;
}

TEST(ThresholdingPassTest, TransformsBasicLaunch) {
  RunResult R = runThresholding(BasicSource);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u);
  EXPECT_EQ(R.Report.SkippedLaunches, 0u);
  // Serial device function generated.
  EXPECT_NE(R.Output.find("__device__ void child_serial"), std::string::npos)
      << R.Output;
  // Threshold guard around the launch.
  EXPECT_NE(R.Output.find("if (_threads0 >= _THRESHOLD)"), std::string::npos)
      << R.Output;
  // Serial call on the else path, passing the launch configuration.
  EXPECT_NE(R.Output.find("child_serial(data, count, (_threads0 + 31) / 32, "
                          "32);"),
            std::string::npos)
      << R.Output;
  // Macro default emitted.
  EXPECT_NE(R.Output.find("#ifndef _THRESHOLD"), std::string::npos);
  EXPECT_NE(R.Output.find("#define _THRESHOLD 128"), std::string::npos);
}

TEST(ThresholdingPassTest, InlineSubstitutionAvoidsDoubleEvaluation) {
  RunResult R = runThresholding(BasicSource);
  // The recovered count is hoisted: `_threads0 = count` and the grid
  // expression now uses _threads0.
  EXPECT_NE(R.Output.find("int _threads0 = count;"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child<<<(_threads0 + 31) / 32, 32>>>(data, count)"),
            std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, SerialVersionStructure) {
  RunResult R = runThresholding(BasicSource);
  // Block loop around thread loop, with remapped builtins.
  EXPECT_NE(
      R.Output.find("for (unsigned int _bx = 0; _bx < _gDim.x; ++_bx)"),
      std::string::npos)
      << R.Output;
  EXPECT_NE(
      R.Output.find("for (unsigned int _tx = 0; _tx < _bDim.x; ++_tx)"),
      std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("int i = _bx * _bDim.x + _tx;"), std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, LiteralSpelling) {
  ThresholdingOptions Options;
  Options.Spelling = KnobSpelling::Literal;
  Options.Threshold = 64;
  RunResult R = runThresholding(BasicSource, Options);
  EXPECT_NE(R.Output.find("if (_threads0 >= 64)"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("#define"), std::string::npos);
}

TEST(ThresholdingPassTest, SerializesBarrierKernelViaSegmentation) {
  // A top-level barrier is structural: the serializer splits the body
  // at it, one thread-loop nest per barrier-free segment.
  RunResult R = runThresholding(R"(
__global__ void child(int *data) {
  data[threadIdx.x] = 1;
  __syncthreads();
  data[threadIdx.x] += data[0];
}
__global__ void parent(int *data, int n) {
  child<<<(n + 31) / 32, 32>>>(data);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 1u);
  EXPECT_EQ(R.Report.SkippedLaunches, 0u);
  EXPECT_NE(R.Output.find("child_serial"), std::string::npos) << R.Output;
  // Two segments -> two thread loops; the barrier call itself is gone.
  size_t First =
      R.Output.find("for (unsigned int _tx = 0; _tx < _bDim.x; ++_tx)");
  ASSERT_NE(First, std::string::npos) << R.Output;
  EXPECT_NE(
      R.Output.find("for (unsigned int _tx = 0; _tx < _bDim.x; ++_tx)",
                    First + 1),
      std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("__syncthreads", R.Output.find("child_serial")),
            std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, SerializesSharedMemoryKernel) {
  // __shared__ at body top lowers to a block-scope local (with an
  // explicit zero-init loop, matching the VM's zeroed-per-block
  // window) in the serial version.
  RunResult R = runThresholding(R"(
__global__ void child(int *data) {
  __shared__ int tile[64];
  tile[threadIdx.x] = data[threadIdx.x];
  data[threadIdx.x] = tile[63 - threadIdx.x];
}
__global__ void parent(int *data, int n) {
  child<<<(n + 63) / 64, 64>>>(data);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 1u);
  EXPECT_EQ(R.Report.SkippedLaunches, 0u);
  size_t Serial = R.Output.find("child_serial");
  ASSERT_NE(Serial, std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("int tile[64]", Serial), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("__shared__", Serial), std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, SkipsUnrecognizedGridExpression) {
  RunResult R = runThresholding(R"(
__global__ void child(int *data) { data[threadIdx.x] = 1; }
__global__ void parent(int *data, int n) {
  child<<<n, 32>>>(data);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 1u);
}

TEST(ThresholdingPassTest, TotalThreadsFallback) {
  ThresholdingOptions Options;
  Options.FallbackToTotalThreads = true;
  RunResult R = runThresholding(R"(
__global__ void child(int *data) { data[threadIdx.x] = 1; }
__global__ void parent(int *data, int n) {
  child<<<n, 32>>>(data);
}
)",
                                Options);
  EXPECT_EQ(R.Report.TransformedLaunches, 1u);
  EXPECT_NE(R.Output.find("_threads0 = (n) * (32)"), std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, HostLaunchesUntouched) {
  RunResult R = runThresholding(R"(
__global__ void child(int *data) { data[threadIdx.x] = 1; }
void host(int *data, int n) {
  child<<<(n + 31) / 32, 32>>>(data);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 0u);
  EXPECT_EQ(R.Report.SkippedLaunches, 0u);
  EXPECT_EQ(R.Output.find("child_serial"), std::string::npos);
}

TEST(ThresholdingPassTest, EarlyReturnChildUsesThreadHelper) {
  RunResult R = runThresholding(R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n)
    return;
  data[i] = i;
}
__global__ void parent(int *data, int n) {
  child<<<(n + 127) / 128, 128>>>(data, n);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 1u);
  // A per-thread helper keeps `return` scoped to one serialized thread.
  EXPECT_NE(R.Output.find("__device__ void child_serial_thread"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("child_serial_thread(data, n, _gDim, _bDim, _bx, "
                          "_tx);"),
            std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, MultiDimensionalChild) {
  RunResult R = runThresholding(R"(
__global__ void child(float *img, int w, int h) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x < w && y < h) {
    img[y * w + x] = 0.0f;
  }
}
__global__ void parent(float *img, int w, int h) {
  dim3 grid((w + 15) / 16, (h + 15) / 16, 1);
  dim3 block(16, 16, 1);
  child<<<grid, block>>>(img, w, h);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  // All-dimension loops generated.
  EXPECT_NE(R.Output.find("_by < _gDim.y"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("_ty < _bDim.y"), std::string::npos) << R.Output;
  // Thread count is the product of the two recovered dimensions.
  EXPECT_NE(R.Output.find("int _threads0 = w * h;"), std::string::npos)
      << R.Output;
}

TEST(ThresholdingPassTest, TwoLaunchSitesShareSerialVersion) {
  RunResult R = runThresholding(R"(
__global__ void child(int *d, int n) { d[threadIdx.x] = n; }
__global__ void parentA(int *d, int n) {
  child<<<(n + 31) / 32, 32>>>(d, n);
}
__global__ void parentB(int *d, int m) {
  child<<<(m - 1) / 64 + 1, 64>>>(d, m);
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 2u);
  // Exactly one serial version.
  size_t First = R.Output.find("__device__ void child_serial");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(R.Output.find("__device__ void child_serial", First + 1),
            std::string::npos);
  // Distinct hoisted count variables.
  EXPECT_NE(R.Output.find("_threads0"), std::string::npos);
  EXPECT_NE(R.Output.find("_threads1"), std::string::npos);
}

TEST(ThresholdingPassTest, OutputReparses) {
  RunResult R = runThresholding(BasicSource);
  ASTContext Ctx;
  DiagnosticEngine Diags;
  EXPECT_NE(parseSource(R.Output, Ctx, Diags), nullptr)
      << Diags.str() << "\n"
      << R.Output;
}

TEST(ThresholdingPassTest, ThroughVariableLaunchConfig) {
  RunResult R = runThresholding(R"(
__global__ void child(int *d, int n) { d[threadIdx.x] = n; }
__global__ void parent(int *d, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    int blocks = (count + 255) / 256;
    child<<<blocks, 256>>>(d, count);
  }
}
)");
  EXPECT_EQ(R.Report.TransformedLaunches, 1u) << R.DiagText;
  // The count re-evaluates the stable variable `count`.
  EXPECT_NE(R.Output.find("int _threads0 = count;"), std::string::npos)
      << R.Output;
}

} // namespace
