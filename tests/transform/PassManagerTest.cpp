//===--- PassManagerTest.cpp - Pass/analysis infrastructure tests --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the pass-manager refactor: registry lookup and external
/// registration, analysis-cache hit/invalidation accounting, the
/// pipeline-string grammar (parse + canonical round-trip), and byte
/// equivalence of the shared-AnalysisManager pipeline against the legacy
/// run-every-analysis-per-pass behavior on a generated fuzz corpus.
///
//===----------------------------------------------------------------------===//

#include "transform/PassManager.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "sema/Analysis.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace dpo;

namespace {

const char *BasicSource = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(data, count);
    }
  }
}
)";

/// parent -> child -> grandchild: serializing/coarsening `child` clones a
/// body that contains a launch, which must invalidate cached launch sites.
const char *NestedSource = R"(
__global__ void grandchild(int *data, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) {
    data[i] = data[i] + 1;
  }
}
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int m = data[i];
    if (m > 0) {
      grandchild<<<(m + 31) / 32, 32>>>(data, m);
    }
  }
}
__global__ void parent(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 63) / 64, 64>>>(data, count);
    }
  }
}
)";

TranslationUnit *parseOrDie(std::string_view Source, ASTContext &Ctx,
                            DiagnosticEngine &Diags) {
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  return TU;
}

/// The pre-pass-manager pipeline: every pass runs with a private
/// AnalysisManager (all analyses recomputed), stopping at the first error.
std::string legacyTransform(std::string_view Source,
                            const PipelineOptions &Options,
                            DiagnosticEngine &Diags) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return std::string();
  if (Options.EnableThresholding) {
    applyThresholding(Ctx, TU, Options.Thresholding, Diags);
    if (Diags.hasErrors())
      return std::string();
  }
  if (Options.EnableCoarsening) {
    applyCoarsening(Ctx, TU, Options.Coarsening, Diags);
    if (Diags.hasErrors())
      return std::string();
  }
  if (Options.EnableAggregation) {
    applyAggregation(Ctx, TU, Options.Aggregation, Diags);
    if (Diags.hasErrors())
      return std::string();
  }
  return printTranslationUnit(TU);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(PassRegistryTest, ContainsBuiltinPasses) {
  PassRegistry &R = PassRegistry::global();
  EXPECT_TRUE(R.contains("threshold"));
  EXPECT_TRUE(R.contains("coarsen"));
  EXPECT_TRUE(R.contains("aggregate"));
  EXPECT_TRUE(R.contains("builtin-rewrite"));
  EXPECT_FALSE(R.contains("inline"));
  EXPECT_GE(R.entries().size(), 4u);
}

TEST(PassRegistryTest, CreateUnknownPassFails) {
  std::string Error;
  auto Pass = PassRegistry::global().create("no-such-pass", "",
                                            PassPipelineConfig(), Error);
  EXPECT_EQ(Pass, nullptr);
  EXPECT_NE(Error.find("no-such-pass"), std::string::npos);
}

TEST(PassRegistryTest, CreateAppliesParameters) {
  std::string Error;
  auto Pass = PassRegistry::global().create("threshold", "256:fallback",
                                            PassPipelineConfig(), Error);
  ASSERT_NE(Pass, nullptr) << Error;
  auto *TP = dynamic_cast<ThresholdingPass *>(Pass.get());
  ASSERT_NE(TP, nullptr);
  EXPECT_EQ(TP->options().Threshold, 256u);
  EXPECT_TRUE(TP->options().FallbackToTotalThreads);
}

namespace {

/// A trivial externally registered pass: counts launch sites through the
/// AnalysisManager and changes nothing.
class CountLaunchesPass : public TransformPass {
public:
  std::string name() const override { return "count-launches"; }
  PreservedAnalyses run(ASTContext &, TranslationUnit *, AnalysisManager &AM,
                        DiagnosticEngine &) override {
    LastCount = AM.launchSites().size();
    return PreservedAnalyses::all();
  }
  static size_t LastCount;
};
size_t CountLaunchesPass::LastCount = 0;

} // namespace

TEST(PassRegistryTest, ExternalRegistrationAndDuplicateRejection) {
  PassRegistry &R = PassRegistry::global();
  // The registry is process-global: registration may already have happened
  // in an earlier test-order permutation.
  if (!R.contains("count-launches")) {
    EXPECT_TRUE(R.registerPass(
        "count-launches", "test-only launch counter",
        [](std::string_view, const PassPipelineConfig &, std::string &) {
          return std::make_unique<CountLaunchesPass>();
        }));
  }
  EXPECT_FALSE(R.registerPass(
      "threshold", "duplicate",
      [](std::string_view, const PassPipelineConfig &, std::string &)
          -> std::unique_ptr<TransformPass> { return nullptr; }));

  PassManager PM;
  std::string Error;
  ASSERT_TRUE(
      parsePassPipeline(PM, "count-launches", PassPipelineConfig(), Error))
      << Error;
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(BasicSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);
  EXPECT_TRUE(PM.run(Ctx, TU, AM, Diags));
  EXPECT_EQ(CountLaunchesPass::LastCount, 1u);
}

//===----------------------------------------------------------------------===//
// AnalysisManager caching
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, CachesAndCountsHits) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(BasicSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  const auto &First = AM.launchSites();
  EXPECT_EQ(First.size(), 1u);
  const auto &Second = AM.launchSites();
  EXPECT_EQ(&First, &Second); // Same cached object, not a recompute.
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Computed, 1u);
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Hits, 1u);

  const FunctionDecl *Child = TU->findFunction("child");
  ASSERT_NE(Child, nullptr);
  AM.serializability(Child);
  AM.serializability(Child);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Computed, 1u);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Hits, 1u);
}

TEST(AnalysisManagerTest, InvalidationDropsOnlyUnpreserved) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(BasicSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  AM.launchSites();
  const FunctionDecl *Child = TU->findFunction("child");
  AM.serializability(Child);

  PreservedAnalyses PA; // none...
  PA.preserve(AnalysisID::Transformability);
  AM.invalidate(PA);

  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Invalidations, 1u);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Invalidations, 0u);

  AM.launchSites();
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Computed, 2u);
  AM.serializability(Child);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Computed, 1u);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Hits, 1u);

  // Invalidating empty caches is not counted as an event.
  AM.invalidateAll();
  AM.invalidateAll();
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Invalidations, 2u);
}

TEST(AnalysisManagerTest, FullPipelineComputesLaunchSitesOnce) {
  // The acceptance criterion: a threshold+coarsen+aggregate pipeline walks
  // the TU for launch sites once; the other two passes hit the cache.
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(BasicSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  PipelineOptions Options;
  Options.EnableThresholding = Options.EnableCoarsening =
      Options.EnableAggregation = true;
  PipelineResult Result = runPipeline(Ctx, TU, Options, Diags, AM);
  ASSERT_TRUE(Result.Ok) << Diags.str();
  EXPECT_EQ(Result.Thresholding.TransformedLaunches, 1u);
  EXPECT_EQ(Result.Coarsening.CoarsenedKernels, 1u);
  EXPECT_EQ(Result.Aggregation.TransformedLaunches, 1u);

  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Computed, 1u);
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Hits, 2u);
}

TEST(AnalysisManagerTest, NestedLaunchesInvalidateLaunchSites) {
  // Serializing a child that itself launches clones launch nodes, so the
  // next pass must recompute the site list instead of using stale caches.
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(NestedSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  PipelineOptions Options;
  Options.EnableThresholding = Options.EnableCoarsening = true;
  PipelineResult Result = runPipeline(Ctx, TU, Options, Diags, AM);
  ASSERT_TRUE(Result.Ok) << Diags.str();
  EXPECT_GT(Result.Thresholding.SerializedNestedLaunches, 0u);
  EXPECT_GE(AM.stats(AnalysisID::LaunchSites).Computed, 2u);
}

/// Two independent parent/child pairs: the unit of per-function
/// invalidation. parent2's grid expression contains no division, so
/// grid-dim recovery fails there (threshold queries it, caches the
/// failure, and skips the site without touching parent2).
const char *TwoParentSource = R"(
__global__ void child1(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 1;
  }
}
__global__ void child2(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = data[i] + 2;
  }
}
__global__ void parent1(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child1<<<(count + 31) / 32, 32>>>(data, count);
    }
  }
}
__global__ void parent2(int *data, int *counts, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child2<<<count * 2, 32>>>(data, count);
    }
  }
}
)";

TEST(AnalysisManagerTest, ScopedInvalidationKeepsUntouchedFunctions) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(TwoParentSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  const std::vector<LaunchSite> &Sites = AM.launchSites();
  ASSERT_EQ(Sites.size(), 2u);
  const FunctionDecl *P1 = TU->findFunction("parent1");
  const FunctionDecl *P2 = TU->findFunction("parent2");
  // By value: the cached vector is replaced when the list reassembles.
  const LaunchSite S1 = Sites[0].Caller == P1 ? Sites[0] : Sites[1];
  const LaunchSite S2 = Sites[0].Caller == P2 ? Sites[0] : Sites[1];
  ASSERT_EQ(S1.Caller, P1);
  ASSERT_EQ(S2.Caller, P2);

  AM.serializability(S1.Child);
  AM.serializability(S2.Child);
  AM.gridDim(S1.Caller, S1.Launch->gridDim());
  AM.gridDim(S2.Caller, S2.Launch->gridDim());
  AM.isPure(S1.Launch->gridDim(), S1.Caller);
  AM.isPure(S2.Launch->gridDim(), S2.Caller);
  EXPECT_EQ(AM.stats(AnalysisID::GridDim).Computed, 2u);
  EXPECT_EQ(AM.stats(AnalysisID::Purity).Computed, 2u);

  // A pass that mutated only parent1.
  PreservedAnalyses PA;
  PA.limitToFunctions({P1});
  AM.invalidate(PA);

  // The whole-TU site list reassembles from the surviving per-function
  // lists: one Computed (parent1 rescanned), one Hit (the reuse).
  EXPECT_EQ(AM.launchSites().size(), 2u);
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Computed, 2u);
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Hits, 1u);

  // Touched functions were kernels, so child verdicts survive; parent2's
  // expression-level results survive; parent1's were dropped.
  AM.serializability(S1.Child);
  AM.serializability(S2.Child);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Computed, 2u);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Hits, 2u);
  AM.gridDim(S2.Caller, S2.Launch->gridDim());
  EXPECT_EQ(AM.stats(AnalysisID::GridDim).Hits, 1u);
  AM.gridDim(S1.Caller, S1.Launch->gridDim());
  EXPECT_EQ(AM.stats(AnalysisID::GridDim).Computed, 3u);
  AM.isPure(S2.Launch->gridDim(), S2.Caller);
  EXPECT_EQ(AM.stats(AnalysisID::Purity).Hits, 1u);
  AM.isPure(S1.Launch->gridDim(), S1.Caller);
  EXPECT_EQ(AM.stats(AnalysisID::Purity).Computed, 3u);
}

TEST(AnalysisManagerTest, TouchedDeviceFunctionDropsAllTransformability) {
  // Serializability is transitive over __device__ callees and the cache
  // has no reverse call edges: touching a device function must drop every
  // verdict, while touching a kernel drops only its own.
  const char *Source = R"(
__device__ int bump(int x) {
  return x + 1;
}
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = bump(data[i]);
  }
}
__global__ void parent(int *data, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    child<<<(numV + 31) / 32, 32>>>(data, numV);
  }
}
)";
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(Source, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  const FunctionDecl *Child = TU->findFunction("child");
  AM.serializability(Child);

  PreservedAnalyses TouchKernel;
  TouchKernel.limitToFunctions({TU->findFunction("parent")});
  AM.invalidate(TouchKernel);
  AM.serializability(Child);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Hits, 1u);

  PreservedAnalyses TouchDevice;
  TouchDevice.limitToFunctions({TU->findFunction("bump")});
  AM.invalidate(TouchDevice);
  AM.serializability(Child);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Computed, 2u);
}

TEST(PassPipelineTest, ScopedInvalidationHitsAcrossPasses) {
  // Two threshold runs over TwoParentSource. The first transforms
  // parent1's launch and abandons grid-dim/purity scoped to parent1; the
  // second re-queries parent2's (cached, failed) grid-dim recovery — a
  // hit only because the scoped invalidation kept untouched functions.
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(TwoParentSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);

  PassManager PM;
  std::string Error;
  ASSERT_TRUE(
      parsePassPipeline(PM, "threshold[32],threshold[32]",
                        PassPipelineConfig(), Error))
      << Error;
  ASSERT_TRUE(PM.run(Ctx, TU, AM, Diags)) << Diags.str();

  // Run 1 computes both parents' grid-dims; run 2 recomputes parent1's
  // (mutated) and hits parent2's.
  EXPECT_EQ(AM.stats(AnalysisID::GridDim).Hits, 1u);
  // Child verdicts survive both runs' invalidations (kernels only).
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Computed, 2u);
  EXPECT_EQ(AM.stats(AnalysisID::Transformability).Hits, 2u);
  // The site list is computed once and partially reassembled at most.
  EXPECT_EQ(AM.stats(AnalysisID::LaunchSites).Computed, 1u);

  // The same numbers flow into --print-pass-stats: the grid-dim row of
  // the report shows the cross-pass hit.
  std::string Report = PM.statsReport(AM);
  unsigned Computed = 0, Hits = 0, Invalidated = 0;
  size_t Pos = Report.find("grid-dim");
  ASSERT_NE(Pos, std::string::npos) << Report;
  ASSERT_EQ(std::sscanf(Report.c_str() + Pos, "grid-dim %u %u %u", &Computed,
                        &Hits, &Invalidated),
            3)
      << Report;
  EXPECT_EQ(Hits, 1u) << Report;
  EXPECT_GE(Invalidated, 1u) << Report;
}

//===----------------------------------------------------------------------===//
// Pipeline strings
//===----------------------------------------------------------------------===//

TEST(PassPipelineTest, ParseProducesCanonicalReprs) {
  PassManager PM;
  std::string Error;
  ASSERT_TRUE(parsePassPipeline(PM, "threshold, coarsen ,aggregate",
                                PassPipelineConfig(), Error))
      << Error;
  ASSERT_EQ(PM.size(), 3u);
  // Defaults filled in: canonical text spells every knob.
  EXPECT_EQ(PM.pipelineText(),
            "threshold[128],coarsen[4],aggregate[multiblock:8]");
}

TEST(PassPipelineTest, CanonicalTextRoundTrips) {
  const char *Canonical[] = {
      "threshold[128]",
      "threshold[256:fallback]",
      "threshold[32:literal]",
      "coarsen[4]",
      "coarsen[16:literal]",
      "aggregate[multiblock:8]",
      "aggregate[block]",
      "aggregate[block:agg-threshold=4]",
      "aggregate[multiblock:16:agg-threshold=2]",
      "aggregate[warp]",
      "aggregate[grid]",
      "builtin-rewrite",
      "builtin-rewrite[blockIdx.x=_bx:gridDim=_gd]",
      "builtin-rewrite[blockIdx.x=_bx:strict]",
      "threshold[128],coarsen[4],aggregate[multiblock:8]",
      "coarsen[2],threshold[64],aggregate[grid]",
  };
  for (const char *Text : Canonical) {
    PassManager PM;
    std::string Error;
    ASSERT_TRUE(parsePassPipeline(PM, Text, PassPipelineConfig(), Error))
        << Text << ": " << Error;
    EXPECT_EQ(PM.pipelineText(), Text);
    // And the canonical text parses back to itself (fixed point).
    PassManager PM2;
    ASSERT_TRUE(
        parsePassPipeline(PM2, PM.pipelineText(), PassPipelineConfig(), Error))
        << Error;
    EXPECT_EQ(PM2.pipelineText(), PM.pipelineText());
  }
}

TEST(PassPipelineTest, RejectsMalformedSpecs) {
  const char *Bad[] = {
      "",
      "threshold,,coarsen",
      "unknown-pass",
      "threshold[abc]",
      "threshold[0]",
      "threshold[99999999999]",
      "coarsen[",
      "coarsen]",
      "aggregate[superblock]",
      "aggregate[block:agg-threshold=zz]",
      "builtin-rewrite[gridDim]",
      "builtin-rewrite[gridDim.w=_x]",
  };
  for (const char *Text : Bad) {
    PassManager PM;
    std::string Error;
    EXPECT_FALSE(parsePassPipeline(PM, Text, PassPipelineConfig(), Error))
        << "accepted: " << Text;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(PassPipelineTest, TimingsRecordedPerPass) {
  PassManager PM;
  std::string Error;
  ASSERT_TRUE(parsePassPipeline(PM, "threshold,coarsen,aggregate",
                                PassPipelineConfig(), Error));
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseOrDie(BasicSource, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);
  ASSERT_TRUE(PM.run(Ctx, TU, AM, Diags));
  ASSERT_EQ(PM.timings().size(), 3u);
  EXPECT_EQ(PM.timings()[0].Name, "threshold");
  EXPECT_EQ(PM.timings()[2].Name, "aggregate");
  std::string Report = PM.statsReport(AM);
  EXPECT_NE(Report.find("pass timings"), std::string::npos);
  EXPECT_NE(Report.find("launch-sites"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Equivalence: shared-analysis pipeline vs. legacy per-pass recompute
//===----------------------------------------------------------------------===//

std::string randomIntExpr(std::mt19937 &Rng, int Depth = 0) {
  std::uniform_int_distribution<int> Pick(0, Depth > 2 ? 3 : 6);
  switch (Pick(Rng)) {
  case 0: return "i";
  case 1: return "base";
  case 2: return "count";
  case 3: return std::to_string(1 + Rng() % 97);
  case 4:
    return "(" + randomIntExpr(Rng, Depth + 1) + " + " +
           randomIntExpr(Rng, Depth + 1) + ")";
  case 5:
    return "(" + randomIntExpr(Rng, Depth + 1) + " * " +
           std::to_string(1 + Rng() % 7) + ")";
  default:
    return "(" + randomIntExpr(Rng, Depth + 1) + " - " +
           randomIntExpr(Rng, Depth + 1) + ")";
  }
}

/// Random parent/child programs in the shape the passes target; some
/// children early-return, some grids use the (N-1)/b+1 spelling, some
/// programs have two launch sites sharing one child.
std::string randomProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::ostringstream OS;
  unsigned Pairs = 1 + Rng() % 2;
  bool SharedChild = Rng() % 3 == 0;
  for (unsigned P = 0; P < Pairs; ++P) {
    bool EarlyReturn = Rng() % 3 == 0;
    if (P == 0 || !SharedChild) {
      OS << "__global__ void child" << P << "(int *data, int base, int count) {\n"
         << "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n";
      if (EarlyReturn)
        OS << "  if (i >= count) {\n    return;\n  }\n"
           << "  data[base + i] = " << randomIntExpr(Rng) << ";\n";
      else
        OS << "  if (i < count) {\n    data[base + i] = "
           << randomIntExpr(Rng) << ";\n  }\n";
      OS << "}\n";
    }
    unsigned Child = SharedChild ? 0 : P;
    unsigned Block = 32u << (Rng() % 3);
    const char *Grid = Rng() % 2 == 0 ? "(count + %u - 1) / %u" : "(count - 1) / %u + 1";
    char GridBuf[64];
    std::snprintf(GridBuf, sizeof(GridBuf), Grid, Block, Block);
    OS << "__global__ void parent" << P
       << "(int *data, int *counts, int numV) {\n"
       << "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  if (v < numV) {\n"
       << "    int count = counts[v];\n"
       << "    if (count > 0) {\n"
       << "      child" << Child << "<<<" << GridBuf << ", " << Block
       << ">>>(data, v * 64, count);\n"
       << "    }\n"
       << "  }\n"
       << "}\n";
  }
  return OS.str();
}

TEST(PassPipelineTest, ManagedPipelineMatchesLegacyOnFuzzCorpus) {
  std::vector<PipelineOptions> Combos;
  for (unsigned Mask = 1; Mask < 8; ++Mask) {
    PipelineOptions O;
    O.EnableThresholding = Mask & 1;
    O.EnableCoarsening = Mask & 2;
    O.EnableAggregation = Mask & 4;
    Combos.push_back(O);
  }
  for (unsigned Seed = 1; Seed <= 20; ++Seed) {
    std::string Source = randomProgram(Seed);
    for (const PipelineOptions &Options : Combos) {
      DiagnosticEngine LegacyDiags, ManagedDiags;
      std::string Legacy = legacyTransform(Source, Options, LegacyDiags);
      std::string Managed = transformSource(Source, Options, ManagedDiags);
      EXPECT_EQ(Legacy, Managed)
          << "seed " << Seed << " t=" << Options.EnableThresholding
          << " c=" << Options.EnableCoarsening
          << " a=" << Options.EnableAggregation << "\nsource:\n"
          << Source;
      EXPECT_EQ(LegacyDiags.hasErrors(), ManagedDiags.hasErrors());
    }
  }
}

TEST(PassPipelineTest, ManagedPipelineMatchesLegacyOnNestedLaunches) {
  PipelineOptions Options;
  Options.EnableThresholding = Options.EnableCoarsening =
      Options.EnableAggregation = true;
  DiagnosticEngine LegacyDiags, ManagedDiags;
  std::string Legacy = legacyTransform(NestedSource, Options, LegacyDiags);
  std::string Managed = transformSource(NestedSource, Options, ManagedDiags);
  EXPECT_EQ(Legacy, Managed);
}

TEST(PassPipelineTest, TextualPipelineMatchesFlagPipeline) {
  PipelineOptions Options;
  Options.EnableThresholding = Options.EnableCoarsening =
      Options.EnableAggregation = true;
  for (unsigned Seed = 1; Seed <= 5; ++Seed) {
    std::string Source = randomProgram(Seed);
    DiagnosticEngine FlagDiags, TextDiags;
    std::string FromFlags = transformSource(Source, Options, FlagDiags);
    std::string FromText = transformSourceWithPipeline(
        Source, "threshold,coarsen,aggregate", PassPipelineConfig(),
        TextDiags);
    EXPECT_EQ(FromFlags, FromText) << "seed " << Seed;
  }
}

} // namespace
