//===--- SimulatorTest.cpp - Timing-model property tests ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator is a model, so its tests are *property* tests: the
/// qualitative relationships the paper reports must hold (congestion from
/// many small launches, aggregation recovering it, thresholding sweet
/// spots, coarsening synergy with aggregation, granularity trade-offs).
///
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <random>

using namespace dpo;

namespace {

/// An irregular workload shaped like the paper's graph benchmarks: many
/// parent threads, power-law-ish child sizes, most small.
NestedBatch irregularBatch(unsigned NumParents, unsigned Seed = 1) {
  std::mt19937 Rng(Seed);
  NestedBatch B;
  B.NumParentThreads = NumParents;
  B.ParentBlockDim = 128;
  B.ChildBlockDim = 128;
  B.ChildUnits.resize(NumParents);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  for (auto &Units : B.ChildUnits) {
    double X = U(Rng);
    if (X < 0.3)
      Units = 0;
    else if (X < 0.85)
      Units = 1 + (unsigned)(U(Rng) * 30);   // small
    else if (X < 0.98)
      Units = 32 + (unsigned)(U(Rng) * 400); // medium
    else
      Units = 512 + (unsigned)(U(Rng) * 4000); // large
  }
  return B;
}

double timeFor(const NestedBatch &B, const ExecConfig &C) {
  GpuModel Gpu;
  return simulateBatch(Gpu, B, C).TimeUs;
}

ExecConfig bestTCA() {
  ExecConfig C;
  C.Threshold = 128;
  C.CoarsenFactor = 8;
  C.Agg = AggGranularity::MultiBlock;
  return C;
}

TEST(SimulatorTest, EmptyBatchIsFree) {
  NestedBatch B;
  EXPECT_EQ(timeFor(B, ExecConfig::cdp()), 0.0);
}

TEST(SimulatorTest, CdpSuffersLaunchCongestion) {
  NestedBatch B = irregularBatch(100000);
  SimResult Cdp = simulateBatch(GpuModel(), B, ExecConfig::cdp());
  // Launch overhead dominates the CDP execution (the paper's key problem
  // statement): more than half the time is launch.
  EXPECT_GT(Cdp.Breakdown.Launch, Cdp.TimeUs * 0.5)
      << "launch " << Cdp.Breakdown.Launch << " of " << Cdp.TimeUs;
  EXPECT_GT(Cdp.DeviceLaunches, 10000u);
}

TEST(SimulatorTest, NoCdpBeatsNaiveCdp) {
  NestedBatch B = irregularBatch(100000);
  double Cdp = timeFor(B, ExecConfig::cdp());
  double NoCdp = timeFor(B, ExecConfig::noCdp());
  EXPECT_LT(NoCdp, Cdp); // Fig. 9: plain CDP is slower than no CDP.
}

TEST(SimulatorTest, AggregationRecoversCdp) {
  NestedBatch B = irregularBatch(100000);
  double Cdp = timeFor(B, ExecConfig::cdp());
  ExecConfig A;
  A.Agg = AggGranularity::MultiBlock;
  double Agg = timeFor(B, A);
  // CDP+A is many times faster than CDP (paper: 12.1x geomean).
  EXPECT_LT(Agg * 3, Cdp);
}

TEST(SimulatorTest, ThresholdingAloneGivesLargeSpeedup) {
  NestedBatch B = irregularBatch(100000);
  double Cdp = timeFor(B, ExecConfig::cdp());
  ExecConfig T;
  T.Threshold = 128;
  double Thresh = timeFor(B, T);
  EXPECT_LT(Thresh * 3, Cdp); // paper: 13.4x geomean
}

TEST(SimulatorTest, FullPipelineBeatsAggregationAlone) {
  NestedBatch B = irregularBatch(100000);
  ExecConfig A;
  A.Agg = AggGranularity::MultiBlock;
  double AggOnly = timeFor(B, A);
  double Full = timeFor(B, bestTCA());
  EXPECT_LT(Full, AggOnly); // paper: CDP+T+C+A is 3.6x over CDP+A
}

TEST(SimulatorTest, ThresholdSweetSpot) {
  // Fig. 11: performance first improves with the threshold, then degrades
  // when large grids get serialized into divergent parent threads.
  NestedBatch B = irregularBatch(80000);
  ExecConfig C;
  C.Agg = AggGranularity::MultiBlock;
  C.CoarsenFactor = 8;

  auto TimeAt = [&](uint32_t Threshold) {
    ExecConfig C2 = C;
    C2.Threshold = Threshold;
    return timeFor(B, C2);
  };
  double NoThresh = timeFor(B, C);
  double Small = TimeAt(32);
  double Huge = TimeAt(1u << 30); // serialize everything
  EXPECT_LT(Small, NoThresh); // some thresholding helps
  EXPECT_GT(Huge, Small);     // too much hurts (divergent serialization)
}

TEST(SimulatorTest, CoarseningSynergyWithAggregation) {
  // Fig. 9 discussion: coarsening speedup is larger with aggregation than
  // without, because it amortizes the disaggregation logic.
  NestedBatch B = irregularBatch(100000);

  ExecConfig Plain;
  double PlainBase = timeFor(B, Plain);
  ExecConfig PlainC = Plain;
  PlainC.CoarsenFactor = 8;
  double SpeedupNoAgg = PlainBase / timeFor(B, PlainC);

  ExecConfig Agg;
  Agg.Agg = AggGranularity::MultiBlock;
  double AggBase = timeFor(B, Agg);
  ExecConfig AggC = Agg;
  AggC.CoarsenFactor = 8;
  double SpeedupWithAgg = AggBase / timeFor(B, AggC);

  EXPECT_GT(SpeedupWithAgg, SpeedupNoAgg);
  EXPECT_GT(SpeedupWithAgg, 1.0);
}

TEST(SimulatorTest, GranularityTradeoffExists) {
  // The granularity trade-off shows where launch overheads dominate: a
  // large parent grid with light child work (frontier-style BFS/SSSP
  // iterations). Larger groups -> fewer launches -> faster, until grid
  // granularity pays host involvement + zero overlap + one hot counter.
  NestedBatch B;
  B.NumParentThreads = 300000;
  B.ChildUnits.resize(B.NumParentThreads);
  std::mt19937 Rng(11);
  for (auto &U : B.ChildUnits)
    U = Rng() % 3 == 0 ? 0 : 1 + Rng() % 24;
  auto TimeAt = [&](AggGranularity G) {
    ExecConfig C;
    C.Agg = G;
    C.AggGroupBlocks = 8;
    return timeFor(B, C);
  };
  double None = TimeAt(AggGranularity::None);
  double Warp = TimeAt(AggGranularity::Warp);
  double Block = TimeAt(AggGranularity::Block);
  double Multi = TimeAt(AggGranularity::MultiBlock);
  EXPECT_LT(Warp, None);
  EXPECT_LT(Block, Warp);
  EXPECT_LT(Multi, Block);
  // With heavy child work instead, granularity choice barely matters (the
  // device is work-limited) — multi-block stays within a few percent.
  NestedBatch Heavy = irregularBatch(300000);
  ExecConfig CB, CM;
  CB.Agg = AggGranularity::Block;
  CM.Agg = AggGranularity::MultiBlock;
  EXPECT_LT(timeFor(Heavy, CM), timeFor(Heavy, CB) * 1.1);
}

TEST(SimulatorTest, GridGranularityWinsForSmallParents) {
  // Few parents with decent child work: launch count is tiny either way;
  // grid granularity's single launch with full aggregation wins over
  // per-thread launches.
  std::mt19937 Rng(3);
  NestedBatch B;
  B.NumParentThreads = 2000;
  B.ChildUnits.resize(2000);
  for (auto &U : B.ChildUnits)
    U = 16 + Rng() % 64;
  auto TimeAt = [&](AggGranularity G) {
    ExecConfig C;
    C.Agg = G;
    return timeFor(B, C);
  };
  EXPECT_LT(TimeAt(AggGranularity::Grid), TimeAt(AggGranularity::None));
}

TEST(SimulatorTest, LaunchPresencePenaltyObservable) {
  // Section VIII-D: a kernel containing a never-executed launch is slower
  // than one compiled without it.
  NestedBatch B = irregularBatch(200000);
  for (auto &U : B.ChildUnits)
    U = std::min(U, 4u); // all tiny
  ExecConfig THuge;
  THuge.Threshold = 1u << 30; // everything serializes; no launch executes
  double WithLaunch = timeFor(B, THuge);
  double NoCdp = timeFor(B, ExecConfig::noCdp());
  EXPECT_GT(WithLaunch, NoCdp);
  // But thresholding still recovers most of the gap vs plain CDP.
  double Cdp = timeFor(B, ExecConfig::cdp());
  EXPECT_LT(WithLaunch, Cdp);
}

TEST(SimulatorTest, BreakdownBucketsArePlausible) {
  NestedBatch B = irregularBatch(50000);
  ExecConfig C = bestTCA();
  SimResult R = simulateBatch(GpuModel(), B, C);
  EXPECT_GT(R.TimeUs, 0);
  EXPECT_GE(R.Breakdown.ParentWork, 0);
  EXPECT_GE(R.Breakdown.ChildWork, 0);
  EXPECT_GE(R.Breakdown.Launch, 0);
  EXPECT_GE(R.Breakdown.Aggregation, 0);
  EXPECT_GE(R.Breakdown.Disaggregation, 0);
  EXPECT_NEAR(R.Breakdown.total(), R.TimeUs, 1e-9);
  // With aggregation on, there must be some aggregation/disagg time.
  EXPECT_GT(R.Breakdown.Aggregation, 0);
  EXPECT_GT(R.Breakdown.Disaggregation, 0);
}

TEST(SimulatorTest, ThresholdingShiftsWorkParentward) {
  // Fig. 10 first observation: thresholding increases parent work and
  // decreases child work.
  NestedBatch B = irregularBatch(60000);
  ExecConfig A;
  A.Agg = AggGranularity::MultiBlock;
  SimResult Base = simulateBatch(GpuModel(), B, A);
  ExecConfig TA = A;
  TA.Threshold = 128;
  SimResult WithT = simulateBatch(GpuModel(), B, TA);
  EXPECT_GT(WithT.Breakdown.ParentWork, Base.Breakdown.ParentWork);
  EXPECT_LT(WithT.Breakdown.ChildWork, Base.Breakdown.ChildWork);
  EXPECT_LT(WithT.Breakdown.Disaggregation, Base.Breakdown.Disaggregation);
  EXPECT_LT(WithT.Breakdown.Launch + 1e-9, Base.Breakdown.Launch + 1e-9);
}

TEST(SimulatorTest, CoarseningReducesLaunchAndDisagg) {
  // Fig. 10 third/fourth observations.
  NestedBatch B = irregularBatch(60000);
  ExecConfig A;
  A.Agg = AggGranularity::MultiBlock;
  A.Threshold = 64;
  SimResult Base = simulateBatch(GpuModel(), B, A);
  ExecConfig CA = A;
  CA.CoarsenFactor = 8;
  SimResult WithC = simulateBatch(GpuModel(), B, CA);
  EXPECT_LT(WithC.Breakdown.Disaggregation, Base.Breakdown.Disaggregation);
  EXPECT_LE(WithC.ChildBlocks, Base.ChildBlocks);
}

TEST(SimulatorTest, DeterministicResults) {
  NestedBatch B = irregularBatch(30000, /*Seed=*/9);
  ExecConfig C = bestTCA();
  double T1 = timeFor(B, C);
  double T2 = timeFor(B, C);
  EXPECT_EQ(T1, T2);
}

TEST(SimulatorTest, MonotoneInWork) {
  // More child work should never be faster, all else equal.
  NestedBatch Small = irregularBatch(20000, 5);
  NestedBatch Big = Small;
  for (auto &U : Big.ChildUnits)
    U *= 2;
  for (auto Config : {ExecConfig::cdp(), ExecConfig::noCdp(), bestTCA()})
    EXPECT_GE(timeFor(Big, Config), timeFor(Small, Config));
}

} // namespace
