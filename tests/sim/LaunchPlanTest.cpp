//===--- LaunchPlanTest.cpp - Runtime strategy plan tests ---------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "rt/LaunchPlan.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

using namespace dpo;

namespace {

NestedBatch makeBatch(std::vector<uint32_t> Units, uint32_t ParentBlock = 128,
                      uint32_t ChildBlock = 32) {
  NestedBatch B;
  B.NumParentThreads = Units.size();
  B.ParentBlockDim = ParentBlock;
  B.ChildBlockDim = ChildBlock;
  B.ChildUnits = std::move(Units);
  return B;
}

TEST(LaunchPlanTest, CdpLaunchesPerNonEmptyParent) {
  NestedBatch B = makeBatch({0, 5, 100, 0, 33, 1});
  LaunchPlan Plan = buildLaunchPlan(B, ExecConfig::cdp());
  EXPECT_EQ(Plan.DeviceLaunches, 4u);
  EXPECT_EQ(Plan.HostLaunches, 0u);
  // ceil(5/32)+ceil(100/32)+ceil(33/32)+ceil(1/32) = 1+4+2+1
  EXPECT_EQ(Plan.TotalOrigBlocks, 8u);
  EXPECT_EQ(Plan.TotalCoarsenedBlocks, 8u);
  EXPECT_EQ(Plan.ParticipantCount, 4u);
}

TEST(LaunchPlanTest, NoCdpSerializesEverything) {
  NestedBatch B = makeBatch({0, 5, 100, 33});
  LaunchPlan Plan = buildLaunchPlan(B, ExecConfig::noCdp());
  EXPECT_EQ(Plan.DeviceLaunches, 0u);
  EXPECT_EQ(Plan.Grids.size(), 0u);
  EXPECT_EQ(Plan.SerializedUnits[1], 5u);
  EXPECT_EQ(Plan.SerializedUnits[2], 100u);
  EXPECT_EQ(Plan.SerializedUnits[3], 33u);
}

TEST(LaunchPlanTest, ThresholdSplitsSerialAndLaunch) {
  NestedBatch B = makeBatch({0, 5, 100, 33, 64, 63});
  ExecConfig C;
  C.Threshold = 64;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  // 100 and 64 launch; 5, 33, 63 serialize; 0 does nothing.
  EXPECT_EQ(Plan.DeviceLaunches, 2u);
  EXPECT_EQ(Plan.SerializedUnits[1], 5u);
  EXPECT_EQ(Plan.SerializedUnits[3], 33u);
  EXPECT_EQ(Plan.SerializedUnits[5], 63u);
  EXPECT_EQ(Plan.SerializedUnits[2], 0u);
  EXPECT_TRUE(Plan.Participates[2]);
  EXPECT_TRUE(Plan.Participates[4]);
  EXPECT_FALSE(Plan.Participates[5]);
}

TEST(LaunchPlanTest, CoarseningDividesBlocks) {
  NestedBatch B = makeBatch({320, 320, 64});
  ExecConfig C;
  C.CoarsenFactor = 4;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  // 320/32=10 blocks -> 3 coarsened; 64/32=2 -> 1.
  EXPECT_EQ(Plan.TotalOrigBlocks, 22u);
  EXPECT_EQ(Plan.TotalCoarsenedBlocks, 7u);
  EXPECT_EQ(Plan.DeviceLaunches, 3u); // launches unchanged
}

TEST(LaunchPlanTest, WarpGranularityGroups) {
  // 64 parent threads, all launching: 2 warps -> 2 aggregated grids.
  std::vector<uint32_t> Units(64, 40);
  NestedBatch B = makeBatch(Units);
  ExecConfig C;
  C.Agg = AggGranularity::Warp;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  EXPECT_EQ(Plan.DeviceLaunches, 2u);
  ASSERT_EQ(Plan.Grids.size(), 2u);
  EXPECT_EQ(Plan.Grids[0].Participants, 32u);
  // Each parent contributes ceil(40/32)=2 blocks; 32 parents per warp.
  EXPECT_EQ(Plan.Grids[0].OrigBlocks, 64u);
}

TEST(LaunchPlanTest, BlockGranularityGroups) {
  std::vector<uint32_t> Units(300, 33);
  NestedBatch B = makeBatch(Units, /*ParentBlock=*/128);
  ExecConfig C;
  C.Agg = AggGranularity::Block;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  // 300 threads in blocks of 128 -> 3 parent blocks -> 3 grids.
  EXPECT_EQ(Plan.DeviceLaunches, 3u);
  EXPECT_EQ(Plan.MaxGroupParticipants, 128u);
}

TEST(LaunchPlanTest, MultiBlockGranularityGroups) {
  std::vector<uint32_t> Units(128 * 20, 40); // 20 parent blocks
  NestedBatch B = makeBatch(Units, /*ParentBlock=*/128);
  ExecConfig C;
  C.Agg = AggGranularity::MultiBlock;
  C.AggGroupBlocks = 8;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  // ceil(20/8) = 3 groups.
  EXPECT_EQ(Plan.DeviceLaunches, 3u);
  EXPECT_EQ(Plan.MaxGroupParticipants, 8u * 128u);
}

TEST(LaunchPlanTest, GridGranularitySingleHostLaunch) {
  std::vector<uint32_t> Units(1000, 50);
  NestedBatch B = makeBatch(Units);
  ExecConfig C;
  C.Agg = AggGranularity::Grid;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  EXPECT_EQ(Plan.DeviceLaunches, 0u);
  EXPECT_EQ(Plan.HostLaunches, 1u);
  ASSERT_EQ(Plan.Grids.size(), 1u);
  EXPECT_TRUE(Plan.Grids[0].FromHost);
  EXPECT_EQ(Plan.Grids[0].Participants, 1000u);
  EXPECT_EQ(Plan.Grids[0].OrigBlocks, 1000u * 2); // ceil(50/32)=2
}

TEST(LaunchPlanTest, EmptyGroupsLaunchNothing) {
  // Only one parent thread launches: a single group forms.
  std::vector<uint32_t> Units(1024, 0);
  Units[700] = 90;
  NestedBatch B = makeBatch(Units, 128);
  for (AggGranularity G : {AggGranularity::Warp, AggGranularity::Block,
                           AggGranularity::MultiBlock, AggGranularity::Grid}) {
    ExecConfig C;
    C.Agg = G;
    LaunchPlan Plan = buildLaunchPlan(B, C);
    EXPECT_EQ(Plan.Grids.size(), 1u) << aggGranularityName(G);
    EXPECT_EQ(Plan.Grids[0].OrigBlocks, 3u) << aggGranularityName(G);
  }
}

TEST(LaunchPlanTest, AggregationThresholdBypass) {
  // Two parent blocks: one with a single participant (below threshold 4),
  // one with 10 (above).
  std::vector<uint32_t> Units(256, 0);
  Units[3] = 100;
  for (int I = 0; I < 10; ++I)
    Units[128 + I * 3] = 50;
  NestedBatch B = makeBatch(Units, /*ParentBlock=*/128);
  ExecConfig C;
  C.Agg = AggGranularity::Block;
  C.AggThresholdEnabled = true;
  C.AggThreshold = 4;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  EXPECT_EQ(Plan.AggThresholdBypasses, 1u);
  // Block 0 bypasses (1 direct launch); block 1 aggregates (1 grid).
  EXPECT_EQ(Plan.DeviceLaunches, 2u);
}

TEST(LaunchPlanTest, ThresholdPlusAggregation) {
  std::vector<uint32_t> Units = {5, 100, 7, 200, 3, 150};
  NestedBatch B = makeBatch(Units, 128);
  ExecConfig C;
  C.Threshold = 64;
  C.Agg = AggGranularity::Block;
  LaunchPlan Plan = buildLaunchPlan(B, C);
  // Three launch, three serialize; all in one parent block -> one grid.
  EXPECT_EQ(Plan.DeviceLaunches, 1u);
  EXPECT_EQ(Plan.ParticipantCount, 3u);
  EXPECT_EQ(Plan.Grids[0].Participants, 3u);
  EXPECT_EQ(Plan.SerializedUnits[0], 5u);
  EXPECT_EQ(Plan.SerializedUnits[2], 7u);
  EXPECT_EQ(Plan.SerializedUnits[4], 3u);
}

TEST(LaunchPlanTest, TotalsAreConservedUnderAnyConfig) {
  // Property: serialized units + launched units cover every unit exactly
  // once, for random workloads and configurations.
  std::mt19937 Rng(7);
  std::uniform_int_distribution<int> UnitDist(0, 300);
  for (int Trial = 0; Trial < 30; ++Trial) {
    std::vector<uint32_t> Units(500);
    for (auto &U : Units)
      U = UnitDist(Rng) < 60 ? UnitDist(Rng) : 0;
    NestedBatch B = makeBatch(Units, 128, 64);

    ExecConfig C;
    switch (Trial % 5) {
    case 0: C.Agg = AggGranularity::None; break;
    case 1: C.Agg = AggGranularity::Warp; break;
    case 2: C.Agg = AggGranularity::Block; break;
    case 3: C.Agg = AggGranularity::MultiBlock; break;
    case 4: C.Agg = AggGranularity::Grid; break;
    }
    if (Trial % 2)
      C.Threshold = 50;
    C.CoarsenFactor = 1 + Trial % 4;

    LaunchPlan Plan = buildLaunchPlan(B, C);
    uint64_t Serialized = std::accumulate(Plan.SerializedUnits.begin(),
                                          Plan.SerializedUnits.end(), 0ull);
    uint64_t LaunchedBlocks = 0;
    for (const PlannedGrid &G : Plan.Grids)
      LaunchedBlocks += G.OrigBlocks;
    EXPECT_EQ(LaunchedBlocks, Plan.TotalOrigBlocks) << "trial " << Trial;

    // Every launching thread's units are covered by its ceil(n/b) blocks.
    uint64_t ExpectedBlocks = 0;
    uint64_t ExpectedSerial = 0;
    for (size_t I = 0; I < Units.size(); ++I) {
      if (Units[I] == 0)
        continue;
      bool Serial = C.Threshold && Units[I] < *C.Threshold;
      if (Serial)
        ExpectedSerial += Units[I];
      else
        ExpectedBlocks += (Units[I] + 63) / 64;
    }
    EXPECT_EQ(Serialized, ExpectedSerial) << "trial " << Trial;
    EXPECT_EQ(Plan.TotalOrigBlocks, ExpectedBlocks) << "trial " << Trial;

    // Coarsening never increases blocks and respects the factor bound.
    EXPECT_LE(Plan.TotalCoarsenedBlocks, Plan.TotalOrigBlocks);
    EXPECT_GE(Plan.TotalCoarsenedBlocks * C.CoarsenFactor,
              Plan.TotalOrigBlocks);
  }
}

TEST(LaunchPlanTest, GranularityOrderingOfLaunchCounts) {
  // warp >= block >= multi-block >= grid launches, for a dense workload.
  std::vector<uint32_t> Units(128 * 64, 64); // 64 parent blocks, all launch
  NestedBatch B = makeBatch(Units, 128);
  auto CountFor = [&](AggGranularity G) {
    ExecConfig C;
    C.Agg = G;
    C.AggGroupBlocks = 8;
    LaunchPlan Plan = buildLaunchPlan(B, C);
    return Plan.DeviceLaunches + Plan.HostLaunches;
  };
  uint64_t None = CountFor(AggGranularity::None);
  uint64_t Warp = CountFor(AggGranularity::Warp);
  uint64_t Block = CountFor(AggGranularity::Block);
  uint64_t Multi = CountFor(AggGranularity::MultiBlock);
  uint64_t Grid = CountFor(AggGranularity::Grid);
  EXPECT_GT(None, Warp);
  EXPECT_GT(Warp, Block);
  EXPECT_GT(Block, Multi);
  EXPECT_GT(Multi, Grid);
  EXPECT_EQ(Grid, 1u);
}

} // namespace
