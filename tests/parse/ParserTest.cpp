//===--- ParserTest.cpp - Unit tests for the parser --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "ast/ASTPrinter.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  DiagnosticEngine Diags;

  TranslationUnit *parse(std::string_view Source) {
    TranslationUnit *TU = parseSource(Source, Ctx, Diags);
    EXPECT_NE(TU, nullptr) << Diags.str();
    return TU;
  }

  Expr *expr(std::string_view Source) {
    Expr *E = parseExprSource(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return E;
  }
};

TEST_F(ParserTest, EmptyTranslationUnit) {
  TranslationUnit *TU = parse("");
  EXPECT_TRUE(TU->decls().empty());
}

TEST_F(ParserTest, GlobalVariable) {
  TranslationUnit *TU = parse("int counter = 5;");
  ASSERT_EQ(TU->decls().size(), 1u);
  auto *Var = dyn_cast<VarDecl>(TU->decls()[0]);
  ASSERT_NE(Var, nullptr);
  EXPECT_EQ(Var->name(), "counter");
  ASSERT_NE(Var->init(), nullptr);
  EXPECT_EQ(cast<IntegerLiteral>(Var->init())->value(), 5u);
}

TEST_F(ParserTest, SimpleKernel) {
  TranslationUnit *TU = parse(R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) data[i] += 1;
}
)");
  auto Kernels = TU->kernels();
  ASSERT_EQ(Kernels.size(), 1u);
  FunctionDecl *F = Kernels[0];
  EXPECT_EQ(F->name(), "child");
  EXPECT_TRUE(F->qualifiers().Global);
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[0]->name(), "data");
  EXPECT_EQ(F->params()[0]->type().pointerDepth(), 1u);
  EXPECT_EQ(F->params()[1]->name(), "n");
  ASSERT_NE(F->body(), nullptr);
  EXPECT_EQ(F->body()->body().size(), 2u);
}

TEST_F(ParserTest, DeviceFunction) {
  TranslationUnit *TU = parse("__device__ int square(int x) { return x * x; }");
  auto *F = TU->findFunction("square");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->qualifiers().Device);
  EXPECT_FALSE(F->qualifiers().Global);
}

TEST_F(ParserTest, Prototype) {
  TranslationUnit *TU = parse("__global__ void child(int *data, int n);");
  auto *F = TU->findFunction("child");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->isDefinition());
}

TEST_F(ParserTest, PreprocessorPassThrough) {
  TranslationUnit *TU = parse("#include <cstdio>\nint x;");
  ASSERT_EQ(TU->decls().size(), 2u);
  auto *Raw = dyn_cast<RawDecl>(TU->decls()[0]);
  ASSERT_NE(Raw, nullptr);
  EXPECT_EQ(Raw->text(), "#include <cstdio>");
}

TEST_F(ParserTest, LaunchStatement) {
  TranslationUnit *TU = parse(R"(
__global__ void child(int *d) { d[threadIdx.x] = 1; }
__global__ void parent(int *d, int n) {
  child<<<(n + 255) / 256, 256>>>(d);
}
)");
  auto *Parent = TU->findFunction("parent");
  ASSERT_NE(Parent, nullptr);
  ASSERT_EQ(Parent->body()->body().size(), 1u);
  auto *L = dyn_cast<LaunchExpr>(Parent->body()->body()[0]);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->kernel(), "child");
  EXPECT_EQ(L->args().size(), 1u);
  EXPECT_EQ(L->sharedMem(), nullptr);
  EXPECT_EQ(L->stream(), nullptr);
}

TEST_F(ParserTest, LaunchWithSmemAndStream) {
  TranslationUnit *TU = parse(R"(
__global__ void child(int *d) { d[0] = 1; }
__global__ void parent(int *d) {
  child<<<1, 32, 128, 0>>>(d);
}
)");
  auto *Parent = TU->findFunction("parent");
  auto *L = dyn_cast<LaunchExpr>(Parent->body()->body()[0]);
  ASSERT_NE(L, nullptr);
  ASSERT_NE(L->sharedMem(), nullptr);
  ASSERT_NE(L->stream(), nullptr);
}

TEST_F(ParserTest, Dim3Constructor) {
  TranslationUnit *TU = parse(R"(
__global__ void parent(int n) {
  dim3 grid((n + 31) / 32, 1, 1);
  dim3 block = dim3(32, 1, 1);
}
)");
  auto *Parent = TU->findFunction("parent");
  auto *DS = dyn_cast<DeclStmt>(Parent->body()->body()[0]);
  ASSERT_NE(DS, nullptr);
  VarDecl *Grid = DS->singleDecl();
  ASSERT_NE(Grid, nullptr);
  EXPECT_TRUE(Grid->type().isDim3());
  ASSERT_NE(Grid->init(), nullptr);
  auto *Call = dyn_cast<CallExpr>(Grid->init());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->calleeName(), "dim3");
  EXPECT_EQ(Call->args().size(), 3u);
}

TEST_F(ParserTest, SharedMemoryDecl) {
  TranslationUnit *TU = parse(R"(
__global__ void k() {
  __shared__ int buffer[256];
  buffer[threadIdx.x] = 0;
}
)");
  auto *K = TU->findFunction("k");
  auto *DS = dyn_cast<DeclStmt>(K->body()->body()[0]);
  ASSERT_NE(DS, nullptr);
  VarDecl *Buf = DS->singleDecl();
  ASSERT_NE(Buf, nullptr);
  EXPECT_TRUE(Buf->isShared());
  ASSERT_EQ(Buf->arrayDims().size(), 1u);
  EXPECT_EQ(cast<IntegerLiteral>(Buf->arrayDims()[0])->value(), 256u);
}

TEST_F(ParserTest, ForLoop) {
  TranslationUnit *TU = parse(R"(
__device__ int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; ++i) s += a[i];
  return s;
}
)");
  auto *F = TU->findFunction("sum");
  auto *For = dyn_cast<ForStmt>(F->body()->body()[1]);
  ASSERT_NE(For, nullptr);
  EXPECT_NE(For->init(), nullptr);
  EXPECT_NE(For->cond(), nullptr);
  EXPECT_NE(For->inc(), nullptr);
}

TEST_F(ParserTest, WhileAndDoLoops) {
  TranslationUnit *TU = parse(R"(
__device__ void spin(int n) {
  while (n > 0) n--;
  do { n++; } while (n < 10);
}
)");
  auto *F = TU->findFunction("spin");
  EXPECT_TRUE(isa<WhileStmt>(F->body()->body()[0]));
  EXPECT_TRUE(isa<DoStmt>(F->body()->body()[1]));
}

TEST_F(ParserTest, MultiDeclarator) {
  TranslationUnit *TU = parse("__device__ void f() { int a = 1, b = 2, c; }");
  auto *F = TU->findFunction("f");
  auto *DS = dyn_cast<DeclStmt>(F->body()->body()[0]);
  ASSERT_NE(DS, nullptr);
  ASSERT_EQ(DS->decls().size(), 3u);
  EXPECT_EQ(DS->decls()[0]->name(), "a");
  EXPECT_EQ(DS->decls()[2]->name(), "c");
  EXPECT_EQ(DS->decls()[2]->init(), nullptr);
}

TEST_F(ParserTest, PointerDeclarators) {
  TranslationUnit *TU = parse("__device__ void f(int *p, int **pp) {}");
  auto *F = TU->findFunction("f");
  EXPECT_EQ(F->params()[0]->type().pointerDepth(), 1u);
  EXPECT_EQ(F->params()[1]->type().pointerDepth(), 2u);
}

// Expression-level tests.

TEST_F(ParserTest, PrecedenceMulOverAdd) {
  Expr *E = expr("a + b * c");
  auto *Add = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOpKind::Add);
  auto *Mul = dyn_cast<BinaryOperator>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOpKind::Mul);
}

TEST_F(ParserTest, LeftAssociativity) {
  Expr *E = expr("a - b - c");
  auto *Outer = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Outer, nullptr);
  auto *Inner = dyn_cast<BinaryOperator>(Outer->lhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(cast<DeclRefExpr>(Inner->lhs())->name(), "a");
  EXPECT_EQ(cast<DeclRefExpr>(Outer->rhs())->name(), "c");
}

TEST_F(ParserTest, AssignmentRightAssociative) {
  Expr *E = expr("a = b = c");
  auto *Outer = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->op(), BinaryOpKind::Assign);
  auto *Inner = dyn_cast<BinaryOperator>(Outer->rhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->op(), BinaryOpKind::Assign);
}

TEST_F(ParserTest, TernaryExpression) {
  Expr *E = expr("a ? b : c ? d : e");
  auto *Outer = dyn_cast<ConditionalOperator>(E);
  ASSERT_NE(Outer, nullptr);
  // Right-associative: `a ? b : (c ? d : e)`.
  EXPECT_TRUE(isa<ConditionalOperator>(Outer->falseExpr()));
}

TEST_F(ParserTest, CeilingDivisionPatternA) {
  Expr *E = expr("(N - 1) / b + 1");
  auto *Add = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOpKind::Add);
  auto *Div = dyn_cast<BinaryOperator>(Add->lhs());
  ASSERT_NE(Div, nullptr);
  EXPECT_EQ(Div->op(), BinaryOpKind::Div);
}

TEST_F(ParserTest, CastExpression) {
  Expr *E = expr("(float)n / b");
  auto *Div = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Div, nullptr);
  auto *Cast = dyn_cast<CastExpr>(Div->lhs());
  ASSERT_NE(Cast, nullptr);
  EXPECT_EQ(Cast->type().kind(), BuiltinKind::Float);
}

TEST_F(ParserTest, CastOfPointer) {
  Expr *E = expr("(int *)p");
  auto *Cast = dyn_cast<CastExpr>(E);
  ASSERT_NE(Cast, nullptr);
  EXPECT_EQ(Cast->type().pointerDepth(), 1u);
}

TEST_F(ParserTest, UnaryOperators) {
  Expr *E = expr("-x + !y + ~z + *p + &q");
  EXPECT_NE(E, nullptr);
  Expr *Neg = expr("- -x");
  auto *U = dyn_cast<UnaryOperator>(Neg);
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(isa<UnaryOperator>(U->operand()));
}

TEST_F(ParserTest, PostfixOperators) {
  Expr *E = expr("a[i]++");
  auto *U = dyn_cast<UnaryOperator>(E);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->op(), UnaryOpKind::PostInc);
  EXPECT_TRUE(isa<ArraySubscriptExpr>(U->operand()));
}

TEST_F(ParserTest, MemberChain) {
  Expr *E = expr("blockIdx.x");
  auto *M = dyn_cast<MemberExpr>(E);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->member(), "x");
  EXPECT_EQ(cast<DeclRefExpr>(M->base())->name(), "blockIdx");
  // Built-in index variables type as unsigned.
  EXPECT_EQ(M->type().kind(), BuiltinKind::UInt);
}

TEST_F(ParserTest, CallWithArgs) {
  Expr *E = expr("min(a, b)");
  auto *Call = dyn_cast<CallExpr>(E);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->calleeName(), "min");
  EXPECT_EQ(Call->args().size(), 2u);
}

TEST_F(ParserTest, CommaOperator) {
  Expr *E = expr("a = 1, b = 2");
  auto *Comma = dyn_cast<BinaryOperator>(E);
  ASSERT_NE(Comma, nullptr);
  EXPECT_EQ(Comma->op(), BinaryOpKind::Comma);
}

TEST_F(ParserTest, SizeofType) {
  Expr *E = expr("sizeof(unsigned int)");
  auto *S = dyn_cast<SizeofExpr>(E);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->queriedType().kind(), BuiltinKind::UInt);
}

// Type propagation tests (the bytecode compiler depends on these).

TEST_F(ParserTest, TypeOfFloatArith) {
  Expr *E = expr("1.0f + 2");
  EXPECT_EQ(E->type().kind(), BuiltinKind::Float);
}

TEST_F(ParserTest, TypeOfDoubleArith) {
  Expr *E = expr("1.0 + 2.0f");
  EXPECT_EQ(E->type().kind(), BuiltinKind::Double);
}

TEST_F(ParserTest, TypeOfComparison) {
  Expr *E = expr("1.5 < 2.5");
  EXPECT_EQ(E->type().kind(), BuiltinKind::Int);
}

TEST_F(ParserTest, TypeOfCeilCall) {
  Expr *E = expr("ceil((float)n / b)");
  EXPECT_EQ(E->type().kind(), BuiltinKind::Double);
}

TEST_F(ParserTest, ParamTypesVisibleInBody) {
  TranslationUnit *TU = parse(R"(
__global__ void k(float *data, int n) {
  data[n] = data[n] * 2.0f;
}
)");
  auto *K = TU->findFunction("k");
  // The assignment statement's LHS subscript has type float.
  auto *Assign = dyn_cast<BinaryOperator>(K->body()->body()[0]);
  ASSERT_NE(Assign, nullptr);
  EXPECT_EQ(Assign->lhs()->type().kind(), BuiltinKind::Float);
}

// Error handling.

TEST_F(ParserTest, MissingSemicolonIsError) {
  DiagnosticEngine LocalDiags;
  ASTContext LocalCtx;
  EXPECT_EQ(parseSource("__device__ void f() { int a = 1 }", LocalCtx,
                        LocalDiags),
            nullptr);
  EXPECT_TRUE(LocalDiags.hasErrors());
}

TEST_F(ParserTest, UnclosedBraceIsError) {
  DiagnosticEngine LocalDiags;
  ASTContext LocalCtx;
  EXPECT_EQ(parseSource("__device__ void f() { if (x) {", LocalCtx,
                        LocalDiags),
            nullptr);
  EXPECT_TRUE(LocalDiags.hasErrors());
}

TEST_F(ParserTest, LaunchMissingConfigIsError) {
  DiagnosticEngine LocalDiags;
  ASTContext LocalCtx;
  EXPECT_EQ(parseSource("__global__ void p() { child<<<1>>>(); }", LocalCtx,
                        LocalDiags),
            nullptr);
  EXPECT_TRUE(LocalDiags.hasErrors());
}

} // namespace
