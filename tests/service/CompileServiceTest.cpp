//===--- CompileServiceTest.cpp - Session-layer and artifact-cache tests -------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation-as-a-service contract (src/service/):
///  - content-addressed keys: stable, spelling-insensitive, sensitive to
///    source/pipeline/knob/format changes;
///  - hit paths: in-memory on repeat requests, on-disk across service
///    instances, bit-identical artifacts either way;
///  - robustness: truncated / bit-flipped / wrong-version artifacts fall
///    back to a clean recompile with a diagnostic and never crash;
///    eviction respects the size bound;
///  - concurrency: same-key requests single-flight, batch drains return
///    deterministic results at every worker count;
///  - tune caching and tuned-table warm starts.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "tuner/TunedTable.h"
#include "transform/Pipeline.h"
#include "vm/BytecodeIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

namespace fs = std::filesystem;
using namespace dpo;

namespace {

const char *NestedSource =
    "__global__ void child(int *out, int base, int count) {\n"
    "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
    "  if (i < count) {\n"
    "    out[base + i] = base * 7 + i * 3 + count;\n"
    "  }\n"
    "}\n"
    "__global__ void parent(int *out, int *counts, int *offsets, int numV) "
    "{\n"
    "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
    "  if (v < numV) {\n"
    "    int count = counts[v];\n"
    "    if (count > 0) {\n"
    "      child<<<(count + 31) / 32, 32>>>(out, offsets[v], count);\n"
    "    }\n"
    "  }\n"
    "}\n";

/// Fresh per-test scratch directory, removed on teardown.
class CompileServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Scratch = fs::temp_directory_path() /
              (std::string("dpo_service_") + Info->name());
    fs::remove_all(Scratch);
    fs::create_directories(Scratch);
  }
  void TearDown() override { fs::remove_all(Scratch); }

  std::string cacheDir() const { return (Scratch / "cache").string(); }
  ServiceConfig diskConfig(uint64_t MaxBytes = 256ull << 20) const {
    ServiceConfig C;
    C.CacheDir = cacheDir();
    C.CacheMaxBytes = MaxBytes;
    return C;
  }

  CompileRequest request(const std::string &Pipeline = "threshold[256]",
                         bool WantBytecode = false) const {
    CompileRequest R;
    R.Name = "nested.cu";
    R.Source = NestedSource;
    R.Pipeline = Pipeline;
    R.WantBytecode = WantBytecode;
    if (WantBytecode)
      R.Knobs = literalKnobConfig();
    return R;
  }

  fs::path Scratch;
};

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST_F(CompileServiceTest, CacheKeysAreStableAndContentSensitive) {
  std::string Error;
  CompileRequest R = request();
  std::string K1 = CompileService::cacheKeyFor(R, Error);
  ASSERT_FALSE(K1.empty()) << Error;
  EXPECT_EQ(K1, CompileService::cacheKeyFor(R, Error));

  // The name is a label, not content.
  CompileRequest Renamed = R;
  Renamed.Name = "other.cu";
  EXPECT_EQ(K1, CompileService::cacheKeyFor(Renamed, Error));

  // Source, pipeline, bytecode demand, and peephole flag are content.
  CompileRequest Edited = R;
  Edited.Source += "\n";
  EXPECT_NE(K1, CompileService::cacheKeyFor(Edited, Error));
  CompileRequest OtherPipe = R;
  OtherPipe.Pipeline = "threshold[128]";
  EXPECT_NE(K1, CompileService::cacheKeyFor(OtherPipe, Error));
  CompileRequest WithCode = request("threshold[256:literal]", true);
  CompileRequest NoOpt = WithCode;
  NoOpt.OptimizeBytecode = false;
  EXPECT_NE(CompileService::cacheKeyFor(WithCode, Error),
            CompileService::cacheKeyFor(NoOpt, Error));

  // Equivalent pipeline spellings alias (the key hashes the canonical
  // re-render, not the user's text).
  CompileRequest Canonical = R;
  std::string Rendered;
  PassPipelineConfig Defaults;
  ASSERT_TRUE(canonicalPipelineText(R.Pipeline, Defaults, Rendered, Error));
  Canonical.Pipeline = Rendered;
  EXPECT_EQ(K1, CompileService::cacheKeyFor(Canonical, Error));

  // Invalid pipelines produce no key and a diagnostic.
  CompileRequest Bad = R;
  Bad.Pipeline = "nonsense[1]";
  EXPECT_TRUE(CompileService::cacheKeyFor(Bad, Error).empty());
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Hit paths
//===----------------------------------------------------------------------===//

TEST_F(CompileServiceTest, RepeatRequestHitsMemory) {
  CompileService Service;
  CompileResponse First = Service.compile(request());
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.Outcome, CacheOutcome::Miss);
  EXPECT_NE(First.TransformedSource.find("_THRESHOLD"), std::string::npos);

  CompileResponse Second = Service.compile(request());
  ASSERT_TRUE(Second.Ok);
  EXPECT_EQ(Second.Outcome, CacheOutcome::MemoryHit);
  EXPECT_EQ(First.TransformedSource, Second.TransformedSource);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Requests, 2u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);
}

TEST_F(CompileServiceTest, DiskArtifactsWarmANewServiceInstance) {
  CompileRequest Req = request("threshold[256:literal],coarsen[4:literal]",
                               /*WantBytecode=*/true);
  std::string ColdImage;
  {
    CompileService Cold(diskConfig());
    CompileResponse R = Cold.compile(Req);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Outcome, CacheOutcome::Miss);
    ASSERT_NE(R.Program, nullptr);
    ColdImage = serializeVmProgram(*R.Program);
    EXPECT_EQ(Cold.stats().DiskStores, 1u);
  }
  CompileService Warm(diskConfig());
  CompileResponse R = Warm.compile(Req);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outcome, CacheOutcome::DiskHit);
  ASSERT_NE(R.Program, nullptr);
  // The cached artifact is bit-identical to the in-memory compilation.
  EXPECT_EQ(ColdImage, serializeVmProgram(*R.Program));
  EXPECT_EQ(Warm.stats().DiskHits, 1u);
  EXPECT_EQ(Warm.stats().Misses, 0u);
}

//===----------------------------------------------------------------------===//
// Robustness: corrupt artifacts degrade to clean recompiles
//===----------------------------------------------------------------------===//

class CorruptionTest : public CompileServiceTest {
protected:
  /// Seeds the disk cache with one artifact and returns its path.
  fs::path seedArtifact(const CompileRequest &Req) {
    CompileService Service(diskConfig());
    CompileResponse R = Service.compile(Req);
    EXPECT_TRUE(R.Ok) << R.Error;
    fs::path File = fs::path(cacheDir()) / (R.Key + ".dpoart");
    EXPECT_TRUE(fs::exists(File));
    return File;
  }

  /// A fresh service over the (tampered) cache dir must recompile
  /// cleanly: correct output, Miss outcome, corruption counted, and the
  /// bad blob replaced by a fresh valid one.
  void expectCleanRecovery(const CompileRequest &Req) {
    CompileService Service(diskConfig());
    CompileResponse R = Service.compile(Req);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Outcome, CacheOutcome::Miss);
    EXPECT_NE(R.TransformedSource.find("child"), std::string::npos);
    EXPECT_EQ(Service.stats().CorruptArtifacts, 1u);

    // And the rewritten artifact is valid again.
    CompileService After(diskConfig());
    CompileResponse Reload = After.compile(Req);
    ASSERT_TRUE(Reload.Ok);
    EXPECT_EQ(Reload.Outcome, CacheOutcome::DiskHit);
    EXPECT_EQ(R.TransformedSource, Reload.TransformedSource);
  }
};

TEST_F(CorruptionTest, TruncatedArtifactRecompiles) {
  CompileRequest Req = request("threshold[128:literal]", true);
  fs::path File = seedArtifact(Req);
  auto Size = fs::file_size(File);
  ASSERT_GT(Size, 16u);
  fs::resize_file(File, Size / 2);
  expectCleanRecovery(Req);
}

TEST_F(CorruptionTest, BitFlippedArtifactRecompiles) {
  CompileRequest Req = request("threshold[128:literal]", true);
  fs::path File = seedArtifact(Req);
  std::fstream F(File, std::ios::in | std::ios::out | std::ios::binary);
  F.seekg(0, std::ios::end);
  auto Size = (uint64_t)F.tellg();
  F.seekp((std::streamoff)(Size / 2));
  char Byte = 0;
  F.seekg((std::streamoff)(Size / 2));
  F.read(&Byte, 1);
  Byte ^= 0x20;
  F.seekp((std::streamoff)(Size / 2));
  F.write(&Byte, 1);
  F.close();
  expectCleanRecovery(Req);
}

TEST_F(CorruptionTest, WrongContainerVersionRecompiles) {
  CompileRequest Req = request("threshold[128:literal]", true);
  fs::path File = seedArtifact(Req);
  // Rewrite the artifact as a (checksum-valid) blob of a future container
  // version: the version gate itself must reject it.
  std::string Blob = "DPOA";
  uint32_t Version = ArtifactFormatVersion + 7;
  Blob.append((const char *)&Version, 4);
  Blob.append(32, '\0');
  uint64_t Sum = fnv1a64(Blob);
  Blob.append((const char *)&Sum, 8);
  std::ofstream(File, std::ios::binary | std::ios::trunc) << Blob;
  expectCleanRecovery(Req);
}

TEST_F(CompileServiceTest, EvictionRespectsTheSizeBound) {
  // A bound small enough that a handful of distinct artifacts overflow
  // it. Each artifact for this source is a few KiB.
  constexpr uint64_t Bound = 8 * 1024;
  CompileService Service(diskConfig(Bound));
  for (int I = 0; I < 8; ++I) {
    CompileRequest R = request("threshold[" + std::to_string(32 << I) + "]");
    CompileResponse Resp = Service.compile(R);
    ASSERT_TRUE(Resp.Ok) << Resp.Error;
  }
  ServiceStats S = Service.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.ResidentBytes, Bound);

  // The directory agrees with the counter.
  uint64_t OnDisk = 0;
  for (const auto &E : fs::directory_iterator(cacheDir()))
    OnDisk += fs::file_size(E.path());
  EXPECT_LE(OnDisk, Bound);
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST_F(CompileServiceTest, ConcurrentSameKeyRequestsSingleFlight) {
  CompileService Service(diskConfig());
  constexpr unsigned N = 8;
  std::vector<CompileResponse> Out(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back(
        [&, I]() { Out[I] = Service.compile(request()); });
  for (auto &T : Threads)
    T.join();

  for (unsigned I = 0; I < N; ++I) {
    ASSERT_TRUE(Out[I].Ok) << Out[I].Error;
    EXPECT_EQ(Out[I].TransformedSource, Out[0].TransformedSource);
  }
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Requests, N);
  // Exactly one request compiled; everyone else shared it.
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoryHits + S.DiskHits, N - 1);
  EXPECT_EQ(S.DiskStores, 1u);
}

TEST_F(CompileServiceTest, BatchResultsAreDeterministicAcrossWorkerCounts) {
  // A duplicate-heavy mix: 4 unique pipelines, 16 requests.
  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 16; ++I)
    Reqs.push_back(request("threshold[" + std::to_string(64 << (I % 4)) +
                           "]"));

  std::vector<std::string> Reference;
  for (unsigned Workers : {1u, 2u, 4u}) {
    ServiceConfig C = diskConfig();
    C.CacheDir = (Scratch / ("cache_w" + std::to_string(Workers))).string();
    C.Workers = Workers;
    CompileService Service(C);
    std::vector<CompileResponse> Out = Service.compileBatch(Reqs);
    ASSERT_EQ(Out.size(), Reqs.size());
    std::vector<std::string> Sources;
    for (const CompileResponse &R : Out) {
      ASSERT_TRUE(R.Ok) << R.Error;
      Sources.push_back(R.TransformedSource);
    }
    if (Reference.empty())
      Reference = Sources;
    else
      EXPECT_EQ(Reference, Sources) << "at " << Workers << " workers";
    ServiceStats S = Service.stats();
    EXPECT_EQ(S.Requests, 16u);
    EXPECT_EQ(S.Misses, 4u) << "at " << Workers << " workers";
    EXPECT_EQ(S.MemoryHits + S.DiskHits, 12u);
  }
}

//===----------------------------------------------------------------------===//
// Tune caching and warm starts
//===----------------------------------------------------------------------===//

TEST_F(CompileServiceTest, TuneResultsAreCachedInMemoryAndOnDisk) {
  TuneRequest Req;
  Req.WorkloadSpec = "canonical";
  Req.Mode = TuneMode::Analytic;

  EmpiricalTuneResult Cold;
  {
    CompileService Service(diskConfig());
    TuneResponse First = Service.tune(Req);
    ASSERT_TRUE(First.Ok) << First.Error;
    EXPECT_FALSE(First.CacheHit);
    Cold = First.Result;

    TuneResponse Second = Service.tune(Req);
    ASSERT_TRUE(Second.Ok);
    EXPECT_TRUE(Second.CacheHit);
    EXPECT_EQ(Cold.Pipeline, Second.Result.Pipeline);
    EXPECT_EQ(Cold.TimeUs, Second.Result.TimeUs);
    EXPECT_EQ(Service.stats().TuneCacheHits, 1u);
  }

  // A new instance over the same cache dir hits the disk copy, and the
  // decoded result is identical to the cold search — pipeline, cost,
  // and the re-derived ExecConfig.
  CompileService Warm(diskConfig());
  TuneResponse R = Warm.tune(Req);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.CacheHit);
  EXPECT_EQ(Cold.Pipeline, R.Result.Pipeline);
  EXPECT_EQ(Cold.TimeUs, R.Result.TimeUs);
  EXPECT_TRUE(Cold.Config == R.Result.Config);
}

TEST_F(CompileServiceTest, WarmStartSeedsFromCommittedTunedTables) {
  // Commit a tuned entry for the canonical workload, then ask for a
  // warm-started search: the table seed must be picked up (counter) and
  // the search must stay deterministic.
  fs::path Tables = Scratch / "tuned";
  fs::create_directories(Tables);
  TunedEntry Entry;
  Entry.Workload = "canonical";
  Entry.Mode = TuneMode::Empirical;
  Entry.Budget = 6;
  Entry.Seed = 3;
  Entry.Pipeline = "threshold[256],coarsen[8]";
  Entry.TimeUs = 1.0;
  Entry.VmEvaluations = 6;
  ASSERT_TRUE(writeTunedEntryFile(
      (Tables / tunedTableFileName("canonical")).string(), Entry));

  ServiceConfig C; // memory-only: the searches must actually run twice
  C.TunedTableDir = Tables.string();
  TuneRequest Req;
  Req.WorkloadSpec = "canonical";
  Req.Mode = TuneMode::Empirical;
  Req.Opts.Budget = 6;
  Req.Opts.Seed = 3;
  Req.Opts.SampleBatches = 2;
  Req.Opts.MaxSampleUnits = 4000;
  Req.WarmStart = true;

  CompileService A(C);
  TuneResponse First = A.tune(Req);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(A.stats().TuneWarmStarts, 1u);

  CompileService B(C);
  TuneResponse Second = B.tune(Req);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(First.Result.Pipeline, Second.Result.Pipeline);
  EXPECT_EQ(First.Result.TimeUs, Second.Result.TimeUs);
  EXPECT_EQ(First.Result.VmEvaluations, Second.Result.VmEvaluations);

  // Warm and cold searches are distinct cache keys: caching a seeded
  // search never masks an unseeded one.
  TuneRequest ColdReq = Req;
  ColdReq.WarmStart = false;
  EXPECT_NE(First.Key, B.tune(ColdReq).Key);
}

//===----------------------------------------------------------------------===//
// Request-file parsing
//===----------------------------------------------------------------------===//

TEST(ServeRequestTest, ParsesCompileAndTuneLines) {
  std::vector<ServeRequest> Reqs;
  std::string Error;
  ASSERT_TRUE(parseServeRequests(
      "# header comment\n"
      "\n"
      "compile src=a.cu passes=threshold[256] out=a.out.cu\n"
      "compile src=b.cu bytecode=1\n"
      "tune workload=bfs:road_ny mode=analytic budget=12 seed=7 warm=1 "
      "out=t.json\n",
      Reqs, Error))
      << Error;
  ASSERT_EQ(Reqs.size(), 3u);
  EXPECT_EQ(Reqs[0].Kind, ServeRequest::Compile);
  EXPECT_EQ(Reqs[0].SourcePath, "a.cu");
  EXPECT_EQ(Reqs[0].Pipeline, "threshold[256]");
  EXPECT_EQ(Reqs[0].OutputPath, "a.out.cu");
  EXPECT_FALSE(Reqs[0].WantBytecode);
  EXPECT_TRUE(Reqs[1].WantBytecode);
  EXPECT_EQ(Reqs[2].Kind, ServeRequest::Tune);
  EXPECT_EQ(Reqs[2].WorkloadSpec, "bfs:road_ny");
  EXPECT_EQ(Reqs[2].Mode, TuneMode::Analytic);
  EXPECT_EQ(Reqs[2].Budget, 12u);
  EXPECT_EQ(Reqs[2].Seed, 7u);
  EXPECT_TRUE(Reqs[2].WarmStart);
  EXPECT_EQ(Reqs[2].TuneReportPath, "t.json");
}

TEST(ServeRequestTest, RejectsMalformedLinesWithLineNumbers) {
  std::vector<ServeRequest> Reqs;
  std::string Error;
  EXPECT_FALSE(parseServeRequests("compile src=a.cu\nfrobnicate x=1\n", Reqs,
                                  Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;

  EXPECT_FALSE(parseServeRequests("compile passes=threshold[8]\n", Reqs,
                                  Error));
  EXPECT_NE(Error.find("src="), std::string::npos) << Error;

  EXPECT_FALSE(parseServeRequests("tune workload=canonical budget=zero\n",
                                  Reqs, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
}

} // namespace
