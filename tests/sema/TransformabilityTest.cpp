//===--- TransformabilityTest.cpp - Section III-C rule tests ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/Transformability.h"

#include "parse/Parser.h"
#include "sema/LaunchSites.h"
#include "sema/PurityAnalysis.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

class TransformabilityTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = nullptr;

  Transformability analyze(std::string_view Source,
                           const std::string &Kernel = "child") {
    TU = parseSource(Source, Ctx, Diags);
    EXPECT_NE(TU, nullptr) << Diags.str();
    if (!TU)
      return Transformability();
    FunctionDecl *F = TU->findFunction(Kernel);
    EXPECT_NE(F, nullptr);
    return analyzeSerializability(F, TU);
  }
};

TEST_F(TransformabilityTest, PlainKernelIsSerializable) {
  auto R = analyze(R"(
__global__ void child(int *d, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) d[i] += 1;
}
)");
  EXPECT_TRUE(R.Serializable);
  EXPECT_TRUE(R.Reasons.empty());
}

TEST_F(TransformabilityTest, SyncthreadsSerializableViaSegmentation) {
  // A structural top-level barrier survives serialization: the body splits
  // into barrier-free segments, each its own thread loop.
  auto R = analyze(R"(
__global__ void child(int *d) {
  d[threadIdx.x] = 1;
  __syncthreads();
  d[threadIdx.x] += d[0];
}
)");
  EXPECT_TRUE(R.Serializable) << (R.Reasons.empty() ? "" : R.Reasons[0]);
  EXPECT_TRUE(R.NeedsBarrierSegmentation);
  EXPECT_TRUE(R.Reasons.empty());
}

TEST_F(TransformabilityTest, SharedMemorySerializableViaSegmentation) {
  // Top-level __shared__ state becomes a block-scope local in the serial
  // form; with no barrier the single segment already preserves semantics.
  auto R = analyze(R"(
__global__ void child(int *d) {
  __shared__ int tile[128];
  tile[threadIdx.x] = d[threadIdx.x];
  d[threadIdx.x] = tile[127 - threadIdx.x];
}
)");
  EXPECT_TRUE(R.Serializable) << (R.Reasons.empty() ? "" : R.Reasons[0]);
  EXPECT_TRUE(R.NeedsBarrierSegmentation);
  EXPECT_TRUE(R.Reasons.empty());
}

TEST_F(TransformabilityTest, BarrierInUniformLoopIsSerializable) {
  // Tree reduction: the barrier sits in a for loop whose bounds are
  // block-uniform (literals + blockDim), so the loop hoists to block level.
  auto R = analyze(R"(
__global__ void child(int *out, int *in) {
  __shared__ int tile[128];
  unsigned int t = threadIdx.x;
  tile[t] = in[blockIdx.x * blockDim.x + t];
  __syncthreads();
  for (unsigned int s = 64; s > 0; s /= 2) {
    if (t < s) tile[t] += tile[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = tile[0];
}
)");
  EXPECT_TRUE(R.Serializable) << (R.Reasons.empty() ? "" : R.Reasons[0]);
  EXPECT_TRUE(R.NeedsBarrierSegmentation);
}

TEST_F(TransformabilityTest, BarrierUnderIfIsRejected) {
  auto R = analyze(R"(
__global__ void child(int *d) {
  if (threadIdx.x < 16) {
    d[threadIdx.x] = 1;
    __syncthreads();
  }
  d[threadIdx.x] += d[0];
}
)");
  EXPECT_FALSE(R.Serializable);
  ASSERT_GE(R.Reasons.size(), 1u);
  EXPECT_NE(R.Reasons[0].find("divergent"), std::string::npos);
}

TEST_F(TransformabilityTest, BarrierInWhileLoopIsRejected) {
  // Only counted `for` loops with uniform bounds hoist; a while loop's
  // trip count is not provably block-uniform.
  auto R = analyze(R"(
__global__ void child(int *d, int n) {
  int i = 0;
  while (i < n) {
    d[threadIdx.x] += 1;
    __syncthreads();
    i += 1;
  }
}
)");
  EXPECT_FALSE(R.Serializable);
}

TEST_F(TransformabilityTest, EarlyReturnWithBarrierIsRejected) {
  auto R = analyze(R"(
__global__ void child(int *d, int n) {
  if (threadIdx.x >= n) return;
  d[threadIdx.x] = 1;
  __syncthreads();
  d[threadIdx.x] += d[0];
}
)");
  EXPECT_FALSE(R.Serializable);
  ASSERT_GE(R.Reasons.size(), 1u);
  EXPECT_NE(R.Reasons[0].find("return"), std::string::npos);
}

TEST_F(TransformabilityTest, NonRematerializableCrossingLocalIsRejected) {
  // `v` is loaded from memory before the barrier and read after it; the
  // serializer cannot re-derive it in the second segment (the store may
  // have changed d[] in between).
  auto R = analyze(R"(
__global__ void child(int *d) {
  int v = d[threadIdx.x];
  __syncthreads();
  d[threadIdx.x] = v + d[0];
}
)");
  EXPECT_FALSE(R.Serializable);
  ASSERT_GE(R.Reasons.size(), 1u);
  EXPECT_NE(R.Reasons[0].find("rematerialized"), std::string::npos);
}

TEST_F(TransformabilityTest, RematerializableCrossingLocalIsAccepted) {
  // `i` is single-assignment and built purely from builtins, so the
  // serializer can re-declare it in the segment after the barrier.
  auto R = analyze(R"(
__global__ void child(int *d) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  d[i] = 1;
  __syncthreads();
  d[i] += d[0];
}
)");
  EXPECT_TRUE(R.Serializable) << (R.Reasons.empty() ? "" : R.Reasons[0]);
  EXPECT_TRUE(R.NeedsBarrierSegmentation);
}

TEST_F(TransformabilityTest, SharedDeclBelowBodyTopIsRejected) {
  auto R = analyze(R"(
__global__ void child(int *d, int n) {
  for (int i = 0; i < n; i += 1) {
    __shared__ int tile[32];
    tile[threadIdx.x % 32] = d[i];
    d[i] = tile[0];
  }
}
)");
  EXPECT_FALSE(R.Serializable);
}

TEST_F(TransformabilityTest, AtomicSpinWaitIsRejected) {
  // Inter-block synchronization through a global atomic flag: the loop
  // would never terminate once collapsed into a single serial thread.
  auto R = analyze(R"(
__global__ void child(int *flag, int *d) {
  if (threadIdx.x == 0) {
    while (atomicAdd(flag, 0) < 1) { d[0] = d[0]; }
  }
  d[threadIdx.x] = 1;
}
)");
  EXPECT_FALSE(R.Serializable);
  ASSERT_GE(R.Reasons.size(), 1u);
  EXPECT_NE(R.Reasons[0].find("spin-wait"), std::string::npos);
}

TEST_F(TransformabilityTest, WarpShuffleBlocksSerialization) {
  auto R = analyze(R"(
__global__ void child(int *d) {
  int v = d[threadIdx.x];
  v += __shfl_down_sync(0xffffffff, v, 16);
  d[threadIdx.x] = v;
}
)");
  EXPECT_FALSE(R.Serializable);
}

TEST_F(TransformabilityTest, BallotBlocksSerialization) {
  auto R = analyze(R"(
__global__ void child(int *d) {
  unsigned int mask = __ballot_sync(0xffffffff, d[threadIdx.x] > 0);
  d[threadIdx.x] = (int)mask;
}
)");
  EXPECT_FALSE(R.Serializable);
}

TEST_F(TransformabilityTest, TransitiveThroughDeviceFunction) {
  auto R = analyze(R"(
__device__ void helper(int *d) {
  __syncthreads();
  d[0] = 1;
}
__global__ void child(int *d) {
  helper(d);
}
)");
  EXPECT_FALSE(R.Serializable);
  ASSERT_EQ(R.Reasons.size(), 1u);
  EXPECT_NE(R.Reasons[0].find("helper"), std::string::npos);
}

TEST_F(TransformabilityTest, RecursiveDeviceFunctionTerminates) {
  auto R = analyze(R"(
__device__ int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}
__global__ void child(int *d, int n) {
  d[threadIdx.x] = fact(n);
}
)");
  EXPECT_TRUE(R.Serializable);
}

TEST_F(TransformabilityTest, ThreadfenceIsAllowed) {
  // __threadfence is a memory fence, not a barrier: serialization is fine.
  auto R = analyze(R"(
__global__ void child(int *d) {
  d[threadIdx.x] = 1;
  __threadfence();
}
)");
  EXPECT_TRUE(R.Serializable);
}

TEST_F(TransformabilityTest, AtomicsAreAllowed) {
  auto R = analyze(R"(
__global__ void child(int *d) {
  atomicAdd(d, 1);
}
)");
  EXPECT_TRUE(R.Serializable);
}

TEST(BarrierPrimitiveTest, Classification) {
  EXPECT_TRUE(isBarrierOrWarpPrimitive("__syncthreads"));
  EXPECT_TRUE(isBarrierOrWarpPrimitive("__syncwarp"));
  EXPECT_TRUE(isBarrierOrWarpPrimitive("__shfl_xor_sync"));
  EXPECT_TRUE(isBarrierOrWarpPrimitive("__ballot_sync"));
  EXPECT_TRUE(isBarrierOrWarpPrimitive("__reduce_add_sync"));
  EXPECT_FALSE(isBarrierOrWarpPrimitive("__threadfence"));
  EXPECT_FALSE(isBarrierOrWarpPrimitive("atomicAdd"));
  EXPECT_FALSE(isBarrierOrWarpPrimitive("memcpy"));
}

// Purity analysis.

class PurityTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  DiagnosticEngine Diags;

  Expr *expr(std::string_view Source) {
    Expr *E = parseExprSource(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return E;
  }
};

TEST_F(PurityTest, ArithmeticIsPure) {
  EXPECT_TRUE(isPureExpr(expr("(n + b - 1) / b")));
  EXPECT_TRUE(isPureExpr(expr("a * b + c[d]")));
}

TEST_F(PurityTest, PureCallsAllowed) {
  EXPECT_TRUE(isPureExpr(expr("min(a, b) + ceil((float)n / b)")));
}

TEST_F(PurityTest, AssignmentIsImpure) {
  EXPECT_FALSE(isPureExpr(expr("a = b")));
  EXPECT_FALSE(isPureExpr(expr("x + (a += 1)")));
}

TEST_F(PurityTest, IncrementIsImpure) {
  EXPECT_FALSE(isPureExpr(expr("n++")));
  EXPECT_FALSE(isPureExpr(expr("--n")));
}

TEST_F(PurityTest, UnknownCallIsImpure) {
  EXPECT_FALSE(isPureExpr(expr("computeSomething(a)")));
}

TEST_F(PurityTest, CountAssignments) {
  TranslationUnit *TU = parseSource(R"(
__device__ void f(int n) {
  int a = 1;
  a = 2;
  a += 3;
  a++;
  int b = a;
  n = b;
}
)",
                                    Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  FunctionDecl *F = TU->findFunction("f");
  EXPECT_EQ(countAssignments(F, "a"), 3u); // =, +=, ++ (initializer excluded)
  EXPECT_EQ(countAssignments(F, "b"), 0u);
  EXPECT_EQ(countAssignments(F, "n"), 1u);
}

// Launch-site discovery.

TEST(LaunchSitesTest, FindsNestedAndHostLaunches) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(R"(
__global__ void child(int *d) { d[0] = 1; }
__global__ void parent(int *d, int n) {
  if (n > 0)
    child<<<n, 32>>>(d);
}
void host(int *d) {
  parent<<<128, 256>>>(d, 7);
}
)",
                                    Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  auto Sites = findLaunchSites(TU);
  ASSERT_EQ(Sites.size(), 2u);

  EXPECT_EQ(Sites[0].Caller->name(), "parent");
  EXPECT_TRUE(Sites[0].FromKernel);
  EXPECT_TRUE(Sites[0].InStatementPosition);
  ASSERT_NE(Sites[0].Child, nullptr);
  EXPECT_EQ(Sites[0].Child->name(), "child");

  EXPECT_EQ(Sites[1].Caller->name(), "host");
  EXPECT_FALSE(Sites[1].FromKernel);
  ASSERT_NE(Sites[1].Child, nullptr);
  EXPECT_EQ(Sites[1].Child->name(), "parent");
}

TEST(LaunchSitesTest, UnresolvedChildIsNull) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(R"(
__global__ void parent(int *d, int n) {
  mystery<<<n, 32>>>(d);
}
)",
                                    Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  auto Sites = findLaunchSites(TU);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].Child, nullptr);
}

} // namespace
