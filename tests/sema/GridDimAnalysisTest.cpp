//===--- GridDimAnalysisTest.cpp - Fig. 4 pattern-matcher tests ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/GridDimAnalysis.h"

#include "ast/ASTPrinter.h"
#include "ast/Walk.h"
#include "parse/Parser.h"
#include "sema/LaunchSites.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

/// Wraps a grid-dimension expression in a parent kernel + launch and runs
/// the analysis on it. \p Prelude statements go before the launch.
struct AnalysisHarness {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = nullptr;
  FunctionDecl *Parent = nullptr;
  LaunchExpr *Launch = nullptr;

  GridDimInfo run(const std::string &GridExpr,
                  const std::string &Prelude = "") {
    std::string Source = R"(
__global__ void child(int *d, int n) { d[threadIdx.x] = n; }
__global__ void parent(int *d, int n, int m, int b) {
)" + Prelude + "\n  child<<<" +
                         GridExpr + ", b>>>(d, n);\n}\n";
    TU = parseSource(Source, Ctx, Diags);
    EXPECT_NE(TU, nullptr) << Diags.str() << "\nsource:\n" << Source;
    if (!TU)
      return GridDimInfo();
    Parent = TU->findFunction("parent");
    auto Sites = findLaunchSites(TU, Parent);
    EXPECT_EQ(Sites.size(), 1u);
    Launch = Sites[0].Launch;
    return analyzeGridDim(Ctx, Parent, Launch->gridDim());
  }
};

std::string countText(const GridDimInfo &Info) {
  return Info.ThreadCount ? printExpr(Info.ThreadCount) : std::string();
}

// The five one-dimensional spellings of Fig. 4, plus robustness variants.
struct PatternCase {
  const char *Name;
  const char *GridExpr;
  const char *ExpectedCount;
  bool ExpectInline;
};

class Fig4PatternTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(Fig4PatternTest, RecoversDesiredThreadCount) {
  const PatternCase &Case = GetParam();
  AnalysisHarness H;
  GridDimInfo Info = H.run(Case.GridExpr);
  ASSERT_TRUE(Info.Found) << Case.Name << ": " << Info.FailureReason;
  EXPECT_EQ(countText(Info), Case.ExpectedCount) << Case.Name;
  EXPECT_EQ(Info.InlineSite != nullptr, Case.ExpectInline) << Case.Name;
  if (Info.InlineSite)
    EXPECT_TRUE(Info.Safe);
}

const PatternCase Fig4Cases[] = {
    // (a) (N - 1)/b + 1
    {"a", "(n - 1) / b + 1", "n", true},
    // (b) (N + b - 1)/b
    {"b", "(n + b - 1) / b", "n", true},
    // (c) N/b + (N%b == 0 ? 0 : 1)
    {"c", "n / b + ((n % b == 0) ? 0 : 1)", "n", true},
    // (d) ceil((float)N/b)
    {"d", "ceil((float)n / b)", "n", true},
    // (e) ceil(N/(float)b)
    {"e", "ceil(n / (float)b)", "n", true},
    // Variants with extra parens and mixed constants.
    {"a-parens", "((n - 1)) / b + 1", "n", true},
    {"b-comm", "(b + n - 1) / b", "n", true},
    {"b-lit", "(n + 31) / 32", "n", true},
    {"a-lit", "(n - 1) / 32 + 1", "n", true},
    // N itself a compound expression.
    {"compound-n", "(m * n + b - 1) / b", "m * n", true},
    {"offsets", "(n - m - 1) / b + 1", "n - m", true},
    // ceilf variant.
    {"d-ceilf", "ceilf((float)n / b)", "n", true},
};

INSTANTIATE_TEST_SUITE_P(Patterns, Fig4PatternTest,
                         ::testing::ValuesIn(Fig4Cases),
                         [](const ::testing::TestParamInfo<PatternCase> &I) {
                           std::string Name = I.param.Name;
                           for (char &C : Name)
                             if (!isalnum((unsigned char)C))
                               C = '_';
                           return Name;
                         });

TEST(GridDimAnalysisTest, InlineSiteIsInsideGridExpr) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("(n + b - 1) / b");
  ASSERT_TRUE(Info.Found);
  ASSERT_NE(Info.InlineSite, nullptr);
  // The inline site must be a node of the launch's grid expression.
  bool FoundNode = false;
  forEachExpr(H.Launch->gridDim(), [&](Expr *E) {
    if (E == Info.InlineSite)
      FoundNode = true;
  });
  EXPECT_TRUE(FoundNode);
  EXPECT_EQ(printExpr(Info.InlineSite), "n");
}

TEST(GridDimAnalysisTest, ThroughIntermediateVariable) {
  AnalysisHarness H;
  GridDimInfo Info =
      H.run("blocks", "  int blocks = (n + b - 1) / b;");
  ASSERT_TRUE(Info.Found) << Info.FailureReason;
  EXPECT_EQ(countText(Info), "n");
  EXPECT_EQ(Info.InlineSite, nullptr);
  EXPECT_TRUE(Info.NeedsReevaluation);
  EXPECT_TRUE(Info.Safe);
}

TEST(GridDimAnalysisTest, ThroughTwoVariables) {
  AnalysisHarness H;
  GridDimInfo Info = H.run(
      "blocks", "  int padded = n + b - 1;\n  int blocks = padded / b;");
  ASSERT_TRUE(Info.Found) << Info.FailureReason;
  EXPECT_EQ(countText(Info), "n");
  EXPECT_TRUE(Info.NeedsReevaluation);
  EXPECT_TRUE(Info.Safe);
}

TEST(GridDimAnalysisTest, ReassignedVariableIsRejected) {
  AnalysisHarness H;
  GridDimInfo Info = H.run(
      "blocks", "  int blocks = (n + b - 1) / b;\n  blocks = blocks + 1;");
  EXPECT_FALSE(Info.Found);
  EXPECT_FALSE(Info.FailureReason.empty());
}

TEST(GridDimAnalysisTest, ReassignedSourceVariableIsUnsafe) {
  AnalysisHarness H;
  // `n` changes between the definition of blocks and the launch, so
  // re-evaluating `n` at the launch would observe the wrong value.
  GridDimInfo Info =
      H.run("blocks", "  int blocks = (n + b - 1) / b;\n  n = 0;");
  // The pattern is recognized, but re-evaluating `n` at the launch site
  // would observe the mutated value, so the result is flagged unsafe.
  EXPECT_TRUE(Info.Found);
  EXPECT_FALSE(Info.Safe);
}

TEST(GridDimAnalysisTest, NoDivisionFails) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("n");
  EXPECT_FALSE(Info.Found);
  EXPECT_NE(Info.FailureReason.find("no resolvable"), std::string::npos)
      << Info.FailureReason;
}

TEST(GridDimAnalysisTest, PlainLiteralFails) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("64");
  EXPECT_FALSE(Info.Found);
}

TEST(GridDimAnalysisTest, Dim3TwoDimensional) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("dim3((n + 15) / 16, (m + 15) / 16, 1)");
  ASSERT_TRUE(Info.Found) << Info.FailureReason;
  EXPECT_EQ(countText(Info), "n * m");
  EXPECT_EQ(Info.InlineSite, nullptr);
  EXPECT_TRUE(Info.NeedsReevaluation);
  EXPECT_TRUE(Info.Safe);
}

TEST(GridDimAnalysisTest, Dim3VariableGrid) {
  AnalysisHarness H;
  GridDimInfo Info =
      H.run("grid", "  dim3 grid((n + 31) / 32, 1, 1);");
  ASSERT_TRUE(Info.Found) << Info.FailureReason;
  EXPECT_EQ(countText(Info), "n");
}

TEST(GridDimAnalysisTest, Dim3AllConstantFails) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("dim3(1, 1, 1)");
  EXPECT_FALSE(Info.Found);
}

TEST(GridDimAnalysisTest, Dim3NonLiteralNonDivFails) {
  AnalysisHarness H;
  GridDimInfo Info = H.run("dim3(n, 1, 1)");
  EXPECT_FALSE(Info.Found);
}

TEST(GridDimAnalysisTest, StripParensAndCasts) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Expr *E = parseExprSource("((float)((n)))", Ctx, Diags);
  ASSERT_NE(E, nullptr);
  Expr *Stripped = stripParensAndCasts(E);
  ASSERT_TRUE(isa<DeclRefExpr>(Stripped));
  EXPECT_EQ(cast<DeclRefExpr>(Stripped)->name(), "n");
}

} // namespace
