//===--- LexerTest.cpp - Unit tests for the CUDA-C subset lexer -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

std::vector<Token> lexOk(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : Tokens)
    Kinds.push_back(Tok.Kind);
  return Kinds;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, WhitespaceOnly) {
  auto Tokens = lexOk("  \t\n  \n");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  auto Tokens = lexOk("foo _bar baz42 _9x");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "baz42");
  EXPECT_EQ(Tokens[3].Text, "_9x");
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
}

TEST(LexerTest, Keywords) {
  auto Tokens = lexOk("if else for while return int void __global__");
  std::vector<TokenKind> Expected = {
      TokenKind::KwIf,  TokenKind::KwElse,   TokenKind::KwFor,
      TokenKind::KwWhile, TokenKind::KwReturn, TokenKind::KwInt,
      TokenKind::KwVoid, TokenKind::KwGlobal, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, CudaQualifiers) {
  auto Tokens = lexOk("__device__ __host__ __shared__ __restrict__");
  std::vector<TokenKind> Expected = {TokenKind::KwDevice, TokenKind::KwHost,
                                     TokenKind::KwShared, TokenKind::KwRestrict,
                                     TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lexOk("0 42 1024 0x10 0xFF 7u 9ul 10ull 11ll");
  for (size_t I = 0; I + 1 < Tokens.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntegerLiteral)
        << "token " << I << " text " << Tokens[I].Text;
  EXPECT_EQ(Tokens[3].Text, "0x10");
  EXPECT_EQ(Tokens[5].Text, "7u");
  EXPECT_EQ(Tokens[6].Text, "9ul");
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lexOk("1.5 0.25f 1e10 2.5e-3 1. 3f");
  // `3f` lexes as integer `3` followed by... no: suffix f makes float.
  EXPECT_EQ(Tokens[0].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::FloatLiteral);
}

TEST(LexerTest, LaunchDelimiters) {
  auto Tokens = lexOk("kernel<<<grid, block>>>(arg)");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LaunchBegin, TokenKind::Identifier,
      TokenKind::Comma,      TokenKind::Identifier,  TokenKind::LaunchEnd,
      TokenKind::LParen,     TokenKind::Identifier,  TokenKind::RParen,
      TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, ShiftVersusLaunch) {
  auto Tokens = lexOk("a << b >> c");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LessLess, TokenKind::Identifier,
      TokenKind::GreaterGreater, TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, CompoundOperators) {
  auto Tokens = lexOk("+= -= *= /= %= <<= >>= &= |= ^= ++ -- && || == != <= >=");
  std::vector<TokenKind> Expected = {
      TokenKind::PlusEqual,    TokenKind::MinusEqual,
      TokenKind::StarEqual,    TokenKind::SlashEqual,
      TokenKind::PercentEqual, TokenKind::LessLessEqual,
      TokenKind::GreaterGreaterEqual, TokenKind::AmpEqual,
      TokenKind::PipeEqual,    TokenKind::CaretEqual,
      TokenKind::PlusPlus,     TokenKind::MinusMinus,
      TokenKind::AmpAmp,       TokenKind::PipePipe,
      TokenKind::EqualEqual,   TokenKind::ExclaimEqual,
      TokenKind::LessEqual,    TokenKind::GreaterEqual,
      TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, ArrowAndMember) {
  auto Tokens = lexOk("a->b.c");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Arrow,
                                     TokenKind::Identifier, TokenKind::Period,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, LineComment) {
  auto Tokens = lexOk("a // this is a comment\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, BlockComment) {
  auto Tokens = lexOk("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  DiagnosticEngine Diags;
  Lexer Lex("a /* never closed", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PreprocessorLine) {
  auto Tokens = lexOk("#include <cuda.h>\nint x;");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::PreprocessorLine);
  EXPECT_EQ(Tokens[0].Text, "#include <cuda.h>");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwInt);
}

TEST(LexerTest, PreprocessorLineWithContinuation) {
  auto Tokens = lexOk("#define FOO(a) \\\n  ((a) + 1)\nx");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::PreprocessorLine);
  EXPECT_NE(Tokens[0].Text.find("((a) + 1)"), std::string::npos);
  EXPECT_EQ(Tokens[1].Text, "x");
}

TEST(LexerTest, HashInsideLineIsNotPreprocessor) {
  DiagnosticEngine Diags;
  Lexer Lex("a # b", Diags);
  Lex.lexAll();
  // '#' mid-line is not part of the subset; it must be diagnosed, not
  // silently swallowed as a directive.
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StringLiteral) {
  auto Tokens = lexOk("\"hello \\\"world\\\"\"");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "\"hello \\\"world\\\"\"");
}

TEST(LexerTest, CharLiteral) {
  auto Tokens = lexOk("'a' '\\n'");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::CharLiteral);
}

TEST(LexerTest, SourceLocations) {
  auto Tokens = lexOk("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  DiagnosticEngine Diags;
  Lexer Lex("int a = 1 @ 2;", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, TernaryTokens) {
  auto Tokens = lexOk("a ? b : c");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Question,
                                     TokenKind::Identifier, TokenKind::Colon,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, RealKernelSnippet) {
  const char *Source = R"(
__global__ void child(int *data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) data[i] += 1;
}
)";
  auto Tokens = lexOk(Source);
  EXPECT_GT(Tokens.size(), 30u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwGlobal);
}

} // namespace
