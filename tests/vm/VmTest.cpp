//===--- VmTest.cpp - Bytecode VM unit tests ----------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dpo;

namespace {

std::unique_ptr<Device> makeDevice(std::string_view Source) {
  DiagnosticEngine Diags;
  auto Dev = buildDevice(Source, Diags);
  EXPECT_NE(Dev, nullptr) << Diags.str();
  return Dev;
}

TEST(VmTest, SimpleKernelWritesIndices) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i * 2;
}
)");
  ASSERT_NE(Dev, nullptr);
  uint64_t Out = Dev->alloc(100 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {4, 1, 1}, {32, 1, 1},
                                {(int64_t)Out, 100}))
      << Dev->error();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), I * 2) << "index " << I;
}

TEST(VmTest, ControlFlowCollatz) {
  auto Dev = makeDevice(R"(
__device__ int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0)
      n = n / 2;
    else
      n = 3 * n + 1;
    steps++;
  }
  return steps;
}
__global__ void k(int *out) {
  out[threadIdx.x] = collatz(threadIdx.x + 1);
}
)");
  ASSERT_NE(Dev, nullptr);
  uint64_t Out = Dev->alloc(8 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {8, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  int Expected[] = {0, 1, 7, 2, 5, 8, 16, 3}; // collatz(1..8)
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), Expected[I]) << "n=" << I + 1;
}

TEST(VmTest, ForLoopAndBreakContinue) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int n) {
  int sumEven = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 2 != 0)
      continue;
    if (i > 10)
      break;
    sumEven += i;
  }
  out[0] = sumEven;
}
)");
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 100}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), 0 + 2 + 4 + 6 + 8 + 10);
}

TEST(VmTest, DoWhileLoop) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  int i = 0;
  int sum = 0;
  do {
    sum += i;
    i++;
  } while (i < 5);
  out[0] = sum;
}
)");
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out}));
  EXPECT_EQ(Dev->readI32(Out), 10);
}

TEST(VmTest, FloatArithmetic) {
  auto Dev = makeDevice(R"(
__global__ void k(float *out, float a, float b) {
  out[0] = a + b;
  out[1] = a * b;
  out[2] = a / b;
  out[3] = sqrtf(a);
  out[4] = (float)(a > b);
}
)");
  uint64_t Out = Dev->alloc(5 * 4);
  double A = 9.0, B = 2.0;
  int64_t ABits, BBits;
  memcpy(&ABits, &A, 8);
  memcpy(&BBits, &B, 8);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, ABits, BBits}))
      << Dev->error();
  EXPECT_FLOAT_EQ(Dev->readF32(Out + 0), 11.0f);
  EXPECT_FLOAT_EQ(Dev->readF32(Out + 4), 18.0f);
  EXPECT_FLOAT_EQ(Dev->readF32(Out + 8), 4.5f);
  EXPECT_FLOAT_EQ(Dev->readF32(Out + 12), 3.0f);
  EXPECT_FLOAT_EQ(Dev->readF32(Out + 16), 1.0f);
}

TEST(VmTest, UnsignedSemantics) {
  auto Dev = makeDevice(R"(
__global__ void k(unsigned int *out, unsigned int big) {
  out[0] = big / 2u;
  out[1] = big >> 1;
  out[2] = (unsigned int)(big > 0u);
  unsigned int wrapped = 0u;
  wrapped = wrapped - 1u;
  out[3] = wrapped;
  out[4] = wrapped > 100u ? 1u : 0u;
}
)");
  uint64_t Out = Dev->alloc(5 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, (int64_t)0xFFFFFFFEu}))
      << Dev->error();
  EXPECT_EQ(Dev->readU32(Out + 0), 0x7FFFFFFFu);
  EXPECT_EQ(Dev->readU32(Out + 4), 0x7FFFFFFFu);
  EXPECT_EQ(Dev->readU32(Out + 8), 1u);
  EXPECT_EQ(Dev->readU32(Out + 12), 0xFFFFFFFFu);
  EXPECT_EQ(Dev->readU32(Out + 16), 1u);
}

TEST(VmTest, PackedCounterSplit) {
  // The exact packed 64-bit pattern aggregation uses.
  auto Dev = makeDevice(R"(
__global__ void k(unsigned long long *cnt, unsigned int *out, unsigned int g) {
  unsigned long long packed =
      atomicAdd(cnt, ((unsigned long long)1 << 32) + (unsigned long long)g);
  unsigned int idx = (unsigned int)(packed >> 32);
  unsigned int sum = (unsigned int)(packed & 4294967295u);
  out[threadIdx.x * 2] = idx;
  out[threadIdx.x * 2 + 1] = sum;
}
)");
  uint64_t Cnt = Dev->alloc(8);
  uint64_t Out = Dev->alloc(8 * 2 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {8, 1, 1},
                                {(int64_t)Cnt, (int64_t)Out, 5}))
      << Dev->error();
  // Sequential threads: thread t sees idx = t and sum = 5 * t.
  for (int T = 0; T < 8; ++T) {
    EXPECT_EQ(Dev->readU32(Out + T * 8), (uint32_t)T);
    EXPECT_EQ(Dev->readU32(Out + T * 8 + 4), (uint32_t)(5 * T));
  }
  EXPECT_EQ((uint64_t)Dev->readI64(Cnt), ((uint64_t)8 << 32) + 40);
}

TEST(VmTest, AtomicsSemantics) {
  auto Dev = makeDevice(R"(
__global__ void k(int *acc, unsigned int *umax, int *hist) {
  int old = atomicAdd(acc, 2);
  hist[threadIdx.x] = old;
  atomicMax(umax, threadIdx.x * 7u % 64u);
}
)");
  uint64_t Acc = Dev->alloc(4);
  uint64_t UMax = Dev->alloc(4);
  uint64_t Hist = Dev->alloc(32 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {32, 1, 1},
                                {(int64_t)Acc, (int64_t)UMax, (int64_t)Hist}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Acc), 64);
  // Max of (t*7 mod 64) over t in 0..31.
  uint32_t Expected = 0;
  for (uint32_t T = 0; T < 32; ++T)
    Expected = std::max(Expected, T * 7 % 64);
  EXPECT_EQ(Dev->readU32(UMax), Expected);
  // Old values are a permutation of even numbers 0..62.
  std::vector<int32_t> Olds = Dev->readI32Array(Hist, 32);
  std::sort(Olds.begin(), Olds.end());
  for (int T = 0; T < 32; ++T)
    EXPECT_EQ(Olds[T], T * 2);
}

TEST(VmTest, SharedMemoryReduction) {
  auto Dev = makeDevice(R"(
__global__ void reduce(int *in, int *out, int n) {
  __shared__ int scratch[128];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < n ? in[i] : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    atomicAdd(out, scratch[0]);
}
)");
  std::vector<int32_t> In(300);
  int64_t Expected = 0;
  for (size_t I = 0; I < In.size(); ++I) {
    In[I] = (int32_t)(I * 3 + 1);
    Expected += In[I];
  }
  uint64_t InAddr = Dev->allocI32(In);
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("reduce", {3, 1, 1}, {128, 1, 1},
                                {(int64_t)InAddr, (int64_t)Out, 300}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), Expected);
}

TEST(VmTest, BarrierWithEarlyExitThreads) {
  // Threads that return before the barrier must not deadlock it.
  auto Dev = makeDevice(R"(
__global__ void k(int *tmp, int *out, int n) {
  if (threadIdx.x >= n)
    return;
  tmp[threadIdx.x] = threadIdx.x + 1;
  __syncthreads();
  out[threadIdx.x] = tmp[(threadIdx.x + 1) % n];
}
)");
  uint64_t Tmp = Dev->alloc(8 * 4);
  uint64_t Out = Dev->alloc(8 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {8, 1, 1},
                                {(int64_t)Tmp, (int64_t)Out, 4}))
      << Dev->error();
  // Each surviving thread sees its neighbor's pre-barrier write.
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), (I + 1) % 4 + 1);
}

TEST(VmTest, DeviceFunctionRecursion) {
  auto Dev = makeDevice(R"(
__device__ int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
__global__ void k(int *out) {
  out[threadIdx.x] = fib(threadIdx.x);
}
)");
  uint64_t Out = Dev->alloc(10 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {10, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  int Fib[] = {0, 1, 1, 2, 3, 5, 8, 13, 21, 34};
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), Fib[I]);
}

TEST(VmTest, DynamicLaunchParentChild) {
  auto Dev = makeDevice(R"(
__global__ void child(int *out, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[base + i] = base + i;
}
__global__ void parent(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(out, offsets[v], count);
    }
  }
}
)");
  std::vector<int32_t> Counts = {3, 0, 17, 40, 1};
  std::vector<int32_t> Offsets = {0, 3, 3, 20, 60};
  uint64_t Out = Dev->alloc(61 * 4);
  uint64_t CountsA = Dev->allocI32(Counts);
  uint64_t OffsetsA = Dev->allocI32(Offsets);
  ASSERT_TRUE(Dev->launchKernel(
      "parent", {1, 1, 1}, {8, 1, 1},
      {(int64_t)Out, (int64_t)CountsA, (int64_t)OffsetsA, 5}))
      << Dev->error();
  // Every position covered by a child grid must hold its own index.
  for (int V = 0; V < 5; ++V)
    for (int I = 0; I < Counts[V]; ++I)
      EXPECT_EQ(Dev->readI32(Out + (Offsets[V] + I) * 4), Offsets[V] + I);
  EXPECT_EQ(Dev->stats().DeviceLaunches, 4u); // count==0 launches nothing
}

TEST(VmTest, Dim3ParamsAndScalarCoercion) {
  auto Dev = makeDevice(R"(
__device__ void helper(int *out, dim3 g, dim3 b) {
  out[0] = g.x;
  out[1] = g.y;
  out[2] = b.x;
}
__global__ void k(int *out, int n) {
  helper(out, dim3(n, 2, 1), 64);
}
)");
  uint64_t Out = Dev->alloc(3 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 7}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out + 0), 7);
  EXPECT_EQ(Dev->readI32(Out + 4), 2);
  EXPECT_EQ(Dev->readI32(Out + 8), 64);
}

TEST(VmTest, Dim3LocalsAndMemberAssign) {
  auto Dev = makeDevice(R"(
__global__ void k(unsigned int *out, int n) {
  dim3 g((n + 3) / 4, 1, 1);
  dim3 c = g;
  c.x = (g.x + 2 - 1) / 2;
  out[0] = g.x;
  out[1] = c.x;
  out[2] = c.y;
}
)");
  uint64_t Out = Dev->alloc(3 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 10}))
      << Dev->error();
  EXPECT_EQ(Dev->readU32(Out + 0), 3u);
  EXPECT_EQ(Dev->readU32(Out + 4), 2u);
  EXPECT_EQ(Dev->readU32(Out + 8), 1u);
}

TEST(VmTest, MultiDimensionalGrid) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int w) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  out[y * w + x] = x + y * 100;
}
)");
  uint64_t Out = Dev->alloc(8 * 8 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {2, 2, 1}, {4, 4, 1}, {(int64_t)Out, 8}))
      << Dev->error();
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X)
      EXPECT_EQ(Dev->readI32(Out + (Y * 8 + X) * 4), X + Y * 100);
}

TEST(VmTest, GlobalVariables) {
  auto Dev = makeDevice(R"(
int gCounter = 5;
int gTable[4];
__global__ void k(int *out) {
  atomicAdd(&gCounter, 1);
  gTable[threadIdx.x] = threadIdx.x * 3;
  out[threadIdx.x] = gTable[threadIdx.x];
}
__global__ void readBack(int *out) {
  out[0] = gCounter;
}
)");
  uint64_t Out = Dev->alloc(4 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {4, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), I * 3);
  ASSERT_TRUE(Dev->launchKernel("readBack", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out}));
  EXPECT_EQ(Dev->readI32(Out), 9); // 5 + 4 atomic increments
}

TEST(VmTest, HostFunctionWithCudaApi) {
  auto Dev = makeDevice(R"(
__global__ void fill(int *buf, int n, int value) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) buf[i] = value;
}
void run(int *out, int n) {
  int *tmp = 0;
  cudaMalloc((void **)&tmp, n * sizeof(int));
  fill<<<(n + 63) / 64, 64>>>(tmp, n, 42);
  cudaDeviceSynchronize();
  cudaMemcpy(out, tmp, n * sizeof(int), cudaMemcpyDeviceToHost);
  cudaFree(tmp);
}
)");
  uint64_t Out = Dev->alloc(100 * 4);
  ASSERT_TRUE(Dev->callHost("run", {(int64_t)Out, 100})) << Dev->error();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), 42);
}

TEST(VmTest, LocalArraysInFrameMemory) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  int tmp[8];
  for (int i = 0; i < 8; ++i)
    tmp[i] = i * i;
  int sum = 0;
  for (int i = 0; i < 8; ++i)
    sum += tmp[i];
  out[threadIdx.x] = sum;
}
)");
  uint64_t Out = Dev->alloc(4 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {4, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Dev->readI32(Out + I * 4), 140);
}

TEST(VmTest, PointerArithmetic) {
  auto Dev = makeDevice(R"(
__global__ void k(int *base, int off) {
  int *p = base + off;
  *p = 77;
  p[1] = 78;
  int *q = p + 2;
  *q = *p + p[1];
}
)");
  uint64_t Base = Dev->alloc(10 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Base, 3}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Base + 3 * 4), 77);
  EXPECT_EQ(Dev->readI32(Base + 4 * 4), 78);
  EXPECT_EQ(Dev->readI32(Base + 5 * 4), 155);
}

TEST(VmTest, TernaryAndShortCircuit) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int *guard) {
  out[0] = threadIdx.x == 0 ? 10 : 20;
  // Short-circuit: the right side must not execute (would trap on null).
  int ok = (guard != 0) && (guard[0] == 1);
  out[1] = ok;
  int or1 = (guard == 0) || (guard[0] == 1);
  out[2] = or1;
}
)");
  uint64_t Guard = Dev->alloc(4);
  Dev->writeI32(Guard, 1);
  uint64_t Out = Dev->alloc(3 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, (int64_t)Guard}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out + 0), 10);
  EXPECT_EQ(Dev->readI32(Out + 4), 1);
  EXPECT_EQ(Dev->readI32(Out + 8), 1);

  // Null guard: short circuit avoids the dereference.
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, 0}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out + 4), 0);
  EXPECT_EQ(Dev->readI32(Out + 8), 1);
}

TEST(VmTest, DivisionByZeroFails) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int z) {
  out[0] = 10 / z;
}
)");
  uint64_t Out = Dev->alloc(4);
  EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 0}));
  EXPECT_NE(Dev->error().find("division by zero"), std::string::npos);
}

TEST(VmTest, OutOfBoundsFails) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  out[1000000000] = 1;
}
)");
  uint64_t Out = Dev->alloc(4);
  EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out}));
  EXPECT_NE(Dev->error().find("out of bounds"), std::string::npos);
}

TEST(VmTest, InfiniteLoopHitsStepLimit) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  while (1 == 1) {
    out[0] = out[0] + 1;
  }
}
)");
  Dev->setStepLimit(100000);
  uint64_t Out = Dev->alloc(4);
  EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out}));
  EXPECT_NE(Dev->error().find("step limit"), std::string::npos);
}

TEST(VmTest, EmptyGridCompletes) {
  auto Dev = makeDevice(R"(
__global__ void child(int *out) { out[0] = 1; }
__global__ void parent(int *out, int n) {
  child<<<n, 32>>>(out);
}
)");
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("parent", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, 0}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), 0); // Zero-block child never ran.
}

TEST(VmTest, NestedLaunchDepth) {
  auto Dev = makeDevice(R"(
__global__ void leaf(int *out) {
  atomicAdd(out, 1);
}
__global__ void mid(int *out) {
  leaf<<<2, 2>>>(out);
}
__global__ void top(int *out) {
  mid<<<2, 1>>>(out);
}
)");
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("top", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  // top(1 thread) -> 2 mid blocks x 1 thread -> each launches leaf<<<2,2>>>.
  EXPECT_EQ(Dev->readI32(Out), 2 * 2 * 2);
  EXPECT_EQ(Dev->stats().DeviceLaunches, 3u);
}

TEST(VmTest, CompoundAssignAndIncDecValues) {
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  int a = 10;
  out[0] = a++;
  out[1] = ++a;
  out[2] = a--;
  out[3] = --a;
  a += 5;
  out[4] = a;
  a <<= 2;
  out[5] = a;
  out[6] = out[0]++;
  out[7] = ++out[1];
}
)");
  uint64_t Out = Dev->alloc(8 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out + 0 * 4), 11); // 10 then ++ by out[6]
  EXPECT_EQ(Dev->readI32(Out + 1 * 4), 13); // 12 then ++ by out[7]
  EXPECT_EQ(Dev->readI32(Out + 2 * 4), 12);
  EXPECT_EQ(Dev->readI32(Out + 3 * 4), 10);
  EXPECT_EQ(Dev->readI32(Out + 4 * 4), 15);
  EXPECT_EQ(Dev->readI32(Out + 5 * 4), 60);
  EXPECT_EQ(Dev->readI32(Out + 6 * 4), 10);
  EXPECT_EQ(Dev->readI32(Out + 7 * 4), 13);
}

TEST(VmTest, SpecGuardIntrinsicCountsOutcomes) {
  // __dpo_spec_guard(n, k) -> n <= k, the speculative-serialization
  // guard. Each evaluation bumps exactly one of the two stat counters.
  auto Dev = makeDevice(R"(
__global__ void k(int *out, int n, int bound) {
  if (__dpo_spec_guard(n, bound))
    out[0] = 1;
  else
    out[0] = 0;
}
)");
  uint64_t Out = Dev->alloc(4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, 4, 8}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), 1);
  EXPECT_EQ(Dev->stats().SpecGuardPass, 1u);
  EXPECT_EQ(Dev->stats().SpecGuardFail, 0u);

  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, 9, 8}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), 0);
  EXPECT_EQ(Dev->stats().SpecGuardPass, 1u);
  EXPECT_EQ(Dev->stats().SpecGuardFail, 1u);

  // Boundary: n == k passes.
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                {(int64_t)Out, 8, 8}))
      << Dev->error();
  EXPECT_EQ(Dev->readI32(Out), 1);
  EXPECT_EQ(Dev->stats().SpecGuardPass, 2u);
  EXPECT_EQ(Dev->stats().SpecGuardFail, 1u);
}

//===--- Warp/block collectives (cooperative block mode) ------------------===//

std::unique_ptr<Device> makeDeviceMode(std::string_view Source, ExecMode Mode) {
  DiagnosticEngine Diags;
  VmCompileOptions Opts;
  Opts.Exec = Mode;
  auto Dev = buildDevice(Source, Diags, Opts);
  EXPECT_NE(Dev, nullptr) << Diags.str();
  return Dev;
}

TEST(VmTest, WarpShuffleVariants) {
  auto Dev = makeDevice(R"(
__global__ void k(int *idx, int *up, int *down, int *xr) {
  unsigned int t = threadIdx.x;
  int v = t * 10 + 1;
  idx[t] = __shfl_sync(0xffffffffu, v, (t + 5) % 32);
  up[t] = __shfl_up_sync(0xffffffffu, v, 3);
  down[t] = __shfl_down_sync(0xffffffffu, v, 3);
  xr[t] = __shfl_xor_sync(0xffffffffu, v, 1);
}
)");
  uint64_t Idx = Dev->alloc(32 * 4), Up = Dev->alloc(32 * 4);
  uint64_t Down = Dev->alloc(32 * 4), Xor = Dev->alloc(32 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {32, 1, 1},
                                {(int64_t)Idx, (int64_t)Up, (int64_t)Down,
                                 (int64_t)Xor}))
      << Dev->error();
  auto Val = [](int Lane) { return Lane * 10 + 1; };
  for (int L = 0; L < 32; ++L) {
    EXPECT_EQ(Dev->readI32(Idx + L * 4), Val((L + 5) % 32)) << "lane " << L;
    EXPECT_EQ(Dev->readI32(Up + L * 4), Val(L < 3 ? L : L - 3)) << "lane " << L;
    EXPECT_EQ(Dev->readI32(Down + L * 4), Val(L > 28 ? L : L + 3))
        << "lane " << L;
    EXPECT_EQ(Dev->readI32(Xor + L * 4), Val(L ^ 1)) << "lane " << L;
  }
}

TEST(VmTest, WarpShuffleEarlyExitAndMaskedLanes) {
  // Lanes that returned before the collective are not in the group, and
  // lanes outside the mask are never read: both cases fall back to the
  // reader's own contributed value.
  auto Dev = makeDevice(R"(
__global__ void k(int *a, int *b, int n) {
  unsigned int t = threadIdx.x;
  if (t >= n) return;
  a[t] = __shfl_sync(0xffu, t + 100, (t + 1) % 8);
  b[t] = __shfl_sync(0x0fu, t + 200, (t + 1) % 8);
}
)");
  uint64_t A = Dev->alloc(8 * 4), B = Dev->alloc(8 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {8, 1, 1},
                                {(int64_t)A, (int64_t)B, 6}))
      << Dev->error();
  // Lanes 0..5 live. a: full 8-lane mask, so lane 5's source (lane 6)
  // exited early -> own value. b: mask 0x0f, so sources 4..7 are never
  // read even when live.
  int ExpA[] = {101, 102, 103, 104, 105, 105};
  int ExpB[] = {201, 202, 203, 203, 204, 205};
  for (int L = 0; L < 6; ++L) {
    EXPECT_EQ(Dev->readI32(A + L * 4), ExpA[L]) << "lane " << L;
    EXPECT_EQ(Dev->readI32(B + L * 4), ExpB[L]) << "lane " << L;
  }
}

TEST(VmTest, BallotSyncAcrossLiveLanes) {
  auto Dev = makeDevice(R"(
__global__ void k(unsigned int *out, int n) {
  unsigned int t = threadIdx.x;
  if (t >= n) return;
  out[t] = __ballot_sync(0xffffffffu, t % 3 == 0);
}
)");
  uint64_t Out = Dev->alloc(32 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {32, 1, 1},
                                {(int64_t)Out, 20}))
      << Dev->error();
  uint32_t Expected = 0;
  for (int L = 0; L < 20; ++L)
    if (L % 3 == 0)
      Expected |= 1u << L;
  for (int L = 0; L < 20; ++L)
    EXPECT_EQ(Dev->readU32(Out + L * 4), Expected) << "lane " << L;
}

TEST(VmTest, BlockReduceAddMinMax) {
  // Block-wide (cross-warp) reduction over the live threads only: the
  // tail that returned early contributes nothing.
  auto Dev = makeDevice(R"(
__global__ void k(int *s, int *mn, int *mx, int n) {
  int t = threadIdx.x;
  if (t >= n) return;
  int v = t - 5;
  s[t] = __block_reduce_add(v);
  mn[t] = __block_reduce_min(v);
  mx[t] = __block_reduce_max(v);
}
)");
  uint64_t S = Dev->alloc(64 * 4), Mn = Dev->alloc(64 * 4);
  uint64_t Mx = Dev->alloc(64 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {64, 1, 1},
                                {(int64_t)S, (int64_t)Mn, (int64_t)Mx, 48}))
      << Dev->error();
  int Sum = 0;
  for (int T = 0; T < 48; ++T)
    Sum += T - 5;
  for (int T = 0; T < 48; ++T) {
    EXPECT_EQ(Dev->readI32(S + T * 4), Sum) << "thread " << T;
    EXPECT_EQ(Dev->readI32(Mn + T * 4), -5) << "thread " << T;
    EXPECT_EQ(Dev->readI32(Mx + T * 4), 42) << "thread " << T;
  }
}

TEST(VmTest, WarpAllReduceButterfly) {
  // The classic shfl_xor butterfly allreduce -- collectives inside a
  // loop body, which also exercises them inside superblock traces.
  auto Dev = makeDevice(R"(
__global__ void k(int *out) {
  int v = threadIdx.x + 1;
  for (int off = 16; off > 0; off = off / 2)
    v += __shfl_xor_sync(0xffffffffu, v, off);
  out[threadIdx.x] = v;
}
)");
  uint64_t Out = Dev->alloc(32 * 4);
  ASSERT_TRUE(Dev->launchKernel("k", {1, 1, 1}, {32, 1, 1}, {(int64_t)Out}))
      << Dev->error();
  for (int L = 0; L < 32; ++L)
    EXPECT_EQ(Dev->readI32(Out + L * 4), 32 * 33 / 2) << "lane " << L;
}

TEST(VmTest, SharedMemoryBarrierReduction) {
  // The canonical tiled tree reduction: shared scratch, guarded load,
  // barrier, stride-halving loop with an in-loop barrier.
  auto Dev = makeDevice(R"(
__global__ void k(int *in, int *out, int n) {
  __shared__ int scratch[64];
  unsigned int t = threadIdx.x;
  unsigned int i = blockIdx.x * blockDim.x + t;
  scratch[t] = i < n ? in[i] : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (t < stride)
      scratch[t] = scratch[t] + scratch[t + stride];
    __syncthreads();
  }
  if (t == 0)
    out[blockIdx.x] = scratch[0];
}
)");
  int N = 150;
  uint64_t In = Dev->alloc(N * 4), Out = Dev->alloc(3 * 4);
  std::vector<int32_t> Data(N);
  for (int I = 0; I < N; ++I)
    Data[I] = (I * 7) % 23 - 11;
  Dev->writeI32Array(In, Data);
  ASSERT_TRUE(Dev->launchKernel("k", {3, 1, 1}, {64, 1, 1},
                                {(int64_t)In, (int64_t)Out, N}))
      << Dev->error();
  for (int B = 0; B < 3; ++B) {
    int Exp = 0;
    for (int I = B * 64; I < std::min(N, (B + 1) * 64); ++I)
      Exp += Data[I];
    EXPECT_EQ(Dev->readI32(Out + B * 4), Exp) << "block " << B;
  }
}

// A divergent barrier: thread 3 spins forever and never reaches the
// barrier the other three threads are parked at. The step budget must be
// retired exactly (bytecode engine; the decoded engines may stop one
// fused sub-instruction short, see vm/README.md) and the diagnostic must
// name the parked threads deterministically.
constexpr std::string_view DivergentBarrierSrc = R"(
__global__ void k(int *out) {
  if (threadIdx.x == 3) {
    while (1 == 1) out[0] = out[0] + 1;
  }
  __syncthreads();
  out[threadIdx.x] = 7;
}
)";

TEST(VmTest, StepLimitAtBarrierRetiresExactBudget) {
  auto Run = [](ExecMode Mode) {
    auto Dev = makeDeviceMode(DivergentBarrierSrc, Mode);
    Dev->setStepLimit(5000);
    uint64_t Out = Dev->alloc(4 * 4);
    EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {4, 1, 1}, {(int64_t)Out}));
    EXPECT_NE(Dev->error().find("step limit"), std::string::npos)
        << Dev->error();
    return Dev->stats().Steps;
  };
  // Bytecode checks the budget before charging: exactly the budget.
  EXPECT_EQ(Run(ExecMode::Bytecode), 5000u);
  // Decoded engines uncharge the overrunning instruction; a fused pair
  // can leave at most one sub-instruction of slack.
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Auto}) {
    uint64_t Steps = Run(Mode);
    EXPECT_LE(Steps, 5000u);
    EXPECT_GE(Steps, 4999u);
    // Deterministic: a second identical run retires the identical count.
    EXPECT_EQ(Run(Mode), Steps);
  }
}

TEST(VmTest, DivergentBarrierDiagnosedDeterministically) {
  auto Run = [](ExecMode Mode) {
    auto Dev = makeDeviceMode(DivergentBarrierSrc, Mode);
    Dev->setStepLimit(20000);
    uint64_t Out = Dev->alloc(4 * 4);
    EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {4, 1, 1}, {(int64_t)Out}));
    return Dev->error();
  };
  for (ExecMode Mode :
       {ExecMode::Bytecode, ExecMode::Decoded, ExecMode::DecodedNoTrace}) {
    std::string Err = Run(Mode);
    EXPECT_NE(Err.find("step limit"), std::string::npos) << Err;
    EXPECT_NE(Err.find("divergent barrier"), std::string::npos) << Err;
    EXPECT_NE(Err.find("3 thread(s)"), std::string::npos) << Err;
    EXPECT_EQ(Run(Mode), Err) << "diagnostic must be deterministic";
  }
}

} // namespace
