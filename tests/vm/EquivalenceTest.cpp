//===--- EquivalenceTest.cpp - Transformed code computes the same thing -------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the whole framework: for every
/// combination of thresholding/coarsening/aggregation (at every
/// granularity), the transformed source must compute exactly the same
/// memory state as the original. Both versions execute on the bytecode VM;
/// outputs are compared element-wise over randomized nested-parallelism
/// workloads.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "transform/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <random>

using namespace dpo;

namespace {

/// The canonical nested-parallelism program (BFS-shaped): each parent
/// thread v launches counts[v] child threads, each writing a derived value
/// into its slice of `out`.
const char *NestedSource = R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    out[base + i] = base * 7 + i * 3 + count;
  }
}
__global__ void parent(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(out, offsets[v], count);
    }
  }
}
)";

/// Variant with per-parent block dimensions (exercises the max-blockDim
/// masking in aggregated children) and an accumulating child (atomics).
const char *VaryingBlockDimSource = R"(
__global__ void child(int *out, int *acc, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    out[base + i] = base + i;
    atomicAdd(acc, 1);
  }
}
__global__ void parent(int *out, int *acc, int *counts, int *offsets,
                       int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    int b = v % 2 == 0 ? 32 : 64;
    if (count > 0) {
      child<<<(count + b - 1) / b, b>>>(out, acc, offsets[v], count);
    }
  }
}
)";

/// Child with an early return (exercises the serial-thread-helper and
/// coarse-body-helper codegen paths).
const char *EarlyReturnSource = R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= count)
    return;
  if (i % 3 == 0)
    return;
  out[base + i] = base + i * i;
}
__global__ void parent(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 63) / 64, 64>>>(out, offsets[v], count);
    }
  }
}
)";

struct Workload {
  std::vector<int32_t> Counts;
  std::vector<int32_t> Offsets;
  int32_t Total = 0;

  static Workload random(unsigned Seed, int NumV, int MaxCount) {
    std::mt19937 Rng(Seed);
    Workload W;
    W.Counts.resize(NumV);
    W.Offsets.resize(NumV);
    // Skewed distribution: many small, few large (the paper's whole point).
    std::uniform_int_distribution<int> Small(0, 8);
    std::uniform_int_distribution<int> Large(32, MaxCount);
    std::uniform_int_distribution<int> Pick(0, 9);
    for (int V = 0; V < NumV; ++V) {
      W.Offsets[V] = W.Total;
      W.Counts[V] = Pick(Rng) < 7 ? Small(Rng) : Large(Rng);
      W.Total += W.Counts[V];
    }
    return W;
  }
};

struct RunOutcome {
  std::vector<int32_t> Out;
  int32_t Acc = 0;
  VmStats Stats;
};

/// Runs either version of a program: allocates buffers, invokes `parent`
/// (directly, or through a generated `parent_agg` wrapper when present).
RunOutcome runProgram(const std::string &Source, const Workload &W,
                      bool WithAcc, unsigned ParentBlock = 128) {
  DiagnosticEngine Diags;
  auto Dev = buildDevice(Source, Diags);
  EXPECT_NE(Dev, nullptr) << Diags.str() << "\nsource:\n" << Source;
  RunOutcome Outcome;
  if (!Dev)
    return Outcome;

  int NumV = (int)W.Counts.size();
  uint64_t Out = Dev->alloc(std::max(1, W.Total) * 4);
  uint64_t Acc = Dev->alloc(4);
  uint64_t Counts = Dev->allocI32(W.Counts);
  uint64_t Offsets = Dev->allocI32(W.Offsets);

  std::vector<int64_t> Args;
  Args.push_back((int64_t)Out);
  if (WithAcc)
    Args.push_back((int64_t)Acc);
  Args.push_back((int64_t)Counts);
  Args.push_back((int64_t)Offsets);
  Args.push_back(NumV);

  unsigned GridX = (NumV + ParentBlock - 1) / ParentBlock;
  bool Ok;
  DiagnosticEngine ProbeDiags;
  ASTContext ProbeCtx;
  TranslationUnit *TU = parseSource(Source, ProbeCtx, ProbeDiags);
  bool HasWrapper = TU && TU->findFunction("parent_agg");
  if (HasWrapper) {
    std::vector<int64_t> HostArgs = {GridX, 1, 1, ParentBlock, 1, 1};
    HostArgs.insert(HostArgs.end(), Args.begin(), Args.end());
    Ok = Dev->callHost("parent_agg", HostArgs);
  } else {
    Ok = Dev->launchKernel("parent", {GridX, 1, 1}, {ParentBlock, 1, 1}, Args);
  }
  EXPECT_TRUE(Ok) << Dev->error() << "\nsource:\n" << Source;
  if (!Ok)
    return Outcome;

  Outcome.Out = Dev->readI32Array(Out, std::max(1, W.Total));
  Outcome.Acc = Dev->readI32(Acc);
  Outcome.Stats = Dev->stats();
  return Outcome;
}

struct PipelineConfig {
  const char *Name;
  bool T, C, A;
  AggGranularity Granularity;
  unsigned Threshold;
  unsigned Factor;
  bool AggThreshold;
};

std::string transformWith(const std::string &Source,
                          const PipelineConfig &Config) {
  PipelineOptions Options;
  Options.EnableThresholding = Config.T;
  Options.EnableCoarsening = Config.C;
  Options.EnableAggregation = Config.A;
  Options.Thresholding.Threshold = Config.Threshold;
  Options.Coarsening.Factor = Config.Factor;
  Options.Aggregation.Granularity = Config.Granularity;
  Options.Aggregation.GroupSize = 4;
  Options.Aggregation.UseAggregationThreshold = Config.AggThreshold;
  Options.Aggregation.AggregationThreshold = 3;
  Options.useLiteralKnobs();
  DiagnosticEngine Diags;
  std::string Result = transformSource(Source, Options, Diags);
  EXPECT_FALSE(Result.empty()) << Diags.str();
  return Result;
}

const PipelineConfig Configs[] = {
    {"T_low", true, false, false, AggGranularity::None, 8, 1, false},
    {"T_high", true, false, false, AggGranularity::None, 1000000, 1, false},
    {"T_mid", true, false, false, AggGranularity::None, 64, 1, false},
    {"C2", false, true, false, AggGranularity::None, 0, 2, false},
    {"C8", false, true, false, AggGranularity::None, 0, 8, false},
    {"A_warp", false, false, true, AggGranularity::Warp, 0, 1, false},
    {"A_block", false, false, true, AggGranularity::Block, 0, 1, false},
    {"A_multiblock", false, false, true, AggGranularity::MultiBlock, 0, 1,
     false},
    {"A_grid", false, false, true, AggGranularity::Grid, 0, 1, false},
    {"A_block_thresh", false, false, true, AggGranularity::Block, 0, 1, true},
    {"TC", true, true, false, AggGranularity::None, 32, 4, false},
    {"TA_multiblock", true, false, true, AggGranularity::MultiBlock, 32, 1,
     false},
    {"CA_block", false, true, true, AggGranularity::Block, 0, 4, false},
    {"TCA_multiblock", true, true, true, AggGranularity::MultiBlock, 32, 2,
     false},
    {"TCA_grid", true, true, true, AggGranularity::Grid, 16, 4, false},
    {"TCA_warp", true, true, true, AggGranularity::Warp, 16, 2, false},
};

class EquivalenceTest : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(EquivalenceTest, NestedWorkload) {
  const PipelineConfig &Config = GetParam();
  Workload W = Workload::random(/*Seed=*/1234, /*NumV=*/300, /*MaxCount=*/200);
  RunOutcome Reference = runProgram(NestedSource, W, /*WithAcc=*/false);
  std::string Transformed = transformWith(NestedSource, Config);
  RunOutcome Result = runProgram(Transformed, W, /*WithAcc=*/false);
  ASSERT_EQ(Reference.Out.size(), Result.Out.size());
  for (size_t I = 0; I < Reference.Out.size(); ++I)
    ASSERT_EQ(Reference.Out[I], Result.Out[I])
        << "config " << Config.Name << " diverges at element " << I << "\n"
        << Transformed;
}

TEST_P(EquivalenceTest, VaryingBlockDims) {
  const PipelineConfig &Config = GetParam();
  Workload W = Workload::random(/*Seed=*/77, /*NumV=*/200, /*MaxCount=*/150);
  RunOutcome Reference = runProgram(VaryingBlockDimSource, W, /*WithAcc=*/true);
  std::string Transformed = transformWith(VaryingBlockDimSource, Config);
  RunOutcome Result = runProgram(Transformed, W, /*WithAcc=*/true);
  ASSERT_EQ(Reference.Out.size(), Result.Out.size());
  for (size_t I = 0; I < Reference.Out.size(); ++I)
    ASSERT_EQ(Reference.Out[I], Result.Out[I])
        << "config " << Config.Name << " diverges at element " << I;
  EXPECT_EQ(Reference.Acc, Result.Acc) << "config " << Config.Name;
}

TEST_P(EquivalenceTest, EarlyReturnChild) {
  const PipelineConfig &Config = GetParam();
  Workload W = Workload::random(/*Seed=*/999, /*NumV=*/150, /*MaxCount=*/180);
  RunOutcome Reference = runProgram(EarlyReturnSource, W, /*WithAcc=*/false);
  std::string Transformed = transformWith(EarlyReturnSource, Config);
  RunOutcome Result = runProgram(Transformed, W, /*WithAcc=*/false);
  ASSERT_EQ(Reference.Out.size(), Result.Out.size());
  for (size_t I = 0; I < Reference.Out.size(); ++I)
    ASSERT_EQ(Reference.Out[I], Result.Out[I])
        << "config " << Config.Name << " diverges at element " << I;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EquivalenceTest, ::testing::ValuesIn(Configs),
    [](const ::testing::TestParamInfo<PipelineConfig> &Info) {
      return std::string(Info.param.Name);
    });

// Behavioral (not just functional) checks via VM statistics.

TEST(TransformBehaviorTest, ThresholdingReducesLaunches) {
  Workload W = Workload::random(42, 400, 100);
  RunOutcome Base = runProgram(NestedSource, W, false);

  PipelineConfig Low{"", true, false, false, AggGranularity::None, 8, 1, false};
  RunOutcome WithLow =
      runProgram(transformWith(NestedSource, Low), W, false);

  PipelineConfig High{"", true, false, false, AggGranularity::None, 1000000, 1,
                      false};
  RunOutcome WithHigh =
      runProgram(transformWith(NestedSource, High), W, false);

  EXPECT_LT(WithLow.Stats.DeviceLaunches, Base.Stats.DeviceLaunches);
  // An unreachable threshold serializes everything: zero dynamic launches.
  EXPECT_EQ(WithHigh.Stats.DeviceLaunches, 0u);
  EXPECT_GT(Base.Stats.DeviceLaunches, 0u);
}

TEST(TransformBehaviorTest, AggregationReducesLaunches) {
  Workload W = Workload::random(43, 400, 100);
  RunOutcome Base = runProgram(NestedSource, W, false);

  PipelineConfig Agg{"", false, false, true, AggGranularity::MultiBlock, 0, 1,
                     false};
  RunOutcome WithAgg = runProgram(transformWith(NestedSource, Agg), W, false);

  // One aggregated launch per group of 4 parent blocks (at most), instead
  // of one per launching parent thread.
  EXPECT_LT(WithAgg.Stats.DeviceLaunches, Base.Stats.DeviceLaunches / 10);
  EXPECT_GT(WithAgg.Stats.DeviceLaunches, 0u);
}

TEST(TransformBehaviorTest, GridAggregationLaunchesOnce) {
  Workload W = Workload::random(44, 300, 80);
  PipelineConfig Agg{"", false, false, true, AggGranularity::Grid, 0, 1, false};
  RunOutcome WithAgg = runProgram(transformWith(NestedSource, Agg), W, false);
  // All child grids collapse into a single host-side launch.
  EXPECT_EQ(WithAgg.Stats.DeviceLaunches, 0u);
}

TEST(TransformBehaviorTest, CoarseningShrinksChildGrids) {
  Workload W = Workload::random(45, 200, 300);
  RunOutcome Base = runProgram(NestedSource, W, false);

  PipelineConfig C8{"", false, true, false, AggGranularity::None, 0, 8, false};
  RunOutcome WithC = runProgram(transformWith(NestedSource, C8), W, false);

  // Same number of launches, fewer blocks executed in children.
  EXPECT_EQ(WithC.Stats.DeviceLaunches, Base.Stats.DeviceLaunches);
  EXPECT_LT(WithC.Stats.BlocksExecuted, Base.Stats.BlocksExecuted);
}

} // namespace
