//===--- PeepholeTest.cpp - Bytecode optimizer unit tests ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two kinds of checks on vm/Peephole.cpp:
///  - structural: specific sources must produce specific fusions/folds
///    (GlobalTidX, IncLocalI32, fused compare-and-branch, constant
///    folding, dead stack-shuffle elimination);
///  - dynamic: a battery of kernels is executed with the optimizer on and
///    off and the resulting device memory compared bit-for-bit, proving
///    the superinstructions are semantics-preserving (the fuzz suite
///    extends this to randomized programs).
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "vm/Compiler.h"
#include "vm/Peephole.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dpo;

namespace {

VmProgram compileSource(std::string_view Source, bool Optimize) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  if (!TU)
    return {};
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Program;
}

unsigned countOp(const FuncDef &F, Op Code) {
  return (unsigned)std::count_if(F.Code.begin(), F.Code.end(),
                                 [&](const Instr &I) { return I.Code == Code; });
}

const FuncDef *findFunc(const VmProgram &P, const std::string &Name) {
  const FuncDef *F = P.find(Name);
  EXPECT_NE(F, nullptr) << "no function '" << Name << "'";
  return F;
}

std::string disassemble(const FuncDef &F) {
  std::string S;
  for (size_t I = 0; I < F.Code.size(); ++I)
    S += std::to_string(I) + ": " + opName(F.Code[I].Code) + " " +
         std::to_string(F.Code[I].A) + " " + std::to_string(F.Code[I].B) +
         "\n";
  return S;
}

TEST(PeepholeTest, GlobalTidFusion) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // The 7-instruction tid idiom collapses into one superinstruction with
  // the int32 wrap folded in; no raw special-register reads remain.
  EXPECT_EQ(countOp(*K, Op::GlobalTidX), 1u) << disassemble(*K);
  EXPECT_EQ(K->Code[0].Code, Op::GlobalTidX) << disassemble(*K);
  EXPECT_EQ(K->Code[0].B, 1) << "expected the signed (int) wrap";
  EXPECT_EQ(countOp(*K, Op::SReg), 0u) << disassemble(*K);
  // `i` is provably int32-normalized, so its loads carry no re-wrap; only
  // the untrusted parameter `n` keeps one TruncI.
  EXPECT_LE(countOp(*K, Op::TruncI), 1u) << disassemble(*K);
}

TEST(PeepholeTest, GlobalTidFusionCommuted) {
  const char *Source = R"(
__global__ void k(unsigned int *out) {
  out[threadIdx.x + blockIdx.x * blockDim.x] = 1u;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(countOp(*K, Op::GlobalTidX), 1u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::SReg), 0u) << disassemble(*K);
}

TEST(PeepholeTest, ConstantFolding) {
  const char *Source = R"(
__global__ void k(int *out) {
  out[0] = 2 + 3 * 4;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // The arithmetic folds to a single constant and the zero subscript
  // disappears as an identity: LoadLocal out; PushI 14; StI32; RetVoid.
  EXPECT_EQ(countOp(*K, Op::AddI), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::MulI), 0u) << disassemble(*K);
  unsigned Push14 = 0;
  for (const Instr &I : K->Code)
    if (I.Code == Op::PushI && I.A == 14)
      ++Push14;
  EXPECT_EQ(Push14, 1u) << disassemble(*K);
  EXPECT_LE(K->Code.size(), 4u) << disassemble(*K);
}

TEST(PeepholeTest, LoopFusesCounterAndBranch) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i)
    sum = sum + i;
  out[0] = sum;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // ++i becomes IncLocalI32 and `i < n` + exit branch fuse into JmpIfGEI.
  EXPECT_GE(countOp(*K, Op::IncLocalI32), 1u) << disassemble(*K);
  EXPECT_GE(countOp(*K, Op::JmpIfGEI), 1u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::CmpLTI), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::JmpIfZero), 0u) << disassemble(*K);
}

TEST(PeepholeTest, ArrayAddressFusion) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int base = i * 2;
  if (i < n) out[base + i] = 7;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // base + i pairs into LoadLoadAddI (both locals are provably
  // normalized), and the *4 + addr scaling folds all the way into the
  // scaled store: [MulImmAddI 4; PushI 7; StI32] -> [PushI 7; StI32Sc].
  EXPECT_EQ(countOp(*K, Op::LoadLoadAddI), 1u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::StI32Sc), 1u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::MulImmAddI), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::StI32), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::MulI), 0u) << disassemble(*K);
}

TEST(PeepholeTest, IndexedLoadFusion) {
  // counts[v] with a provably-int32 v: the whole address formation and
  // load collapse into one LoadLocal-indexed load.
  const char *Source = R"(
__global__ void k(int *out, int *counts, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int count = counts[v];
    out[v] = count * 2;
  }
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  EXPECT_GE(countOp(*K, Op::LdI32Idx), 1u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::LdI32), 0u) << disassemble(*K);
}

TEST(PeepholeTest, DataflowTracksStrideLoops) {
  // stride starts at blockDim.x / 2 (range [0, 512] via the
  // positive-divisor rule) and halves each round; threadIdx.x + stride
  // stays within int32, so the shared-memory indices need no re-wrap
  // and the scaled loads/stores fuse.
  const char *Source = R"(
__global__ void k(int *out, int n) {
  __shared__ int scratch[64];
  scratch[threadIdx.x] = (int)threadIdx.x;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    out[blockIdx.x] = scratch[0];
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // The scratch[threadIdx.x + stride] read keeps no TruncI on its index
  // and at least one scaled access formed somewhere in the kernel.
  EXPECT_GE(countOp(*K, Op::LdI32Sc) + countOp(*K, Op::LdI32Idx) +
                countOp(*K, Op::StI32Sc),
            1u)
      << disassemble(*K);
}

TEST(PeepholeTest, DeadShufflesEliminated) {
  const char *Source = R"(
__global__ void k(int *out, int a, int b) {
  a + b;
  a * 2 - b;
  out[0] = a;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  // Discarded pure expressions compile to compute-then-Pop; the Pop
  // absorption rules must dissolve them entirely.
  EXPECT_EQ(countOp(*K, Op::Pop), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::AddI), 0u) << disassemble(*K);
  EXPECT_EQ(countOp(*K, Op::SubI), 0u) << disassemble(*K);
}

TEST(PeepholeTest, DisabledLeavesBaseOpcodesOnly) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i * 2 + 1;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/false);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  for (const Instr &I : K->Code)
    EXPECT_LE((unsigned)I.Code, (unsigned)Op::Trap)
        << "unexpected superinstruction " << opName(I.Code)
        << " with the optimizer disabled";
  // And the optimizer, run directly, must strictly shrink this kernel.
  FuncDef Copy = *K;
  PeepholeStats Stats = optimizeFunction(Copy);
  EXPECT_LT(Stats.InstrsAfter, Stats.InstrsBefore);
  EXPECT_GE(Stats.Rounds, 1u);
}

TEST(PeepholeTest, ParamSlotsFollowTheEntryNormalizationContract) {
  // Integer parameter slots are wrapped to their declared widths when a
  // frame is entered (paramSlotNorm in Bytecode.h), so the peephole may
  // drop the per-use re-wraps the old store-site-local analysis had to
  // keep: a `unsigned int` parameter is a provable uint32.
  const char *Source = R"(
__global__ void k(unsigned int *out, unsigned int big) {
  out[0] = big / 2u;
}
)";
  VmProgram P = compileSource(Source, /*Optimize=*/true);
  const FuncDef *K = findFunc(P, "k");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(countOp(*K, Op::TruncI), 0u) << disassemble(*K);

  // And the contract holds dynamically on *both* engines: a host passing
  // an out-of-range slot value sees it wrapped at entry, exactly as the
  // hardware ABI would truncate it.
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::Bytecode}) {
    DiagnosticEngine Diags;
    ASTContext Ctx;
    TranslationUnit *TU = parseSource(Source, Ctx, Diags);
    ASSERT_NE(TU, nullptr);
    VmProgram Prog = compileProgram(TU, Diags, {});
    ASSERT_FALSE(Diags.hasErrors());
    Device Dev(std::move(Prog), 16ull << 20, Mode);
    uint64_t Out = Dev.alloc(4);
    int64_t Big = (int64_t)((1ull << 32) | 10); // wraps to 10
    ASSERT_TRUE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                 {(int64_t)Out, Big}))
        << Dev.error();
    EXPECT_EQ(Dev.readU32(Out), 5u);
  }
}

//===----------------------------------------------------------------------===//
// Dynamic on/off equivalence
//===----------------------------------------------------------------------===//

/// Runs `k(out, n)` over a grid with the optimizer on and off and
/// compares the full output buffer.
void expectEquivalent(const char *Source, int N, Dim3V Grid, Dim3V Block) {
  std::vector<int32_t> Results[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    VmCompileOptions Opts;
    Opts.OptimizeBytecode = Pass == 1;
    DiagnosticEngine Diags;
    auto Dev = buildDevice(Source, Diags, Opts);
    ASSERT_NE(Dev, nullptr) << Diags.str();
    uint64_t Out = Dev->alloc((uint64_t)N * 4);
    ASSERT_TRUE(Dev->launchKernel("k", Grid, Block, {(int64_t)Out, N}))
        << Dev->error();
    Results[Pass] = Dev->readI32Array(Out, N);
  }
  EXPECT_EQ(Results[0], Results[1]) << Source;
}

TEST(PeepholeEquivalenceTest, LoopsAndBranches) {
  expectEquivalent(R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int sum = 0;
    for (int j = 0; j <= i; ++j) {
      if (j % 3 == 0) continue;
      if (j > 40) break;
      sum += j * 2 - 1;
    }
    out[i] = sum;
  }
}
)",
                   100, {4, 1, 1}, {32, 1, 1});
}

TEST(PeepholeEquivalenceTest, UnsignedWraparound) {
  expectEquivalent(R"(
__global__ void k(int *out, int n) {
  unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < (unsigned int)n) {
    unsigned int x = 0u;
    x = x - (i + 1u);
    out[i] = (int)(x >> 16);
  }
}
)",
                   64, {2, 1, 1}, {32, 1, 1});
}

TEST(PeepholeEquivalenceTest, SharedMemoryReduction) {
  expectEquivalent(R"(
__global__ void k(int *out, int n) {
  __shared__ int scratch[64];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < n ? i * 3 + 1 : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    out[blockIdx.x] = scratch[0];
}
)",
                   4, {4, 1, 1}, {64, 1, 1});
}

TEST(PeepholeEquivalenceTest, RecursionAndCalls) {
  expectEquivalent(R"(
__device__ int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
__global__ void k(int *out, int n) {
  if (threadIdx.x < (unsigned int)n)
    out[threadIdx.x] = fib(threadIdx.x % 12);
}
)",
                   16, {1, 1, 1}, {16, 1, 1});
}

TEST(PeepholeEquivalenceTest, FloatArithmetic) {
  expectEquivalent(R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float x = 1.5f * i + 0.25f;
    float y = sqrtf(x) - 2.0f / (x + 1.0f);
    out[i] = (int)(y * 1000.0f);
  }
}
)",
                   80, {3, 1, 1}, {32, 1, 1});
}

TEST(PeepholeEquivalenceTest, DynamicParentChild) {
  const char *Source = R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) atomicAdd(&out[base + i], i + 1);
}
__global__ void k(int *out, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    child<<<(v + 7) / 8, 8>>>(out, v * 2, v);
  }
}
)";
  std::vector<int32_t> Results[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    VmCompileOptions Opts;
    Opts.OptimizeBytecode = Pass == 1;
    DiagnosticEngine Diags;
    auto Dev = buildDevice(Source, Diags, Opts);
    ASSERT_NE(Dev, nullptr) << Diags.str();
    uint64_t Out = Dev->alloc(256 * 4);
    ASSERT_TRUE(Dev->launchKernel("k", {2, 1, 1}, {16, 1, 1},
                                  {(int64_t)Out, 30}))
        << Dev->error();
    Results[Pass] = Dev->readI32Array(Out, 256);
    // The launch structure itself must be identical, not just the output
    // (all 30 parents launch; v = 0 enqueues an empty grid).
    EXPECT_EQ(Dev->stats().DeviceLaunches, 30u);
  }
  EXPECT_EQ(Results[0], Results[1]);
}

TEST(PeepholeEquivalenceTest, TrapsStillFire) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  out[0] = 10 / (n - n);
}
)";
  for (int Pass = 0; Pass < 2; ++Pass) {
    VmCompileOptions Opts;
    Opts.OptimizeBytecode = Pass == 1;
    DiagnosticEngine Diags;
    auto Dev = buildDevice(Source, Diags, Opts);
    ASSERT_NE(Dev, nullptr) << Diags.str();
    uint64_t Out = Dev->alloc(4);
    EXPECT_FALSE(Dev->launchKernel("k", {1, 1, 1}, {1, 1, 1},
                                   {(int64_t)Out, 5}));
    EXPECT_NE(Dev->error().find("division by zero"), std::string::npos)
        << Dev->error();
  }
}

} // namespace
