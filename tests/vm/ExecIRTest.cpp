//===--- ExecIRTest.cpp - decoded execution IR unit tests ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and dynamic checks on the bytecode -> decoded-IR lowering
/// (vm/ExecIR.cpp) and the decoded dispatch loop:
///  - decode is 1:1 except for the declared pair fusions, whose step
///    costs sum to the bytecode instruction count;
///  - fusion never crosses a jump target and jump operands are rebuilt;
///  - both engines produce bit-identical memory and identical VmStats on
///    kernels covering calls, barriers, launches, and frame memory;
///  - the DPO_VM_EXEC environment override and the explicit ExecMode
///    both select the engine.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "vm/ExecIR.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

VmProgram compileSource(std::string_view Source, bool Optimize = true) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  if (!TU)
    return {};
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Program;
}

TEST(ExecIRTest, DecodeIsOneToOneModuloFusions) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int x = 7;
    int y = x;
    out[i] = y;
  }
}
)";
  VmProgram P = compileSource(Source);
  ExecProgram E = decodeProgram(P, nullptr);
  ASSERT_EQ(E.Functions.size(), P.Functions.size());
  EXPECT_EQ(E.Stats.InstrsIn, (uint64_t)P.Functions[0].Code.size());
  EXPECT_EQ(E.Stats.InstrsOut + E.Stats.FusedPairs, E.Stats.InstrsIn)
      << "every fusion merges exactly two instructions";
  // Step costs over the baseline region must sum back to the bytecode
  // instruction count, the invariant that keeps VmStats identical across
  // engines. The trace region past TraceBase is an alternate encoding of
  // the same paths, not an extension of this sum.
  uint64_t CostSum = 0;
  for (unsigned I = 0; I < E.Functions[0].TraceBase; ++I)
    CostSum += E.Functions[0].Code[I].Cost;
  EXPECT_EQ(CostSum, (uint64_t)P.Functions[0].Code.size());
  // `int x = 7;` decodes into the fused immediate store.
  unsigned StoreImm = 0, CopyLocal = 0, TidStore = 0;
  for (const ExecInstr &I : E.Functions[0].Code) {
    StoreImm += I.Code == (uint16_t)XOp::StoreLocalImm;
    CopyLocal += I.Code == (uint16_t)XOp::CopyLocal;
    TidStore += I.Code == (uint16_t)XOp::GlobalTidStore;
  }
  EXPECT_GE(StoreImm + CopyLocal, 1u);
  EXPECT_EQ(TidStore, 1u) << "the tid idiom decodes into one fused store";
}

TEST(ExecIRTest, JumpTargetsSurviveDecodeFusion) {
  // A loop whose back-edge lands exactly on an instruction that follows
  // a fusable pair: jumps must be remapped onto decoded indices.
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) {
    int t = i;
    sum = sum + t;
  }
  out[0] = sum;
}
)";
  VmProgram P = compileSource(Source);
  ExecProgram E = decodeProgram(P, nullptr);
  const ExecFunc &F = E.Functions[0];
  for (const ExecInstr &I : F.Code)
    if (I.Code < NumOpcodes && isJumpOp((Op)I.Code))
      EXPECT_LT((uint64_t)I.A, F.Code.size()) << "remapped target in range";

  // And the loop still computes the right sum on every engine.
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
    VmProgram Prog = compileSource(Source);
    Device Dev(std::move(Prog), 16ull << 20, Mode);
    uint64_t Out = Dev.alloc(4);
    ASSERT_TRUE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 10}))
        << Dev.error();
    EXPECT_EQ(Dev.readI32(Out), 45);
  }
}

/// Runs `k(out, n)` on all three engines (peephole on and off) and
/// compares device memory bit-for-bit plus the full VmStats.
void expectEngineEquivalent(const char *Source, int N, Dim3V Grid,
                            Dim3V Block) {
  for (bool Optimize : {true, false}) {
    std::vector<int32_t> Results[3];
    VmStats Stats[3];
    int Idx = 0;
    for (ExecMode Mode :
         {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
      VmProgram P = compileSource(Source, Optimize);
      Device Dev(std::move(P), 32ull << 20, Mode);
      ASSERT_EQ(Dev.execMode(), Mode);
      uint64_t Out = Dev.alloc((uint64_t)N * 4);
      ASSERT_TRUE(Dev.launchKernel("k", Grid, Block, {(int64_t)Out, N}))
          << Dev.error();
      Results[Idx] = Dev.readI32Array(Out, N);
      Stats[Idx] = Dev.stats();
      ++Idx;
    }
    for (int I = 1; I < 3; ++I) {
      EXPECT_EQ(Results[0], Results[I]) << Source << " engine " << I;
      EXPECT_EQ(Stats[0].Steps, Stats[I].Steps)
          << "step accounting diverged, engine=" << I
          << " peephole=" << Optimize;
      EXPECT_EQ(Stats[0].GridsLaunched, Stats[I].GridsLaunched);
      EXPECT_EQ(Stats[0].DeviceLaunches, Stats[I].DeviceLaunches);
      EXPECT_EQ(Stats[0].ThreadsExecuted, Stats[I].ThreadsExecuted);
    }
  }
}

TEST(ExecIRTest, EnginesAgreeOnCallsAndFrames) {
  expectEngineEquivalent(R"(
__device__ int helper(int x, int depth) {
  int buf[4];
  buf[x % 4] = x;
  if (depth > 0) return helper(x + 1, depth - 1) + buf[x % 4];
  return buf[x % 4];
}
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = helper(i, i % 5);
}
)",
                         64, {2, 1, 1}, {32, 1, 1});
}

TEST(ExecIRTest, EnginesAgreeOnBarriersAndShared) {
  expectEngineEquivalent(R"(
__global__ void k(int *out, int n) {
  __shared__ int scratch[64];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < n ? i * 3 + 1 : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    out[blockIdx.x] = scratch[0];
}
)",
                         4, {4, 1, 1}, {64, 1, 1});
}

TEST(ExecIRTest, EnginesAgreeOnDynamicLaunches) {
  expectEngineEquivalent(R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) atomicAdd(&out[base + i], i + 1);
}
__global__ void k(int *out, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    child<<<(v + 7) / 8, 8>>>(out, v * 2, v);
  }
}
)",
                         256, {2, 1, 1}, {16, 1, 1});
}

TEST(ExecIRTest, TrapsAndStepLimitsFireOnBothEngines) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  out[0] = 10 / (n - n);
}
)";
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P), 16ull << 20, Mode);
    uint64_t Out = Dev.alloc(4);
    EXPECT_FALSE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 5}));
    EXPECT_NE(Dev.error().find("division by zero"), std::string::npos)
        << Dev.error();
  }
  const char *Loop = R"(
__global__ void k(int *out, int n) {
  while (n < 100) { n = n - 1; if (n < -1000000) n = 0; }
  out[0] = n;
}
)";
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
    VmProgram P = compileSource(Loop);
    Device Dev(std::move(P), 16ull << 20, Mode);
    Dev.setStepLimit(10000);
    uint64_t Out = Dev.alloc(4);
    EXPECT_FALSE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 5}));
    EXPECT_NE(Dev.error().find("step limit"), std::string::npos) << Dev.error();
  }
}

TEST(ExecIRTest, EnvironmentOverrideSelectsEngine) {
#if defined(_WIN32)
  GTEST_SKIP() << "setenv not available";
#else
  const char *Source = "__global__ void k(int *out, int n) { out[0] = n; }";
  ASSERT_EQ(setenv("DPO_VM_EXEC", "bytecode", 1), 0);
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P));
    EXPECT_EQ(Dev.execMode(), ExecMode::Bytecode);
  }
  unsetenv("DPO_VM_EXEC");
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P));
    EXPECT_EQ(Dev.execMode(), ExecMode::Decoded);
  }
  // Explicit modes beat the environment.
  ASSERT_EQ(setenv("DPO_VM_EXEC", "bytecode", 1), 0);
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
    EXPECT_EQ(Dev.execMode(), ExecMode::Decoded);
  }
  unsetenv("DPO_VM_EXEC");
  // The trace escape hatch: decoded dispatch without superblocks.
  ASSERT_EQ(setenv("DPO_VM_EXEC", "decoded-notrace", 1), 0);
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P));
    EXPECT_EQ(Dev.execMode(), ExecMode::DecodedNoTrace);
    EXPECT_EQ(Dev.decodeStats().TracesFormed, 0u);
  }
  unsetenv("DPO_VM_EXEC");
#endif
}

TEST(ExecIRTest, DecodeStatsExposedOnDevice) {
  VmProgram P = compileSource(R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i;
}
)");
  uint64_t Instrs = P.Functions[0].Code.size();
  Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
  EXPECT_EQ(Dev.decodeStats().InstrsIn, Instrs);
  EXPECT_GT(Dev.decodeStats().InstrsOut, 0u);
}

//===----------------------------------------------------------------------===//
// Trace layer: superblock formation, side exits, and the exact-step
// contract under abort and concurrency.
//===----------------------------------------------------------------------===//

/// A hot counted loop with a data-dependent early exit: forms a loop
/// trace with at least one guard that actually fires.
const char *TracedLoopSource = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int sum = 0;
  for (int j = 0; j < n; ++j) {
    sum = sum + (i ^ j);
    if (sum > 100000)
      break;
  }
  if (i < n) out[i] = sum;
}
)";

TEST(ExecIRTest, LoopKernelsFormTracesAndRetireThroughThem) {
  VmProgram P = compileSource(TracedLoopSource);
  Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
  ASSERT_GT(Dev.decodeStats().TracesFormed, 0u)
      << "a counted loop must form at least one trace";
  EXPECT_GT(Dev.decodeStats().TraceInstrs, 0u);
  uint64_t Out = Dev.alloc(64 * 4);
  ASSERT_TRUE(
      Dev.launchKernel("k", {2, 1, 1}, {32, 1, 1}, {(int64_t)Out, 64}))
      << Dev.error();
  const VmStats &S = Dev.stats();
  EXPECT_GT(S.TraceEntries, 0u) << "threads must enter the formed trace";
  EXPECT_GT(S.TraceIters, 0u) << "the loop trace must take its back edge";
  EXPECT_GT(S.TraceSideExits, 0u)
      << "the break guard must side-exit at least once";
}

TEST(ExecIRTest, UntracedEnginesReportNoTraceActivity) {
  for (ExecMode Mode : {ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
    VmProgram P = compileSource(TracedLoopSource);
    Device Dev(std::move(P), 16ull << 20, Mode);
    EXPECT_EQ(Dev.decodeStats().TracesFormed, 0u);
    uint64_t Out = Dev.alloc(64 * 4);
    ASSERT_TRUE(
        Dev.launchKernel("k", {2, 1, 1}, {32, 1, 1}, {(int64_t)Out, 64}))
        << Dev.error();
    EXPECT_EQ(Dev.stats().TraceEntries, 0u);
    EXPECT_EQ(Dev.stats().TraceIters, 0u);
    EXPECT_EQ(Dev.stats().TraceSideExits, 0u);
  }
}

TEST(ExecIRTest, StepLimitAbortsMidTraceWithExactAccounting) {
  // The infinite loop spins inside a trace; the budget must trip at the
  // same retired-step count on every engine even though the traced
  // engine charges multi-instruction regions at once.
  const char *Loop = R"(
__global__ void k(int *out, int n) {
  int sum = 0;
  for (int j = 0; j < 2000000000; ++j) {
    sum = sum + (n ^ j);
    if (sum < -2000000000) break;
  }
  out[0] = sum;
}
)";
  uint64_t StepsAtAbort[3];
  int Idx = 0;
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode}) {
    VmProgram P = compileSource(Loop);
    Device Dev(std::move(P), 16ull << 20, Mode);
    if (Mode == ExecMode::Decoded)
      ASSERT_GT(Dev.decodeStats().TracesFormed, 0u);
    Dev.setStepLimit(12345);
    uint64_t Out = Dev.alloc(4);
    EXPECT_FALSE(
        Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 5}));
    EXPECT_NE(Dev.error().find("step limit"), std::string::npos)
        << Dev.error();
    StepsAtAbort[Idx++] = Dev.stats().Steps;
  }
  EXPECT_EQ(StepsAtAbort[0], StepsAtAbort[1])
      << "mid-trace abort charged a different step count";
  EXPECT_EQ(StepsAtAbort[0], StepsAtAbort[2]);
}

TEST(ExecIRTest, TracedExecutionComposesWithWorkerPool) {
  // Device-launched child grids with a traced hot loop, drained by 2 and
  // 4 workers: payload identical to the single-worker run (the children
  // claim work through an atomic), and the single-worker runs pin the
  // exact step count the tuner prices against.
  const char *Source = R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    int sum = 0;
    for (int j = 0; j <= i + base; ++j)
      sum = sum + j;
    atomicAdd(&out[(base + i) % 64], sum);
  }
}
__global__ void k(int *out, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n)
    child<<<(v + 7) / 8, 8>>>(out, v, v);
}
)";
  auto RunAt = [&](unsigned Workers, std::vector<int32_t> &Out,
                   uint64_t &Steps) {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
    ASSERT_GT(Dev.decodeStats().TracesFormed, 0u);
    Dev.setWorkers(Workers);
    uint64_t OutA = Dev.alloc(64 * 4);
    ASSERT_TRUE(
        Dev.launchKernel("k", {2, 1, 1}, {16, 1, 1}, {(int64_t)OutA, 32}))
        << Dev.error();
    EXPECT_GT(Dev.stats().TraceEntries, 0u);
    Out = Dev.readI32Array(OutA, 64);
    Steps = Dev.stats().Steps;
  };
  std::vector<int32_t> Solo, Solo2, Par;
  uint64_t SoloSteps = 0, Solo2Steps = 0, ParSteps = 0;
  RunAt(1, Solo, SoloSteps);
  RunAt(1, Solo2, Solo2Steps);
  EXPECT_EQ(SoloSteps, Solo2Steps)
      << "single-worker traced execution must stay step-deterministic";
  for (unsigned Workers : {2u, 4u}) {
    RunAt(Workers, Par, ParSteps);
    EXPECT_EQ(Solo, Par) << "payload diverged at workers=" << Workers;
  }
}

} // namespace
