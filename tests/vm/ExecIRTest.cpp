//===--- ExecIRTest.cpp - decoded execution IR unit tests ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and dynamic checks on the bytecode -> decoded-IR lowering
/// (vm/ExecIR.cpp) and the decoded dispatch loop:
///  - decode is 1:1 except for the declared pair fusions, whose step
///    costs sum to the bytecode instruction count;
///  - fusion never crosses a jump target and jump operands are rebuilt;
///  - both engines produce bit-identical memory and identical VmStats on
///    kernels covering calls, barriers, launches, and frame memory;
///  - the DPO_VM_EXEC environment override and the explicit ExecMode
///    both select the engine.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "vm/ExecIR.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

VmProgram compileSource(std::string_view Source, bool Optimize = true) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  if (!TU)
    return {};
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Program;
}

TEST(ExecIRTest, DecodeIsOneToOneModuloFusions) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int x = 7;
    int y = x;
    out[i] = y;
  }
}
)";
  VmProgram P = compileSource(Source);
  ExecProgram E = decodeProgram(P, nullptr);
  ASSERT_EQ(E.Functions.size(), P.Functions.size());
  EXPECT_EQ(E.Stats.InstrsIn, (uint64_t)P.Functions[0].Code.size());
  EXPECT_EQ(E.Stats.InstrsOut + E.Stats.FusedPairs, E.Stats.InstrsIn)
      << "every fusion merges exactly two instructions";
  // Step costs must sum back to the bytecode instruction count, the
  // invariant that keeps VmStats identical across engines.
  uint64_t CostSum = 0;
  for (const ExecInstr &I : E.Functions[0].Code)
    CostSum += I.Cost;
  EXPECT_EQ(CostSum, (uint64_t)P.Functions[0].Code.size());
  // `int x = 7;` decodes into the fused immediate store.
  unsigned StoreImm = 0, CopyLocal = 0, TidStore = 0;
  for (const ExecInstr &I : E.Functions[0].Code) {
    StoreImm += I.Code == (uint16_t)XOp::StoreLocalImm;
    CopyLocal += I.Code == (uint16_t)XOp::CopyLocal;
    TidStore += I.Code == (uint16_t)XOp::GlobalTidStore;
  }
  EXPECT_GE(StoreImm + CopyLocal, 1u);
  EXPECT_EQ(TidStore, 1u) << "the tid idiom decodes into one fused store";
}

TEST(ExecIRTest, JumpTargetsSurviveDecodeFusion) {
  // A loop whose back-edge lands exactly on an instruction that follows
  // a fusable pair: jumps must be remapped onto decoded indices.
  const char *Source = R"(
__global__ void k(int *out, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) {
    int t = i;
    sum = sum + t;
  }
  out[0] = sum;
}
)";
  VmProgram P = compileSource(Source);
  ExecProgram E = decodeProgram(P, nullptr);
  const ExecFunc &F = E.Functions[0];
  for (const ExecInstr &I : F.Code)
    if (I.Code < NumOpcodes && isJumpOp((Op)I.Code))
      EXPECT_LT((uint64_t)I.A, F.Code.size()) << "remapped target in range";

  // And the loop still computes the right sum on both engines.
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::Bytecode}) {
    VmProgram Prog = compileSource(Source);
    Device Dev(std::move(Prog), 16ull << 20, Mode);
    uint64_t Out = Dev.alloc(4);
    ASSERT_TRUE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 10}))
        << Dev.error();
    EXPECT_EQ(Dev.readI32(Out), 45);
  }
}

/// Runs `k(out, n)` on both engines (peephole on and off) and compares
/// device memory bit-for-bit plus the full VmStats.
void expectEngineEquivalent(const char *Source, int N, Dim3V Grid,
                            Dim3V Block) {
  for (bool Optimize : {true, false}) {
    std::vector<int32_t> Results[2];
    VmStats Stats[2];
    int Idx = 0;
    for (ExecMode Mode : {ExecMode::Decoded, ExecMode::Bytecode}) {
      VmProgram P = compileSource(Source, Optimize);
      Device Dev(std::move(P), 32ull << 20, Mode);
      ASSERT_EQ(Dev.execMode(), Mode);
      uint64_t Out = Dev.alloc((uint64_t)N * 4);
      ASSERT_TRUE(Dev.launchKernel("k", Grid, Block, {(int64_t)Out, N}))
          << Dev.error();
      Results[Idx] = Dev.readI32Array(Out, N);
      Stats[Idx] = Dev.stats();
      ++Idx;
    }
    EXPECT_EQ(Results[0], Results[1]) << Source;
    EXPECT_EQ(Stats[0].Steps, Stats[1].Steps)
        << "step accounting diverged, peephole=" << Optimize;
    EXPECT_EQ(Stats[0].GridsLaunched, Stats[1].GridsLaunched);
    EXPECT_EQ(Stats[0].DeviceLaunches, Stats[1].DeviceLaunches);
    EXPECT_EQ(Stats[0].ThreadsExecuted, Stats[1].ThreadsExecuted);
  }
}

TEST(ExecIRTest, EnginesAgreeOnCallsAndFrames) {
  expectEngineEquivalent(R"(
__device__ int helper(int x, int depth) {
  int buf[4];
  buf[x % 4] = x;
  if (depth > 0) return helper(x + 1, depth - 1) + buf[x % 4];
  return buf[x % 4];
}
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = helper(i, i % 5);
}
)",
                         64, {2, 1, 1}, {32, 1, 1});
}

TEST(ExecIRTest, EnginesAgreeOnBarriersAndShared) {
  expectEngineEquivalent(R"(
__global__ void k(int *out, int n) {
  __shared__ int scratch[64];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  scratch[threadIdx.x] = i < n ? i * 3 + 1 : 0;
  __syncthreads();
  for (int stride = blockDim.x / 2; stride > 0; stride = stride / 2) {
    if (threadIdx.x < stride)
      scratch[threadIdx.x] += scratch[threadIdx.x + stride];
    __syncthreads();
  }
  if (threadIdx.x == 0)
    out[blockIdx.x] = scratch[0];
}
)",
                         4, {4, 1, 1}, {64, 1, 1});
}

TEST(ExecIRTest, EnginesAgreeOnDynamicLaunches) {
  expectEngineEquivalent(R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) atomicAdd(&out[base + i], i + 1);
}
__global__ void k(int *out, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    child<<<(v + 7) / 8, 8>>>(out, v * 2, v);
  }
}
)",
                         256, {2, 1, 1}, {16, 1, 1});
}

TEST(ExecIRTest, TrapsAndStepLimitsFireOnBothEngines) {
  const char *Source = R"(
__global__ void k(int *out, int n) {
  out[0] = 10 / (n - n);
}
)";
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::Bytecode}) {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P), 16ull << 20, Mode);
    uint64_t Out = Dev.alloc(4);
    EXPECT_FALSE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 5}));
    EXPECT_NE(Dev.error().find("division by zero"), std::string::npos)
        << Dev.error();
  }
  const char *Loop = R"(
__global__ void k(int *out, int n) {
  while (n < 100) { n = n - 1; if (n < -1000000) n = 0; }
  out[0] = n;
}
)";
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::Bytecode}) {
    VmProgram P = compileSource(Loop);
    Device Dev(std::move(P), 16ull << 20, Mode);
    Dev.setStepLimit(10000);
    uint64_t Out = Dev.alloc(4);
    EXPECT_FALSE(Dev.launchKernel("k", {1, 1, 1}, {1, 1, 1}, {(int64_t)Out, 5}));
    EXPECT_NE(Dev.error().find("step limit"), std::string::npos) << Dev.error();
  }
}

TEST(ExecIRTest, EnvironmentOverrideSelectsEngine) {
#if defined(_WIN32)
  GTEST_SKIP() << "setenv not available";
#else
  const char *Source = "__global__ void k(int *out, int n) { out[0] = n; }";
  ASSERT_EQ(setenv("DPO_VM_EXEC", "bytecode", 1), 0);
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P));
    EXPECT_EQ(Dev.execMode(), ExecMode::Bytecode);
  }
  unsetenv("DPO_VM_EXEC");
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P));
    EXPECT_EQ(Dev.execMode(), ExecMode::Decoded);
  }
  // Explicit modes beat the environment.
  ASSERT_EQ(setenv("DPO_VM_EXEC", "bytecode", 1), 0);
  {
    VmProgram P = compileSource(Source);
    Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
    EXPECT_EQ(Dev.execMode(), ExecMode::Decoded);
  }
  unsetenv("DPO_VM_EXEC");
#endif
}

TEST(ExecIRTest, DecodeStatsExposedOnDevice) {
  VmProgram P = compileSource(R"(
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i;
}
)");
  uint64_t Instrs = P.Functions[0].Code.size();
  Device Dev(std::move(P), 16ull << 20, ExecMode::Decoded);
  EXPECT_EQ(Dev.decodeStats().InstrsIn, Instrs);
  EXPECT_GT(Dev.decodeStats().InstrsOut, 0u);
}

} // namespace
