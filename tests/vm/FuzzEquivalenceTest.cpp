//===--- FuzzEquivalenceTest.cpp - Randomized-program equivalence --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over *generated* programs:
///  - random child-kernel bodies (arithmetic over the output slice, mixed
///    int expressions, conditionals) run through every pass combination
///    and are diffed element-wise on the VM;
///  - programs with multiple launch sites in one parent and with two
///    parents sharing one child kernel exercise the multi-site buffer and
///    wrapper codegen of the aggregation pass;
///  - printer round-trip on every generated program.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "ast/Equivalence.h"
#include "parse/Parser.h"
#include "transform/Pipeline.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace dpo;

namespace {

/// Emits a random side-effect-free integer expression over `base`, `i`,
/// and `count`.
std::string randomIntExpr(std::mt19937 &Rng, int Depth = 0) {
  std::uniform_int_distribution<int> Pick(0, Depth > 2 ? 3 : 7);
  switch (Pick(Rng)) {
  case 0: return "i";
  case 1: return "base";
  case 2: return "count";
  case 3: return std::to_string(1 + Rng() % 97);
  case 4:
    return "(" + randomIntExpr(Rng, Depth + 1) + " + " +
           randomIntExpr(Rng, Depth + 1) + ")";
  case 5:
    return "(" + randomIntExpr(Rng, Depth + 1) + " * " +
           std::to_string(1 + Rng() % 7) + ")";
  case 6:
    return "(" + randomIntExpr(Rng, Depth + 1) + " - " +
           randomIntExpr(Rng, Depth + 1) + ")";
  default:
    return "(" + randomIntExpr(Rng, Depth + 1) + " / " +
           std::to_string(1 + Rng() % 9) + ")";
  }
}

std::string randomProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::ostringstream OS;
  // Every third seed emits a cooperative child: a __shared__ tile staged
  // from a random expression, a tree reduction with __syncthreads per
  // round, and every live lane mixing the block sum into its own slot.
  // The slices stay disjoint, so the payload is schedule-independent and
  // the barrier kernels ride the same pipeline-ordering, engine, and
  // worker axes as the plain ones.
  bool Cooperative = Seed % 3 == 2;
  if (Cooperative) {
    OS << "__global__ void child(int *out, int base, int count) {\n"
       << "  __shared__ int tile[128];\n"
       << "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  tile[threadIdx.x] = i < count ? " << randomIntExpr(Rng)
       << " : 0;\n"
       << "  __syncthreads();\n"
       << "  for (int s = blockDim.x / 2; s > 0; s = s / 2) {\n"
       << "    if (threadIdx.x < s)\n"
       << "      tile[threadIdx.x] = tile[threadIdx.x] + tile[threadIdx.x + "
          "s];\n"
       << "    __syncthreads();\n"
       << "  }\n"
       << "  if (i < count) {\n"
       << "    out[base + i] = " << randomIntExpr(Rng) << " + tile[0];\n"
       << "  }\n}\n";
  } else {
    OS << "__global__ void child(int *out, int base, int count) {\n"
       << "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  if (i < count) {\n";
    if (Rng() % 2)
      OS << "    if (i % " << (2 + Rng() % 5) << " == 0) {\n"
         << "      out[base + i] = " << randomIntExpr(Rng) << ";\n"
         << "    } else {\n"
         << "      out[base + i] = " << randomIntExpr(Rng) << ";\n"
         << "    }\n";
    else
      OS << "    out[base + i] = " << randomIntExpr(Rng) << ";\n";
    OS << "  }\n}\n";
  }

  unsigned BlockDim = 1u << (4 + Rng() % 4); // 16..128
  OS << "__global__ void parent(int *out, int *counts, int *offsets, "
        "int numV) {\n"
     << "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
     << "  if (v < numV) {\n"
     << "    int count = counts[v];\n"
     << "    if (count > 0) {\n"
     << "      child<<<(count + " << (BlockDim - 1) << ") / " << BlockDim
     << ", " << BlockDim << ">>>(out, offsets[v], count);\n"
     << "    }\n  }\n}\n";
  return OS.str();
}

struct RunResult {
  std::vector<int32_t> Out;
  VmStats Stats;
  bool Ok = false;
};

RunResult runNested(const std::string &Source,
                    const std::vector<int32_t> &Counts,
                    const VmCompileOptions &Opts = {}, unsigned Workers = 0) {
  RunResult R;
  DiagnosticEngine Diags;
  auto Dev = buildDevice(Source, Diags, Opts);
  EXPECT_NE(Dev, nullptr) << Diags.str() << "\n" << Source;
  if (!Dev)
    return R;
  if (Workers)
    Dev->setWorkers(Workers);
  int NumV = Counts.size();
  std::vector<int32_t> Offsets(NumV);
  int Total = 0;
  for (int I = 0; I < NumV; ++I) {
    Offsets[I] = Total;
    Total += Counts[I];
  }
  uint64_t Out = Dev->alloc(std::max(1, Total) * 4);
  uint64_t CountsA = Dev->allocI32(Counts);
  uint64_t OffsetsA = Dev->allocI32(Offsets);
  std::vector<int64_t> Args = {(int64_t)Out, (int64_t)CountsA,
                               (int64_t)OffsetsA, NumV};

  DiagnosticEngine PD;
  ASTContext PC;
  TranslationUnit *TU = parseSource(Source, PC, PD);
  bool Wrapper = TU && TU->findFunction("parent_agg");
  bool Ok;
  if (Wrapper) {
    std::vector<int64_t> HostArgs = {(NumV + 63) / 64, 1, 1, 64, 1, 1};
    HostArgs.insert(HostArgs.end(), Args.begin(), Args.end());
    Ok = Dev->callHost("parent_agg", HostArgs);
  } else {
    Ok = Dev->launchKernel("parent", {(uint32_t)(NumV + 63) / 64, 1, 1},
                           {64, 1, 1}, Args);
  }
  EXPECT_TRUE(Ok) << Dev->error() << "\n" << Source;
  if (!Ok)
    return R;
  R.Out = Dev->readI32Array(Out, std::max(1, Total));
  R.Stats = Dev->stats();
  R.Ok = true;
  return R;
}

/// Parameters: (random-program seed, run the bytecode peephole optimizer).
/// Every seed runs with the optimizer on and off, and the two references
/// are compared against each other — a dynamic proof that the
/// superinstruction rewrites of vm/Peephole.cpp preserve semantics.
class FuzzEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(FuzzEquivalenceTest, RandomProgramsSurviveAllPipelines) {
  unsigned Seed = std::get<0>(GetParam());
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = std::get<1>(GetParam());
  std::string Source = randomProgram(Seed);
  std::mt19937 Rng(Seed * 31 + 7);
  std::vector<int32_t> Counts(120);
  for (auto &C : Counts)
    C = Rng() % 10 < 6 ? (int)(Rng() % 12) : (int)(32 + Rng() % 300);

  RunResult Reference = runNested(Source, Counts, Opts);
  ASSERT_TRUE(Reference.Ok);

  // Peephole-on and peephole-off interpretation must agree exactly.
  // (The comparison is symmetric, so run it from the optimizer-on
  // instantiation only instead of paying for it twice per seed.)
  if (Opts.OptimizeBytecode) {
    VmCompileOptions Flipped;
    Flipped.OptimizeBytecode = false;
    RunResult Other = runNested(Source, Counts, Flipped);
    ASSERT_TRUE(Other.Ok);
    ASSERT_EQ(Reference.Out, Other.Out)
        << "peephole optimizer changed program semantics, seed " << Seed;
  }

  // Engine axis: the traced decoded engine, the untraced decoded engine,
  // and the bytecode interpreter must produce the same memory *and*
  // retire the same step counts (decode-time fusions and trace regions
  // carry the step cost of the instructions they replace), so tuner
  // pricing is engine-independent.
  {
    VmCompileOptions DecodedOpts = Opts, NoTraceOpts = Opts,
                     FallbackOpts = Opts;
    DecodedOpts.Exec = ExecMode::Decoded;
    NoTraceOpts.Exec = ExecMode::DecodedNoTrace;
    FallbackOpts.Exec = ExecMode::Bytecode;
    RunResult Dec = runNested(Source, Counts, DecodedOpts);
    RunResult Plain = runNested(Source, Counts, NoTraceOpts);
    RunResult Base = runNested(Source, Counts, FallbackOpts);
    ASSERT_TRUE(Dec.Ok);
    ASSERT_TRUE(Plain.Ok);
    ASSERT_TRUE(Base.Ok);
    ASSERT_EQ(Reference.Out, Dec.Out)
        << "traced decoded engine changed program semantics, seed " << Seed;
    ASSERT_EQ(Reference.Out, Plain.Out)
        << "untraced decoded engine changed program semantics, seed " << Seed;
    ASSERT_EQ(Reference.Out, Base.Out)
        << "bytecode fallback changed program semantics, seed " << Seed;
    ASSERT_EQ(Dec.Stats.Steps, Base.Stats.Steps)
        << "traced engine changed step accounting, seed " << Seed;
    ASSERT_EQ(Plain.Stats.Steps, Base.Stats.Steps)
        << "untraced decoded engine changed step accounting, seed " << Seed;
    ASSERT_EQ(Dec.Stats.DeviceLaunches, Base.Stats.DeviceLaunches);
    ASSERT_EQ(Dec.Stats.BlocksExecuted, Base.Stats.BlocksExecuted);
    ASSERT_EQ(Dec.Stats.ThreadsExecuted, Base.Stats.ThreadsExecuted);
  }

  // Worker-count axis: the fuzz children write disjoint out[] slices, so
  // the payload is schedule-independent — a multi-worker drain must
  // reproduce the sequential memory image exactly, and a device pinned to
  // one worker must also reproduce the step accounting bit-for-bit.
  {
    for (unsigned Workers : {2u, 4u}) {
      RunResult Par = runNested(Source, Counts, Opts, Workers);
      ASSERT_TRUE(Par.Ok);
      ASSERT_EQ(Reference.Out, Par.Out)
          << "workers=" << Workers << " changed program semantics, seed "
          << Seed;
    }
    RunResult Solo = runNested(Source, Counts, Opts, 1);
    ASSERT_TRUE(Solo.Ok);
    ASSERT_EQ(Reference.Out, Solo.Out);
    ASSERT_EQ(Reference.Stats.Steps, Solo.Stats.Steps)
        << "single-worker step accounting drifted, seed " << Seed;
  }

  // Printer round-trip on the original.
  {
    ASTContext C1, C2;
    DiagnosticEngine D1, D2;
    TranslationUnit *T1 = parseSource(Source, C1, D1);
    ASSERT_NE(T1, nullptr);
    TranslationUnit *T2 = parseSource(printTranslationUnit(T1), C2, D2);
    ASSERT_NE(T2, nullptr) << D2.str();
    EXPECT_TRUE(structurallyEqual(T1, T2));
  }

  for (int Mask = 1; Mask < 8; ++Mask) {
    PipelineOptions Options;
    Options.EnableThresholding = (Mask & 1) != 0;
    Options.EnableCoarsening = (Mask & 2) != 0;
    Options.EnableAggregation = (Mask & 4) != 0;
    Options.Thresholding.Threshold = 1u << (Seed % 9);
    Options.Coarsening.Factor = 1 + Seed % 7;
    Options.Aggregation.Granularity =
        (AggGranularity)(1 + (Seed + Mask) % 4); // Warp..Grid
    Options.Aggregation.GroupSize = 2 + Seed % 6;
    Options.useLiteralKnobs();

    DiagnosticEngine Diags;
    std::string Transformed = transformSource(Source, Options, Diags);
    ASSERT_FALSE(Transformed.empty())
        << "seed " << Seed << " mask " << Mask << ": " << Diags.str();
    RunResult Result = runNested(Transformed, Counts, Opts);
    ASSERT_TRUE(Result.Ok) << "seed " << Seed << " mask " << Mask;
    ASSERT_EQ(Reference.Out, Result.Out)
        << "seed " << Seed << " mask " << Mask << "\n"
        << Transformed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Combine(::testing::Range(0u, 12u),
                                            ::testing::Bool()));

// Multi-site and shared-child aggregation codegen.

const char *MultiSiteSource = R"(
__global__ void childA(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    out[base + i] = base + i;
  }
}
__global__ void childB(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    out[base + i] = out[base + i] * 2 + 1;
  }
}
__global__ void parent(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      childA<<<(count + 31) / 32, 32>>>(out, offsets[v], count);
    }
    if (count > 4) {
      childB<<<(count + 63) / 64, 64>>>(out, offsets[v] + count,
                                        count / 2);
    }
  }
}
)";

TEST(MultiSiteAggregationTest, TwoSitesOnePlan) {
  // Note: childB reads what childA of the *same parent* wrote? No — the
  // slices are disjoint (offsets[v] + count), so ordering between the two
  // children does not matter and aggregation may reorder them freely.
  std::vector<int32_t> Counts = {3, 0, 40, 9, 120, 7, 64};
  // Build offsets with room for both children: 1.5 * count each.
  int NumV = Counts.size();
  std::vector<int32_t> Offsets(NumV);
  int Total = 0;
  for (int I = 0; I < NumV; ++I) {
    Offsets[I] = Total;
    Total += Counts[I] + Counts[I] / 2 + 1;
  }

  auto Run = [&](const std::string &Source) -> std::vector<int32_t> {
    DiagnosticEngine Diags;
    auto Dev = buildDevice(Source, Diags);
    EXPECT_NE(Dev, nullptr) << Diags.str() << Source;
    if (!Dev)
      return {};
    uint64_t Out = Dev->alloc(Total * 4);
    uint64_t CountsA = Dev->allocI32(Counts);
    uint64_t OffsetsA = Dev->allocI32(Offsets);
    std::vector<int64_t> Args = {(int64_t)Out, (int64_t)CountsA,
                                 (int64_t)OffsetsA, NumV};
    DiagnosticEngine PD;
    ASTContext PC;
    TranslationUnit *TU = parseSource(Source, PC, PD);
    bool Ok;
    if (TU && TU->findFunction("parent_agg")) {
      std::vector<int64_t> HostArgs = {1, 1, 1, 32, 1, 1};
      HostArgs.insert(HostArgs.end(), Args.begin(), Args.end());
      Ok = Dev->callHost("parent_agg", HostArgs);
    } else {
      Ok = Dev->launchKernel("parent", {1, 1, 1}, {32, 1, 1}, Args);
    }
    EXPECT_TRUE(Ok) << Dev->error();
    return Dev->readI32Array(Out, Total);
  };

  std::vector<int32_t> Reference = Run(MultiSiteSource);
  for (AggGranularity G : {AggGranularity::Warp, AggGranularity::Block,
                           AggGranularity::MultiBlock, AggGranularity::Grid}) {
    PipelineOptions Options;
    Options.EnableAggregation = true;
    Options.Aggregation.Granularity = G;
    Options.Aggregation.GroupSize = 2;
    Options.useLiteralKnobs();
    DiagnosticEngine Diags;
    std::string Transformed = transformSource(MultiSiteSource, Options, Diags);
    ASSERT_FALSE(Transformed.empty()) << Diags.str();
    // Both sites transformed; two aggregated kernels; one wrapper.
    EXPECT_NE(Transformed.find("childA_agg"), std::string::npos);
    EXPECT_NE(Transformed.find("childB_agg"), std::string::npos);
    EXPECT_NE(Transformed.find("_aggCnt1"), std::string::npos);
    std::vector<int32_t> Result = Run(Transformed);
    EXPECT_EQ(Reference, Result) << aggGranularityName(G) << "\n"
                                 << Transformed;
  }
}

const char *SharedChildSource = R"(
__global__ void child(int *out, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    atomicAdd(&out[base + i], 1);
  }
}
__global__ void parentA(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(out, offsets[v], count);
    }
  }
}
__global__ void parentB(int *out, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV && counts[v] > 2) {
    child<<<(counts[v] + 31) / 32, 32>>>(out, offsets[v], counts[v]);
  }
}
)";

TEST(MultiSiteAggregationTest, TwoParentsShareOneChild) {
  PipelineOptions Options;
  Options.EnableAggregation = true;
  Options.Aggregation.Granularity = AggGranularity::MultiBlock;
  Options.useLiteralKnobs();
  DiagnosticEngine Diags;
  std::string Transformed = transformSource(SharedChildSource, Options, Diags);
  ASSERT_FALSE(Transformed.empty()) << Diags.str();

  // Exactly one child_agg kernel, two wrappers.
  size_t First = Transformed.find("__global__ void child_agg");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Transformed.find("__global__ void child_agg", First + 1),
            std::string::npos);
  EXPECT_NE(Transformed.find("void parentA_agg"), std::string::npos);
  EXPECT_NE(Transformed.find("void parentB_agg"), std::string::npos);

  // Execute both parents in both versions and compare.
  std::vector<int32_t> Counts = {5, 0, 33, 2, 80};
  std::vector<int32_t> Offsets = {0, 5, 5, 38, 40};
  auto Run = [&](const std::string &Source,
                 bool Wrapped) -> std::vector<int32_t> {
    DiagnosticEngine D;
    auto Dev = buildDevice(Source, D);
    EXPECT_NE(Dev, nullptr) << D.str();
    if (!Dev)
      return {};
    uint64_t Out = Dev->alloc(120 * 4);
    uint64_t CountsA = Dev->allocI32(Counts);
    uint64_t OffsetsA = Dev->allocI32(Offsets);
    std::vector<int64_t> Args = {(int64_t)Out, (int64_t)CountsA,
                                 (int64_t)OffsetsA, 5};
    bool Ok;
    if (Wrapped) {
      std::vector<int64_t> HostArgs = {1, 1, 1, 8, 1, 1};
      HostArgs.insert(HostArgs.end(), Args.begin(), Args.end());
      Ok = Dev->callHost("parentA_agg", HostArgs) &&
           Dev->callHost("parentB_agg", HostArgs);
    } else {
      Ok = Dev->launchKernel("parentA", {1, 1, 1}, {8, 1, 1}, Args) &&
           Dev->launchKernel("parentB", {1, 1, 1}, {8, 1, 1}, Args);
    }
    EXPECT_TRUE(Ok) << Dev->error();
    return Dev->readI32Array(Out, 120);
  };
  EXPECT_EQ(Run(SharedChildSource, false), Run(Transformed, true));
}

} // namespace
