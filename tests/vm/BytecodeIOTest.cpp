//===--- BytecodeIOTest.cpp - Serialized bytecode round-trip tests -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk bytecode format (vm/BytecodeIO.h) backs the service-layer
/// artifact cache, so its contract is load-bearing for correctness:
///  - serialize -> deserialize -> re-serialize must be byte-identical for
///    every corpus program and for fuzz-generated programs (deterministic
///    bytes are what make the content-addressed cache keys meaningful);
///  - a deserialized program must execute bit-identically to the original
///    across all three engines — same payload, same retired step counts;
///  - truncated, bit-flipped, and wrong-version images must fail cleanly
///    with a diagnostic, never crash or return a half-built program.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "vm/BytecodeIO.h"
#include "vm/Compiler.h"
#include "vm/VM.h"
#include "workloads/KernelSources.h"
#include "workloads/VmWorkload.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace dpo;

namespace {

VmProgram compileSource(const std::string &Source, bool Optimize = true) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  if (!TU)
    return {};
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Program;
}

/// serialize -> deserialize -> re-serialize; returns the deserialized
/// program and asserts the two images are byte-identical.
VmProgram roundTrip(const VmProgram &P) {
  std::string First = serializeVmProgram(P);
  VmProgram Q;
  std::string Error;
  EXPECT_TRUE(deserializeVmProgram(First, Q, Error)) << Error;
  std::string Second = serializeVmProgram(Q);
  EXPECT_EQ(First, Second) << "re-serialization not byte-identical";
  return Q;
}

struct NestedRun {
  std::vector<int32_t> Out;
  VmStats Stats;
  bool Ok = false;
};

/// Runs the standard nested parent/child driver over \p Program.
NestedRun runNested(VmProgram Program, const std::vector<int32_t> &Counts,
                    ExecMode Mode) {
  NestedRun R;
  Device Dev(std::move(Program), 64ull << 20, Mode);
  int NumV = (int)Counts.size();
  std::vector<int32_t> Offsets(NumV);
  int Total = 0;
  for (int I = 0; I < NumV; ++I) {
    Offsets[I] = Total;
    Total += Counts[I];
  }
  uint64_t Out = Dev.alloc(std::max(1, Total) * 4);
  uint64_t CountsA = Dev.allocI32(Counts);
  uint64_t OffsetsA = Dev.allocI32(Offsets);
  bool Ok = Dev.launchKernel("parent", {(uint32_t)(NumV + 63) / 64, 1, 1},
                             {64, 1, 1},
                             {(int64_t)Out, (int64_t)CountsA,
                              (int64_t)OffsetsA, NumV});
  EXPECT_TRUE(Ok) << Dev.error();
  if (!Ok)
    return R;
  R.Out = Dev.readI32Array(Out, std::max(1, Total));
  R.Stats = Dev.stats();
  R.Ok = true;
  return R;
}

/// The full engine axis: a deserialized image must retire the same
/// payload and the same step counts as the in-memory program on every
/// engine.
void expectExecutionIdentical(const VmProgram &P, const VmProgram &Q,
                              const std::vector<int32_t> &Counts) {
  for (ExecMode Mode : {ExecMode::Bytecode, ExecMode::Decoded,
                        ExecMode::DecodedNoTrace}) {
    NestedRun A = runNested(P, Counts, Mode);
    NestedRun B = runNested(Q, Counts, Mode);
    ASSERT_TRUE(A.Ok && B.Ok);
    EXPECT_EQ(A.Out, B.Out) << "payload diverged, mode " << (int)Mode;
    EXPECT_TRUE(A.Stats == B.Stats) << "stats diverged, mode " << (int)Mode
                                    << ": " << A.Stats.Steps << " vs "
                                    << B.Stats.Steps << " steps";
  }
}

std::vector<int32_t> skewedCounts(unsigned Seed, size_t N = 96) {
  std::mt19937 Rng(Seed * 131 + 17);
  std::vector<int32_t> Counts(N);
  for (auto &C : Counts)
    C = Rng() % 10 < 6 ? (int)(Rng() % 12) : (int)(32 + Rng() % 200);
  return Counts;
}

//===----------------------------------------------------------------------===//
// Corpus round-trips
//===----------------------------------------------------------------------===//

class CorpusBytecodeIOTest : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(CorpusBytecodeIOTest, TableIKernelRoundTripsExactly) {
  VmProgram P = compileSource(kernelSourceFor(GetParam()));
  ASSERT_FALSE(P.Functions.empty());
  VmProgram Q = roundTrip(P);
  // Structure survives: same functions in the same order, index intact.
  ASSERT_EQ(P.Functions.size(), Q.Functions.size());
  for (size_t I = 0; I < P.Functions.size(); ++I) {
    EXPECT_EQ(P.Functions[I].Name, Q.Functions[I].Name);
    EXPECT_EQ(P.Functions[I].Code.size(), Q.Functions[I].Code.size());
    ASSERT_TRUE(Q.FunctionIndex.count(P.Functions[I].Name));
    EXPECT_EQ(Q.FunctionIndex.at(P.Functions[I].Name), (unsigned)I);
  }
  EXPECT_EQ(P.TrapMessages, Q.TrapMessages);
  EXPECT_EQ(P.GlobalImage, Q.GlobalImage);
  EXPECT_EQ(P.LaunchSiteNames, Q.LaunchSiteNames);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CorpusBytecodeIOTest,
                         ::testing::Values(BenchmarkId::BFS, BenchmarkId::BT,
                                           BenchmarkId::MSTF,
                                           BenchmarkId::MSTV, BenchmarkId::SP,
                                           BenchmarkId::SSSP,
                                           BenchmarkId::TC));

TEST(BytecodeIOTest, NestedWorkloadRoundTripExecutesIdentically) {
  for (bool Optimize : {true, false}) {
    VmProgram P = compileSource(nestedVmSource(), Optimize);
    VmProgram Q = roundTrip(P);
    expectExecutionIdentical(P, Q, skewedCounts(1));
  }
}

TEST(BytecodeIOTest, CooperativeKernelRoundTripExecutesIdentically) {
  // __shared__ tiles + __syncthreads exercise SharedBytes and the barrier
  // opcodes through the serialized image.
  std::string Source =
      "__global__ void child(int *out, int base, int count) {\n"
      "  __shared__ int tile[64];\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  tile[threadIdx.x] = i < count ? base + i : 0;\n"
      "  __syncthreads();\n"
      "  for (int s = blockDim.x / 2; s > 0; s = s / 2) {\n"
      "    if (threadIdx.x < s)\n"
      "      tile[threadIdx.x] = tile[threadIdx.x] + tile[threadIdx.x + s];\n"
      "    __syncthreads();\n"
      "  }\n"
      "  if (i < count)\n"
      "    out[base + i] = tile[0] + i;\n"
      "}\n"
      "__global__ void parent(int *out, int *counts, int *offsets, int numV) "
      "{\n"
      "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  if (v < numV) {\n"
      "    int count = counts[v];\n"
      "    if (count > 0)\n"
      "      child<<<(count + 63) / 64, 64>>>(out, offsets[v], count);\n"
      "  }\n"
      "}\n";
  VmProgram P = compileSource(Source);
  VmProgram Q = roundTrip(P);
  expectExecutionIdentical(P, Q, skewedCounts(2));
}

//===----------------------------------------------------------------------===//
// Fuzz round-trips
//===----------------------------------------------------------------------===//

std::string randomIntExpr(std::mt19937 &Rng, int Depth = 0) {
  std::uniform_int_distribution<int> Pick(0, Depth > 2 ? 3 : 6);
  switch (Pick(Rng)) {
  case 0: return "i";
  case 1: return "base";
  case 2: return "count";
  case 3: return std::to_string(1 + Rng() % 97);
  case 4:
    return "(" + randomIntExpr(Rng, Depth + 1) + " + " +
           randomIntExpr(Rng, Depth + 1) + ")";
  case 5:
    return "(" + randomIntExpr(Rng, Depth + 1) + " * " +
           std::to_string(1 + Rng() % 7) + ")";
  default:
    return "(" + randomIntExpr(Rng, Depth + 1) + " - " +
           randomIntExpr(Rng, Depth + 1) + ")";
  }
}

std::string randomNestedProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::ostringstream OS;
  OS << "__global__ void child(int *out, int base, int count) {\n"
     << "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
     << "  if (i < count) {\n";
  if (Rng() % 2)
    OS << "    if (i % " << (2 + Rng() % 5) << " == 0) {\n"
       << "      out[base + i] = " << randomIntExpr(Rng) << ";\n"
       << "    } else {\n"
       << "      out[base + i] = " << randomIntExpr(Rng) << ";\n"
       << "    }\n";
  else
    OS << "    out[base + i] = " << randomIntExpr(Rng) << ";\n";
  OS << "  }\n}\n";
  unsigned BlockDim = 1u << (4 + Rng() % 4);
  OS << "__global__ void parent(int *out, int *counts, int *offsets, "
        "int numV) {\n"
     << "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
     << "  if (v < numV) {\n"
     << "    int count = counts[v];\n"
     << "    if (count > 0) {\n"
     << "      child<<<(count + " << (BlockDim - 1) << ") / " << BlockDim
     << ", " << BlockDim << ">>>(out, offsets[v], count);\n"
     << "    }\n  }\n}\n";
  return OS.str();
}

class FuzzBytecodeIOTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzBytecodeIOTest, GeneratedProgramsRoundTripExactly) {
  unsigned Seed = GetParam();
  // Both optimizer settings: fused superinstructions must serialize too.
  for (bool Optimize : {true, false}) {
    VmProgram P = compileSource(randomNestedProgram(Seed), Optimize);
    VmProgram Q = roundTrip(P);
    expectExecutionIdentical(P, Q, skewedCounts(Seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBytecodeIOTest,
                         ::testing::Range(0u, 8u));

//===----------------------------------------------------------------------===//
// Corruption safety
//===----------------------------------------------------------------------===//

TEST(BytecodeIOTest, TruncatedImagesFailCleanly) {
  VmProgram P = compileSource(nestedVmSource());
  std::string Image = serializeVmProgram(P);
  // Every truncation length, including the empty image, must fail with a
  // diagnostic — and never crash or spin.
  for (size_t Len = 0; Len < Image.size(); ++Len) {
    VmProgram Q;
    std::string Error;
    EXPECT_FALSE(
        deserializeVmProgram(std::string_view(Image.data(), Len), Q, Error))
        << "truncation to " << Len << " bytes accepted";
    EXPECT_FALSE(Error.empty());
  }
}

TEST(BytecodeIOTest, BitFlipsAreDetectedOrHarmless) {
  VmProgram P = compileSource(nestedVmSource());
  std::string Image = serializeVmProgram(P);
  // Flip one bit in every byte: the checksum (or a structural check) must
  // reject the image. A flip can never produce a crash or a quietly
  // different program that still deserializes.
  for (size_t I = 0; I < Image.size(); ++I) {
    std::string Corrupt = Image;
    Corrupt[I] ^= 0x40;
    VmProgram Q;
    std::string Error;
    EXPECT_FALSE(deserializeVmProgram(Corrupt, Q, Error))
        << "flipped bit in byte " << I << " accepted";
  }
}

TEST(BytecodeIOTest, WrongVersionIsRejectedWithDiagnostic) {
  VmProgram P = compileSource(nestedVmSource());
  std::string Image = serializeVmProgram(P);
  ASSERT_GE(Image.size(), 8u);
  std::string Stale = Image;
  Stale[4] = (char)(BytecodeFormatVersion + 1); // little-endian version word
  VmProgram Q;
  std::string Error;
  EXPECT_FALSE(deserializeVmProgram(Stale, Q, Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(BytecodeIOTest, TrailingGarbageIsRejected) {
  VmProgram P = compileSource(nestedVmSource());
  std::string Image = serializeVmProgram(P) + "extra";
  VmProgram Q;
  std::string Error;
  EXPECT_FALSE(deserializeVmProgram(Image, Q, Error));
}

TEST(BytecodeIOTest, EmptyProgramRoundTrips) {
  VmProgram P;
  VmProgram Q = roundTrip(P);
  EXPECT_TRUE(Q.Functions.empty());
  EXPECT_TRUE(Q.GlobalImage.empty());
}

} // namespace
