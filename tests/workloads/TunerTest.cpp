//===--- TunerTest.cpp - Section VIII-C tuning tests ---------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/Empirical.h"
#include "tuner/Tuner.h"
#include "workloads/VmWorkload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace dpo;

namespace {

std::vector<NestedBatch> irregularBatches(unsigned NumBatches,
                                          unsigned ParentsPerBatch,
                                          unsigned Seed = 1) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  std::vector<NestedBatch> Batches(NumBatches);
  for (auto &B : Batches) {
    B.NumParentThreads = ParentsPerBatch;
    B.ChildUnits.resize(ParentsPerBatch);
    for (auto &Units : B.ChildUnits) {
      double X = U(Rng);
      Units = X < 0.4 ? 0 : X < 0.9 ? (1 + Rng() % 24) : (64 + Rng() % 1000);
    }
  }
  return Batches;
}

VariantMask fullMask() {
  VariantMask Mask;
  Mask.Thresholding = true;
  Mask.Coarsening = true;
  Mask.Aggregation = true;
  return Mask;
}

TEST(TunerTest, ThresholdForLaunchBudget) {
  std::vector<NestedBatch> Batches = irregularBatches(4, 30000);
  uint32_t T = thresholdForLaunchBudget(Batches, 7000);
  // The chosen threshold leaves at most 7000 launches...
  uint64_t Launches = 0;
  for (const auto &B : Batches)
    for (uint32_t Units : B.ChildUnits)
      if (Units >= T)
        ++Launches;
  EXPECT_LE(Launches, 7000u);
  // ...and the next smaller power of two would exceed it.
  if (T > 1) {
    uint64_t Prev = 0;
    for (const auto &B : Batches)
      for (uint32_t Units : B.ChildUnits)
        if (Units >= T / 2)
          ++Prev;
    EXPECT_GT(Prev, 7000u);
  }
}

TEST(TunerTest, ExhaustiveBeatsOrMatchesEveryProbe) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(3, 20000);
  TuneResult Best = exhaustiveTune(Gpu, Batches, fullMask());
  // Spot-check a handful of configurations: none beats the winner.
  for (uint32_t T : {0u, 16u, 256u})
    for (AggGranularity G :
         {AggGranularity::None, AggGranularity::Block, AggGranularity::Grid}) {
      ExecConfig C;
      if (T)
        C.Threshold = T;
      C.Agg = G;
      C.CoarsenFactor = 4;
      EXPECT_GE(simulateBatches(Gpu, Batches, C).TimeUs,
                Best.Result.TimeUs - 1e-9);
    }
}

TEST(TunerTest, GuidedIsCloseToExhaustiveWithFewProbes) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(5, 25000, 3);
  TuneResult Exhaustive = exhaustiveTune(Gpu, Batches, fullMask());
  TuneResult Guided = guidedTune(Gpu, Batches, fullMask());
  // Section VIII-C: "less than ten runs" gets close to the best.
  EXPECT_LE(Guided.Probes, 10u);
  EXPECT_GT(Exhaustive.Probes, 100u);
  EXPECT_LE(Guided.Result.TimeUs, Exhaustive.Result.TimeUs * 1.8);
}

TEST(TunerTest, MaskRestrictsSearch) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(2, 10000, 5);
  VariantMask AggOnly;
  AggOnly.Aggregation = true;
  TuneResult R = exhaustiveTune(Gpu, Batches, AggOnly);
  EXPECT_FALSE(R.Config.Threshold.has_value());
  EXPECT_EQ(R.Config.CoarsenFactor, 1u);
  EXPECT_NE(R.Config.Agg, AggGranularity::None);

  VariantMask KlapLike = AggOnly;
  KlapLike.Granularities = {AggGranularity::Warp, AggGranularity::Block,
                            AggGranularity::Grid};
  TuneResult Klap = exhaustiveTune(Gpu, Batches, KlapLike);
  EXPECT_NE(Klap.Config.Agg, AggGranularity::MultiBlock);
  // Our framework's search space contains KLAP's, so it can't be slower.
  EXPECT_LE(R.Result.TimeUs, Klap.Result.TimeUs + 1e-9);
}

TEST(TunerTest, GuidedSkipsWarpGranularity) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(2, 15000, 7);
  TuneResult Guided = guidedTune(Gpu, Batches, fullMask());
  EXPECT_NE(Guided.Config.Agg, AggGranularity::Warp);
}

//===----------------------------------------------------------------------===//
// Empirical (VM-in-the-loop) tuning
//===----------------------------------------------------------------------===//

VmWorkload smallVmWorkload(unsigned Seed = 11) {
  return makeNestedVmWorkload("test", makeSkewedBatches(3, 2500, Seed));
}

EmpiricalOptions smallOptions(unsigned Budget = 12, unsigned Seed = 5) {
  EmpiricalOptions Opts;
  Opts.Budget = Budget;
  Opts.Seed = Seed;
  Opts.SampleBatches = 3;
  Opts.MaxSampleUnits = 6000;
  return Opts;
}

/// The chosen config must lie on the tuner's sweep axes.
void expectValidConfig(const ExecConfig &C) {
  if (C.Threshold) {
    const std::vector<uint32_t> Sweep = defaultThresholdSweep();
    EXPECT_NE(std::find(Sweep.begin(), Sweep.end(), *C.Threshold),
              Sweep.end())
        << "threshold " << *C.Threshold;
  }
  EXPECT_GE(C.CoarsenFactor, 1u);
  EXPECT_LE(C.CoarsenFactor, 32u);
  if (C.Agg == AggGranularity::MultiBlock) {
    EXPECT_GE(C.AggGroupBlocks, 2u);
    EXPECT_LE(C.AggGroupBlocks, 32u);
  }
}

TEST(EmpiricalTunerTest, AnalyticAndEmpiricalModesReturnValidConfigs) {
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();

  EmpiricalTuneResult Analytic = analyticTune(Gpu, W.Batches, fullMask());
  EXPECT_EQ(Analytic.Mode, TuneMode::Analytic);
  EXPECT_GT(Analytic.TimeUs, 0.0);
  EXPECT_GT(Analytic.SimProbes, 100u);
  EXPECT_EQ(Analytic.VmEvaluations, 0u);
  expectValidConfig(Analytic.Config);

  EmpiricalTuneResult Empirical =
      tuneWorkload(TuneMode::Empirical, Gpu, W, fullMask(), smallOptions());
  EXPECT_EQ(Empirical.Mode, TuneMode::Empirical);
  expectValidConfig(Empirical.Config);
  // The config was selected by actually executing bytecode: the winner's
  // measurement has real steps/threads behind it.
  EXPECT_GT(Empirical.VmEvaluations, 0u);
  EXPECT_GT(Empirical.Measured.Steps, 0u);
  EXPECT_GT(Empirical.Measured.ThreadsExecuted, 0u);
  EXPECT_GE(Empirical.Measured.BatchesRun, 1u);
  EXPECT_GT(Empirical.Measured.Cycles, 0.0);
  EXPECT_GT(Empirical.TimeUs, 0.0);
}

TEST(EmpiricalTunerTest, FixedSeedAndBudgetReproduceTheChosenConfig) {
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();
  for (TuneMode Mode : {TuneMode::Empirical, TuneMode::Hybrid}) {
    EmpiricalTuneResult A =
        tuneWorkload(Mode, Gpu, W, fullMask(), smallOptions(10, 7));
    EmpiricalTuneResult B =
        tuneWorkload(Mode, Gpu, W, fullMask(), smallOptions(10, 7));
    EXPECT_TRUE(A.Config == B.Config) << tuneModeName(Mode);
    EXPECT_EQ(A.Pipeline, B.Pipeline);
    EXPECT_EQ(A.VmEvaluations, B.VmEvaluations);
    EXPECT_DOUBLE_EQ(A.Measured.Cycles, B.Measured.Cycles);
  }
}

TEST(EmpiricalTunerTest, BudgetBoundsVmEvaluations) {
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();
  for (unsigned Budget : {1u, 4u, 9u}) {
    EmpiricalEvaluator HybridEval(Gpu, W, smallOptions(Budget));
    EmpiricalTuneResult Hybrid = hybridTune(HybridEval, fullMask());
    EXPECT_LE(HybridEval.evaluations(), Budget);
    EXPECT_LE(Hybrid.VmEvaluations, Budget);
    expectValidConfig(Hybrid.Config);

    EmpiricalEvaluator EmpEval(Gpu, W, smallOptions(Budget));
    empiricalTune(EmpEval, fullMask());
    EXPECT_LE(EmpEval.evaluations(), Budget);
  }
}

TEST(EmpiricalTunerTest, EvaluatorMeasuresTransformedPrograms) {
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();
  EmpiricalEvaluator Eval(Gpu, W, smallOptions());

  // CDP baseline: no transformation, every child grid is a device launch.
  ExecConfig Cdp;
  std::optional<VmMeasurement> Base = Eval.measure(Cdp);
  ASSERT_TRUE(Base.has_value()) << Eval.lastError();
  EXPECT_GT(Base->DeviceLaunches, 0u);

  // Serialize-everything: the same program measured with zero launches and
  // more bytecode steps concentrated in the parent.
  ExecConfig AllSerial;
  AllSerial.Threshold = 32768u;
  std::optional<VmMeasurement> Serial = Eval.measure(AllSerial);
  ASSERT_TRUE(Serial.has_value()) << Eval.lastError();
  EXPECT_EQ(Serial->DeviceLaunches, 0u);
  EXPECT_LT(Serial->GridsLaunched, Base->GridsLaunched);

  // Same config again: served from cache, no new VM execution.
  unsigned Evals = Eval.evaluations();
  unsigned Hits = Eval.cacheHits();
  std::optional<VmMeasurement> Again = Eval.measure(AllSerial);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Eval.evaluations(), Evals);
  EXPECT_EQ(Eval.cacheHits(), Hits + 1);
  EXPECT_DOUBLE_EQ(Again->Cycles, Serial->Cycles);
}

TEST(EmpiricalTunerTest, ReplayRoundExactMatchesTheMeasurement) {
  // The exact-state replay contract behind cached/warm-started tune
  // results: re-running the final sample round from a device checkpoint
  // retires a bit-identical end state, and the measurement it reports
  // equals what a plain measure() of the same pipeline reports — every
  // event count and the priced makespan.
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();
  for (const char *Pipeline :
       {"", "threshold[256:literal]",
        "threshold[256:literal],coarsen[8:literal]",
        "threshold[128:literal],coarsen[4:literal],"
        "aggregate[multiblock:8:literal]"}) {
    EmpiricalEvaluator Eval(Gpu, W, smallOptions());
    std::optional<VmMeasurement> Measured =
        Eval.measurePipeline(Pipeline, ExecMode::Decoded);
    ASSERT_TRUE(Measured.has_value())
        << Pipeline << ": " << Eval.lastError();

    VmMeasurement Replayed;
    std::string Err;
    ASSERT_TRUE(
        Eval.replayRoundExact(Pipeline, Eval.maxResource(), Replayed, Err))
        << Pipeline << ": " << Err;
    EXPECT_EQ(Measured->Steps, Replayed.Steps) << Pipeline;
    EXPECT_EQ(Measured->GridsLaunched, Replayed.GridsLaunched) << Pipeline;
    EXPECT_EQ(Measured->DeviceLaunches, Replayed.DeviceLaunches) << Pipeline;
    EXPECT_EQ(Measured->HostLaunches, Replayed.HostLaunches) << Pipeline;
    EXPECT_EQ(Measured->BlocksExecuted, Replayed.BlocksExecuted) << Pipeline;
    EXPECT_EQ(Measured->ThreadsExecuted, Replayed.ThreadsExecuted)
        << Pipeline;
    EXPECT_EQ(Measured->BatchesRun, Replayed.BatchesRun) << Pipeline;
    EXPECT_EQ(Measured->TraceEntries, Replayed.TraceEntries) << Pipeline;
    EXPECT_EQ(Measured->TraceIters, Replayed.TraceIters) << Pipeline;
    EXPECT_DOUBLE_EQ(Measured->Cycles, Replayed.Cycles) << Pipeline;
  }
}

TEST(EmpiricalTunerTest, WarmStartIsDeterministicAndBudgetNeutral) {
  // EmpiricalOptions::WarmStart moves the seeded config to the front of
  // the search order. The search stays deterministic, stays within
  // budget, and evaluates the seed (so a committed tuned-table entry is
  // never silently dropped from a warm-started search).
  GpuModel Gpu;
  VmWorkload W = smallVmWorkload();
  ExecConfig Seed;
  Seed.Threshold = 256;
  Seed.CoarsenFactor = 8;

  EmpiricalOptions Opts = smallOptions(8, 3);
  Opts.WarmStart = Seed;

  EmpiricalEvaluator A(Gpu, W, Opts);
  EmpiricalTuneResult First = empiricalTune(A, fullMask());
  EXPECT_LE(A.evaluations(), Opts.Budget);

  EmpiricalEvaluator B(Gpu, W, Opts);
  EmpiricalTuneResult Second = empiricalTune(B, fullMask());
  EXPECT_EQ(First.Pipeline, Second.Pipeline);
  EXPECT_EQ(First.VmEvaluations, Second.VmEvaluations);
  EXPECT_DOUBLE_EQ(First.TimeUs, Second.TimeUs);

  // Hybrid honors the same seed.
  EmpiricalEvaluator C(Gpu, W, Opts);
  EmpiricalTuneResult H1 = hybridTune(C, fullMask());
  EmpiricalEvaluator D(Gpu, W, Opts);
  EmpiricalTuneResult H2 = hybridTune(D, fullMask());
  EXPECT_EQ(H1.Pipeline, H2.Pipeline);
  EXPECT_DOUBLE_EQ(H1.TimeUs, H2.TimeUs);
}

TEST(TunerTest, ExecConfigPipelineTextRoundTrips) {
  // execConfigFromPipelineText must invert passPipelineTextFor on the
  // whole enumerated config space — the property the tuned-table warm
  // start rests on.
  for (const ExecConfig &C : enumerateConfigs(fullMask())) {
    std::string Text = passPipelineTextFor(C);
    ExecConfig Back;
    ASSERT_TRUE(execConfigFromPipelineText(Text, Back)) << Text;
    EXPECT_TRUE(Back == C) << Text;
  }
  // The NoCdp spelling maps back to the serialize-everything config.
  ExecConfig Back;
  ASSERT_TRUE(
      execConfigFromPipelineText(passPipelineTextFor(ExecConfig::noCdp()),
                                 Back));
  EXPECT_TRUE(Back == ExecConfig::noCdp());
  // Empty pipeline = default config.
  ASSERT_TRUE(execConfigFromPipelineText("", Back));
  EXPECT_TRUE(Back == ExecConfig());
  // Outside the vocabulary: profile knobs and unknown passes refuse.
  EXPECT_FALSE(execConfigFromPipelineText("threshold[profile]", Back));
  EXPECT_FALSE(execConfigFromPipelineText("speculate[64]", Back));
  EXPECT_FALSE(execConfigFromPipelineText("bogus", Back));
}

TEST(EmpiricalTunerTest, RankConfigsIsStableAndComplete) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(2, 5000, 9);
  std::vector<ExecConfig> Candidates = enumerateConfigs(fullMask());
  std::vector<size_t> Order = rankConfigs(Gpu, Batches, Candidates);
  ASSERT_EQ(Order.size(), Candidates.size());
  std::vector<bool> Seen(Candidates.size());
  double Prev = -1.0;
  for (size_t Idx : Order) {
    ASSERT_LT(Idx, Candidates.size());
    EXPECT_FALSE(Seen[Idx]);
    Seen[Idx] = true;
    double T = simulateBatches(Gpu, Batches, Candidates[Idx]).TimeUs;
    EXPECT_GE(T, Prev);
    Prev = T;
  }
}

} // namespace
