//===--- TunerTest.cpp - Section VIII-C tuning tests ---------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include <gtest/gtest.h>

#include <random>

using namespace dpo;

namespace {

std::vector<NestedBatch> irregularBatches(unsigned NumBatches,
                                          unsigned ParentsPerBatch,
                                          unsigned Seed = 1) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  std::vector<NestedBatch> Batches(NumBatches);
  for (auto &B : Batches) {
    B.NumParentThreads = ParentsPerBatch;
    B.ChildUnits.resize(ParentsPerBatch);
    for (auto &Units : B.ChildUnits) {
      double X = U(Rng);
      Units = X < 0.4 ? 0 : X < 0.9 ? (1 + Rng() % 24) : (64 + Rng() % 1000);
    }
  }
  return Batches;
}

VariantMask fullMask() {
  VariantMask Mask;
  Mask.Thresholding = true;
  Mask.Coarsening = true;
  Mask.Aggregation = true;
  return Mask;
}

TEST(TunerTest, ThresholdForLaunchBudget) {
  std::vector<NestedBatch> Batches = irregularBatches(4, 30000);
  uint32_t T = thresholdForLaunchBudget(Batches, 7000);
  // The chosen threshold leaves at most 7000 launches...
  uint64_t Launches = 0;
  for (const auto &B : Batches)
    for (uint32_t Units : B.ChildUnits)
      if (Units >= T)
        ++Launches;
  EXPECT_LE(Launches, 7000u);
  // ...and the next smaller power of two would exceed it.
  if (T > 1) {
    uint64_t Prev = 0;
    for (const auto &B : Batches)
      for (uint32_t Units : B.ChildUnits)
        if (Units >= T / 2)
          ++Prev;
    EXPECT_GT(Prev, 7000u);
  }
}

TEST(TunerTest, ExhaustiveBeatsOrMatchesEveryProbe) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(3, 20000);
  TuneResult Best = exhaustiveTune(Gpu, Batches, fullMask());
  // Spot-check a handful of configurations: none beats the winner.
  for (uint32_t T : {0u, 16u, 256u})
    for (AggGranularity G :
         {AggGranularity::None, AggGranularity::Block, AggGranularity::Grid}) {
      ExecConfig C;
      if (T)
        C.Threshold = T;
      C.Agg = G;
      C.CoarsenFactor = 4;
      EXPECT_GE(simulateBatches(Gpu, Batches, C).TimeUs,
                Best.Result.TimeUs - 1e-9);
    }
}

TEST(TunerTest, GuidedIsCloseToExhaustiveWithFewProbes) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(5, 25000, 3);
  TuneResult Exhaustive = exhaustiveTune(Gpu, Batches, fullMask());
  TuneResult Guided = guidedTune(Gpu, Batches, fullMask());
  // Section VIII-C: "less than ten runs" gets close to the best.
  EXPECT_LE(Guided.Probes, 10u);
  EXPECT_GT(Exhaustive.Probes, 100u);
  EXPECT_LE(Guided.Result.TimeUs, Exhaustive.Result.TimeUs * 1.8);
}

TEST(TunerTest, MaskRestrictsSearch) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(2, 10000, 5);
  VariantMask AggOnly;
  AggOnly.Aggregation = true;
  TuneResult R = exhaustiveTune(Gpu, Batches, AggOnly);
  EXPECT_FALSE(R.Config.Threshold.has_value());
  EXPECT_EQ(R.Config.CoarsenFactor, 1u);
  EXPECT_NE(R.Config.Agg, AggGranularity::None);

  VariantMask KlapLike = AggOnly;
  KlapLike.Granularities = {AggGranularity::Warp, AggGranularity::Block,
                            AggGranularity::Grid};
  TuneResult Klap = exhaustiveTune(Gpu, Batches, KlapLike);
  EXPECT_NE(Klap.Config.Agg, AggGranularity::MultiBlock);
  // Our framework's search space contains KLAP's, so it can't be slower.
  EXPECT_LE(R.Result.TimeUs, Klap.Result.TimeUs + 1e-9);
}

TEST(TunerTest, GuidedSkipsWarpGranularity) {
  GpuModel Gpu;
  std::vector<NestedBatch> Batches = irregularBatches(2, 15000, 7);
  TuneResult Guided = guidedTune(Gpu, Batches, fullMask());
  EXPECT_NE(Guided.Config.Agg, AggGranularity::Warp);
}

} // namespace
