//===--- DatasetTest.cpp - Generator scale/shape checks (Table I) -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datasets/Generators.h"
#include "workloads/Catalog.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

TEST(DatasetTest, KronMatchesTableI) {
  // kron_g500-simple-logn16: 65,536 vertices, ~2.4M (symmetrized) edges,
  // power-law degrees.
  CsrGraph G = makeKronGraph();
  EXPECT_EQ(G.NumVertices, 65536u);
  EXPECT_GT(G.numEdges(), 1'800'000u);
  EXPECT_LT(G.numEdges(), 2'800'000u);
  // Power law: the maximum degree is orders of magnitude above the mean.
  EXPECT_GT(G.maxDegree(), 50 * G.avgDegree());
  // Many isolated/low-degree vertices.
  uint32_t Low = 0;
  for (uint32_t V = 0; V < G.NumVertices; ++V)
    if (G.degree(V) <= 2)
      ++Low;
  EXPECT_GT(Low, G.NumVertices / 4);
}

TEST(DatasetTest, WebGraphMatchesTableI) {
  // cnr-2000: 325,557 vertices, ~2.7M edges.
  CsrGraph G = makeWebGraph();
  EXPECT_EQ(G.NumVertices, 325557u);
  EXPECT_GT(G.numEdges(), 2'000'000u);
  EXPECT_LT(G.numEdges(), 3'400'000u);
  EXPECT_GT(G.maxDegree(), 500u); // heavy tail
}

TEST(DatasetTest, RoadGraphMatchesTableI) {
  // USA-road-d.NY: 264,346 vertices, avg degree ~3, max degree 8.
  CsrGraph G = makeRoadGraph();
  EXPECT_NEAR((double)G.NumVertices, 264346.0, 4000.0);
  EXPECT_GT(G.avgDegree(), 2.2);
  EXPECT_LT(G.avgDegree(), 3.8);
  EXPECT_LE(G.maxDegree(), 8u);
}

TEST(DatasetTest, GeneratorsAreDeterministic) {
  CsrGraph A = makeKronGraph(12, 8, 99);
  CsrGraph B = makeKronGraph(12, 8, 99);
  EXPECT_EQ(A.Col, B.Col);
  EXPECT_EQ(A.RowPtr, B.RowPtr);
  CsrGraph C = makeKronGraph(12, 8, 100);
  EXPECT_NE(A.Col, C.Col);
}

TEST(DatasetTest, EveryGeneratorIsByteIdenticalAcrossRuns) {
  // The differential corpus and the committed tuned tables both assume
  // regenerating a dataset reproduces it exactly — byte-identical CSR
  // arrays, weights, literals, and tessellation factors.
  {
    CsrGraph A = makeWebGraph(5000, 7.0, 42), B = makeWebGraph(5000, 7.0, 42);
    EXPECT_EQ(A.RowPtr, B.RowPtr);
    EXPECT_EQ(A.Col, B.Col);
    EXPECT_EQ(A.Weight, B.Weight);
  }
  {
    CsrGraph A = makeRoadGraph(40, 7), B = makeRoadGraph(40, 7);
    EXPECT_EQ(A.RowPtr, B.RowPtr);
    EXPECT_EQ(A.Col, B.Col);
    EXPECT_EQ(A.Weight, B.Weight);
  }
  {
    CsrGraph A = makeKronGraph(10, 8, 5), B = makeKronGraph(10, 8, 5);
    EXPECT_EQ(A.Weight, B.Weight); // Col/RowPtr covered above
  }
  {
    SatFormula A = makeRandomKSat(500, 2100, 3, 9);
    SatFormula B = makeRandomKSat(500, 2100, 3, 9);
    EXPECT_EQ(A.ClauseLits, B.ClauseLits);
    EXPECT_EQ(A.OccRowPtr, B.OccRowPtr);
    EXPECT_EQ(A.OccClause, B.OccClause);
  }
  {
    BezierDataset A = makeBezierLines(500, 64, 16.0, 3);
    BezierDataset B = makeBezierLines(500, 64, 16.0, 3);
    ASSERT_EQ(A.Lines.size(), B.Lines.size());
    for (size_t I = 0; I < A.Lines.size(); ++I) {
      EXPECT_EQ(A.Lines[I].P0, B.Lines[I].P0);
      EXPECT_EQ(A.Lines[I].P1, B.Lines[I].P1);
      EXPECT_EQ(A.Lines[I].P2, B.Lines[I].P2);
      EXPECT_EQ(A.Lines[I].Tessellation, B.Lines[I].Tessellation);
    }
  }
}

TEST(DatasetTest, WorkloadBatchesAreByteIdenticalAcrossRuns) {
  CsrGraph G = makeRoadGraph(24, 11);
  WorkloadOutput A = runBfs(G), B = runBfs(G);
  ASSERT_EQ(A.Batches.size(), B.Batches.size());
  for (size_t I = 0; I < A.Batches.size(); ++I) {
    EXPECT_EQ(A.Batches[I].ChildUnits, B.Batches[I].ChildUnits);
    EXPECT_EQ(A.Batches[I].NumParentThreads, B.Batches[I].NumParentThreads);
  }
  EXPECT_EQ(A.ParentItems, B.ParentItems);
  EXPECT_EQ(A.Levels, B.Levels);
}

TEST(DatasetTest, RunCaseCachingReturnsIdenticalOutput) {
  // runCase memoizes per (benchmark, dataset): the second call must hand
  // back the same cached object, and its payload must equal a fresh
  // native run over the same dataset instance.
  BenchCase Case{BenchmarkId::BT, DatasetId::T0032_C16};
  const WorkloadOutput &First = runCase(Case);
  const WorkloadOutput &Second = runCase(Case);
  EXPECT_EQ(&First, &Second) << "cache must return the same object";
  WorkloadOutput Fresh = runBezier(datasetBezier(Case.Data));
  EXPECT_EQ(First.Batches.size(), Fresh.Batches.size());
  ASSERT_FALSE(First.Batches.empty());
  EXPECT_EQ(First.Batches[0].ChildUnits, Fresh.Batches[0].ChildUnits);
  EXPECT_EQ(First.CheckSum, Fresh.CheckSum);
}

TEST(DatasetTest, SymmetryOfGraphs) {
  CsrGraph G = makeKronGraph(10, 8, 5);
  // Every arc has its reverse.
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E) {
      uint32_t V = G.Col[E];
      bool Found = false;
      for (uint32_t E2 = G.RowPtr[V]; E2 < G.RowPtr[V + 1] && !Found; ++E2)
        Found = G.Col[E2] == U;
      EXPECT_TRUE(Found) << U << "->" << V << " missing reverse";
    }
}

TEST(DatasetTest, SymmetricWeights) {
  CsrGraph G = makeKronGraph(10, 8, 5);
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E) {
      uint32_t V = G.Col[E];
      for (uint32_t E2 = G.RowPtr[V]; E2 < G.RowPtr[V + 1]; ++E2)
        if (G.Col[E2] == U)
          EXPECT_EQ(G.Weight[E], G.Weight[E2]);
    }
}

TEST(DatasetTest, RandomKSatShape) {
  SatFormula F = makeRandomKSat(10000, 42000, 3);
  EXPECT_EQ(F.NumVars, 10000u);
  EXPECT_EQ(F.numClauses(), 42000u);
  EXPECT_EQ(F.ClauseLits.size(), 126000u);
  // Mean occurrences = K * clauses / vars = 12.6 (the paper's low-nested-
  // parallelism case: "all child grids have fewer than 32 threads").
  uint64_t Sum = 0;
  uint32_t Over32 = 0;
  for (uint32_t V = 0; V < F.NumVars; ++V) {
    Sum += F.occurrences(V);
    if (F.occurrences(V) >= 32)
      ++Over32;
  }
  EXPECT_EQ(Sum, 126000u);
  EXPECT_LT(Over32, F.NumVars / 50);
}

TEST(DatasetTest, FiveSatLiteralCount) {
  SatFormula F = makeRandomKSat(2500, 23459, 5);
  EXPECT_EQ(F.ClauseLits.size(), 117295u); // Table I: 117,296 literals
  // Occurrences per variable are much higher than RAND-3 (~47 mean).
  EXPECT_GT((double)F.ClauseLits.size() / F.NumVars, 40.0);
}

TEST(DatasetTest, ClausesHaveDistinctVars) {
  SatFormula F = makeRandomKSat(100, 500, 3, 3);
  for (uint32_t C = 0; C < F.numClauses(); ++C) {
    uint32_t V0 = F.ClauseLits[C * 3] / 2;
    uint32_t V1 = F.ClauseLits[C * 3 + 1] / 2;
    uint32_t V2 = F.ClauseLits[C * 3 + 2] / 2;
    EXPECT_NE(V0, V1);
    EXPECT_NE(V0, V2);
    EXPECT_NE(V1, V2);
  }
}

TEST(DatasetTest, OccurrenceCsrIsConsistent) {
  SatFormula F = makeRandomKSat(200, 900, 4, 8);
  // Every (var, clause) incidence appears exactly once in the CSR.
  uint64_t Total = 0;
  for (uint32_t V = 0; V < F.NumVars; ++V) {
    for (uint32_t O = F.OccRowPtr[V]; O < F.OccRowPtr[V + 1]; ++O) {
      uint32_t Clause = F.OccClause[O];
      bool Found = false;
      for (uint32_t L = 0; L < F.K; ++L)
        if (F.ClauseLits[Clause * F.K + L] / 2 == V)
          Found = true;
      EXPECT_TRUE(Found);
      ++Total;
    }
  }
  EXPECT_EQ(Total, F.ClauseLits.size());
}

TEST(DatasetTest, BezierTessellationRanges) {
  BezierDataset Small = makeBezierLines(20000, 32, 16.0);
  BezierDataset Large = makeBezierLines(20000, 2048, 64.0);
  EXPECT_EQ(Small.Lines.size(), 20000u);
  uint64_t SmallTotal = 0, LargeTotal = 0;
  for (const auto &L : Small.Lines) {
    EXPECT_LE(L.Tessellation, 32u);
    SmallTotal += L.Tessellation;
  }
  for (const auto &L : Large.Lines) {
    EXPECT_LE(L.Tessellation, 2048u);
    LargeTotal += L.Tessellation;
  }
  // The T2048-C64 configuration tessellates much more finely.
  EXPECT_GT(LargeTotal, 5 * SmallTotal);
}

TEST(DatasetTest, HeadSubgraphIsInduced) {
  CsrGraph G = makeKronGraph(10, 8, 7);
  CsrGraph Sub = G.headSubgraph(128);
  EXPECT_EQ(Sub.NumVertices, 128u);
  for (uint32_t U = 0; U < Sub.NumVertices; ++U)
    for (uint32_t E = Sub.RowPtr[U]; E < Sub.RowPtr[U + 1]; ++E)
      EXPECT_LT(Sub.Col[E], 128u);
}

} // namespace
