//===--- KernelCorpusTest.cpp - Fast corpus/tuner-integration checks ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1-sized checks of the kernel corpus plumbing: workload-spec
/// parsing, tuned-table serialization, the VM workload binding, and one
/// quick end-to-end differential case. The exhaustive pipeline matrix and
/// the tuned-table drift gate live in the `differential` ctest label
/// (tests/differential/).
///
//===----------------------------------------------------------------------===//

#include "tuner/TunedTable.h"
#include "workloads/Differential.h"
#include "workloads/KernelSources.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

TEST(WorkloadSpecTest, ParsesBenchAndDataset) {
  BenchCase Case;
  std::string Error;
  ASSERT_TRUE(parseWorkloadSpec("bfs:road_ny", Case, Error)) << Error;
  EXPECT_EQ(Case.Bench, BenchmarkId::BFS);
  EXPECT_EQ(Case.Data, DatasetId::ROAD_NY);

  // Case-insensitive, '-' and '_' interchangeable.
  ASSERT_TRUE(parseWorkloadSpec("BT:T2048-C64", Case, Error)) << Error;
  EXPECT_EQ(Case.Bench, BenchmarkId::BT);
  EXPECT_EQ(Case.Data, DatasetId::T2048_C64);

  // Bare benchmark defaults to its Fig. 11 dataset.
  ASSERT_TRUE(parseWorkloadSpec("sp", Case, Error)) << Error;
  EXPECT_EQ(Case.Bench, BenchmarkId::SP);
  EXPECT_EQ(Case.Data, DatasetId::SAT5);

  EXPECT_FALSE(parseWorkloadSpec("bogus:kron", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("bfs:bogus", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("", Case, Error));

  // Kind-mismatched pairs are rejected, not silently run on an empty or
  // wrong-kind dataset.
  EXPECT_FALSE(parseWorkloadSpec("bfs:rand3", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("sp:kron", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("bt:sat5", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("sp:t2048_c64", Case, Error));
  EXPECT_FALSE(parseWorkloadSpec("tc:t0032_c16", Case, Error));
}

TEST(TunedEntryTest, JsonRoundTrips) {
  TunedEntry Entry;
  Entry.Workload = "tc:kron";
  Entry.Mode = TuneMode::Hybrid;
  Entry.Budget = 32;
  Entry.Seed = 7;
  Entry.Pipeline = "threshold[64],aggregate[multiblock:8]";
  Entry.TimeUs = 123.456;
  Entry.VmEvaluations = 19;

  TunedEntry Parsed;
  std::string Error;
  ASSERT_TRUE(parseTunedEntryJson(tunedEntryJson(Entry), Parsed, Error))
      << Error;
  EXPECT_EQ(Parsed.Workload, Entry.Workload);
  EXPECT_EQ(Parsed.Mode, Entry.Mode);
  EXPECT_EQ(Parsed.Budget, Entry.Budget);
  EXPECT_EQ(Parsed.Seed, Entry.Seed);
  EXPECT_EQ(Parsed.Pipeline, Entry.Pipeline);
  EXPECT_NEAR(Parsed.TimeUs, Entry.TimeUs, 1e-3);
  EXPECT_EQ(Parsed.VmEvaluations, Entry.VmEvaluations);

  // An untransformed winner (empty pipeline) is representable.
  Entry.Pipeline.clear();
  ASSERT_TRUE(parseTunedEntryJson(tunedEntryJson(Entry), Parsed, Error))
      << Error;
  EXPECT_TRUE(Parsed.Pipeline.empty());

  EXPECT_EQ(tunedTableFileName("bfs:road_ny"), "bfs_road_ny.json");
  EXPECT_EQ(tunedTableFileName("BT:T2048-C64"), "bt_t2048_c64.json");
}

TEST(KernelCorpusTest, QuickDifferentialSmoke) {
  // One cheap case through a representative pipeline pair — the full
  // matrix runs under the `differential` label.
  const KernelCase *Mstv = nullptr;
  for (const KernelCase &Case : differentialCorpus())
    if (Case.Bench == BenchmarkId::MSTV)
      Mstv = &Case;
  ASSERT_NE(Mstv, nullptr);
  WorkloadOutput Native = Mstv->reference();
  for (const char *Pipeline : {"", "threshold[32],coarsen[2]"}) {
    DifferentialRun Run = runKernelCaseOnVm(*Mstv, Pipeline, true);
    ASSERT_TRUE(Run.Ok) << Run.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Mstv->Bench, Native, Run.Payload, Why)) << Why;
  }
}

TEST(KernelCorpusTest, BoundWorkloadMeasuresDeterministically) {
  // The replay binding stages the real dataset and the evaluator measures
  // through it; same config twice must hit the measurement cache, and a
  // fresh evaluator must reproduce the numbers exactly.
  BenchCase Case;
  std::string Error;
  ASSERT_TRUE(parseWorkloadSpec("bfs:road_ny", Case, Error)) << Error;
  VmWorkload Workload = kernelVmWorkload(Case);
  ASSERT_TRUE(Workload.Binding != nullptr);
  ASSERT_FALSE(Workload.Batches.empty());

  GpuModel Gpu;
  EmpiricalOptions Opts;
  Opts.Budget = 4;
  EmpiricalEvaluator EvalA(Gpu, Workload, Opts);
  std::optional<VmMeasurement> A = EvalA.measure(ExecConfig::cdp(), 1);
  ASSERT_TRUE(A.has_value()) << EvalA.lastError();
  EXPECT_GT(A->Steps, 0u);
  EXPECT_GT(A->DeviceLaunches, 0u);

  std::optional<VmMeasurement> Cached = EvalA.measure(ExecConfig::cdp(), 1);
  ASSERT_TRUE(Cached.has_value());
  EXPECT_EQ(EvalA.cacheHits(), 1u);

  EmpiricalEvaluator EvalB(Gpu, Workload, Opts);
  std::optional<VmMeasurement> B = EvalB.measure(ExecConfig::cdp(), 1);
  ASSERT_TRUE(B.has_value()) << EvalB.lastError();
  EXPECT_EQ(A->Steps, B->Steps);
  EXPECT_EQ(A->DeviceLaunches, B->DeviceLaunches);
  EXPECT_EQ(A->Cycles, B->Cycles);

  // A thresholded pipeline runs through the same binding with fewer
  // dynamic launches.
  ExecConfig Thresh;
  Thresh.Threshold = 1000000u;
  std::optional<VmMeasurement> T = EvalA.measure(Thresh, 1);
  ASSERT_TRUE(T.has_value()) << EvalA.lastError();
  EXPECT_EQ(T->DeviceLaunches, 0u);
}

} // namespace
