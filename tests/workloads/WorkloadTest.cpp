//===--- WorkloadTest.cpp - Benchmark correctness vs. references --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <numeric>
#include <queue>
#include <random>
#include <set>

using namespace dpo;

namespace {

CsrGraph smallRandomGraph(uint32_t N, uint32_t M, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t E = 0; E < M; ++E)
    Edges.push_back({(uint32_t)(Rng() % N), (uint32_t)(Rng() % N)});
  return CsrGraph::fromEdges(N, std::move(Edges), /*Symmetrize=*/true,
                             /*MaxWeight=*/50, Seed);
}

// Reference algorithms.

std::vector<uint32_t> referenceBfs(const CsrGraph &G, uint32_t Source) {
  std::vector<uint32_t> Level(G.NumVertices, UnreachedLevel);
  std::queue<uint32_t> Queue;
  Level[Source] = 0;
  Queue.push(Source);
  while (!Queue.empty()) {
    uint32_t V = Queue.front();
    Queue.pop();
    for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E)
      if (Level[G.Col[E]] == UnreachedLevel) {
        Level[G.Col[E]] = Level[V] + 1;
        Queue.push(G.Col[E]);
      }
  }
  return Level;
}

std::vector<uint64_t> referenceDijkstra(const CsrGraph &G, uint32_t Source) {
  std::vector<uint64_t> Dist(G.NumVertices, InfDist);
  using Entry = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> Heap;
  Dist[Source] = 0;
  Heap.push({0, Source});
  while (!Heap.empty()) {
    auto [D, V] = Heap.top();
    Heap.pop();
    if (D > Dist[V])
      continue;
    for (uint32_t E = G.RowPtr[V]; E < G.RowPtr[V + 1]; ++E) {
      uint64_t Cand = D + G.Weight[E];
      if (Cand < Dist[G.Col[E]]) {
        Dist[G.Col[E]] = Cand;
        Heap.push({Cand, G.Col[E]});
      }
    }
  }
  return Dist;
}

uint64_t referenceKruskal(const CsrGraph &G) {
  struct Edge {
    uint32_t W, U, V;
  };
  std::vector<Edge> Edges;
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E)
      if (U < G.Col[E])
        Edges.push_back({G.Weight[E], U, G.Col[E]});
  std::sort(Edges.begin(), Edges.end(), [](const Edge &A, const Edge &B) {
    return std::tie(A.W, A.U, A.V) < std::tie(B.W, B.U, B.V);
  });
  std::vector<uint32_t> Parent(G.NumVertices);
  std::iota(Parent.begin(), Parent.end(), 0);
  std::function<uint32_t(uint32_t)> Find = [&](uint32_t V) {
    return Parent[V] == V ? V : Parent[V] = Find(Parent[V]);
  };
  uint64_t Weight = 0;
  for (const Edge &E : Edges) {
    uint32_t RU = Find(E.U), RV = Find(E.V);
    if (RU != RV) {
      Parent[RU] = RV;
      Weight += E.W;
    }
  }
  return Weight;
}

uint64_t referenceTriangles(const CsrGraph &G) {
  std::vector<std::set<uint32_t>> Adj(G.NumVertices);
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E)
      if (G.Col[E] != U)
        Adj[U].insert(G.Col[E]);
  uint64_t Count = 0;
  for (uint32_t U = 0; U < G.NumVertices; ++U)
    for (uint32_t V : Adj[U]) {
      if (V <= U)
        continue;
      for (uint32_t W : Adj[V])
        if (W > V && Adj[U].count(W))
          ++Count;
    }
  return Count;
}

class GraphWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphWorkloadTest, BfsMatchesReference) {
  CsrGraph G = smallRandomGraph(500, 1500, GetParam());
  WorkloadOutput Out = runBfs(G, 0);
  EXPECT_EQ(Out.Levels, referenceBfs(G, 0));
  // One batch per BFS level; frontier sizes match the level population.
  uint32_t MaxLevel = 0;
  uint64_t Reached = 0;
  for (uint32_t L : Out.Levels)
    if (L != UnreachedLevel) {
      MaxLevel = std::max(MaxLevel, L);
      ++Reached;
    }
  EXPECT_EQ(Out.Batches.size(), (size_t)MaxLevel + 1);
  uint64_t FrontierSum = 0;
  for (const NestedBatch &B : Out.Batches)
    FrontierSum += B.NumParentThreads;
  EXPECT_EQ(FrontierSum, Reached);
}

TEST_P(GraphWorkloadTest, SsspMatchesDijkstra) {
  CsrGraph G = smallRandomGraph(400, 1200, GetParam() + 100);
  WorkloadOutput Out = runSssp(G, 0);
  EXPECT_EQ(Out.Dist, referenceDijkstra(G, 0));
  EXPECT_FALSE(Out.Batches.empty());
}

TEST_P(GraphWorkloadTest, BoruvkaMatchesKruskal) {
  CsrGraph G = smallRandomGraph(300, 900, GetParam() + 200);
  WorkloadOutput Out = runMstFind(G);
  EXPECT_EQ(Out.MstWeight, referenceKruskal(G));
  // Boruvka needs at most log2(N) rounds on a connected graph (a few more
  // batches on disconnected ones).
  EXPECT_LE(Out.Batches.size(), 32u);
  EXPECT_GE(Out.Batches.size(), 1u);
}

TEST_P(GraphWorkloadTest, TriangleCountMatchesReference) {
  CsrGraph G = smallRandomGraph(200, 1200, GetParam() + 300);
  WorkloadOutput Out = runTriangleCount(G);
  EXPECT_EQ(Out.TriangleCount, referenceTriangles(G));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphWorkloadTest,
                         ::testing::Values(1, 7, 42, 1234));

TEST(WorkloadTest, BfsBatchUnitsAreDegrees) {
  CsrGraph G = smallRandomGraph(100, 300, 5);
  WorkloadOutput Out = runBfs(G, 0);
  ASSERT_FALSE(Out.Batches.empty());
  // First batch: just the source.
  ASSERT_EQ(Out.Batches[0].NumParentThreads, 1u);
  EXPECT_EQ(Out.Batches[0].ChildUnits[0], G.degree(0));
}

TEST(WorkloadTest, MstVerifySingleBatchOverAllVertices) {
  CsrGraph G = smallRandomGraph(250, 700, 11);
  WorkloadOutput Out = runMstVerify(G);
  ASSERT_EQ(Out.Batches.size(), 1u);
  EXPECT_EQ(Out.Batches[0].NumParentThreads, G.NumVertices);
  for (uint32_t V = 0; V < G.NumVertices; ++V)
    EXPECT_EQ(Out.Batches[0].ChildUnits[V], G.degree(V));
  EXPECT_GT(Out.CheckSum, 0);
}

TEST(WorkloadTest, SurveyPropagationConvergesAndIsDeterministic) {
  SatFormula F = makeRandomKSat(500, 2100, 3, 9);
  WorkloadOutput A = runSurveyProp(F);
  WorkloadOutput B = runSurveyProp(F);
  EXPECT_TRUE(A.Converged);
  EXPECT_EQ(A.CheckSum, B.CheckSum);
  EXPECT_EQ(A.Batches.size(), B.Batches.size());
  // Child units are occurrence counts.
  for (uint32_t V = 0; V < F.NumVars; ++V)
    EXPECT_EQ(A.Batches[0].ChildUnits[V], F.occurrences(V));
}

TEST(WorkloadTest, BezierTessellationCountsAndChecksum) {
  BezierDataset D = makeBezierLines(1000, 64, 32.0, 3);
  WorkloadOutput Out = runBezier(D);
  ASSERT_EQ(Out.Batches.size(), 1u);
  EXPECT_EQ(Out.Batches[0].NumParentThreads, 1000u);
  uint64_t Total = 0;
  for (const BezierLine &L : D.Lines) {
    EXPECT_GE(L.Tessellation, 4u);
    EXPECT_LE(L.Tessellation, 64u);
    Total += L.Tessellation;
  }
  EXPECT_EQ(Out.totalChildUnits(), Total);
  // Endpoint property: the curve at t=0 and t=1 passes through P0/P2; the
  // checksum is a stable digest of evaluated points.
  EXPECT_NE(Out.CheckSum, 0.0);
}

TEST(WorkloadTest, DisconnectedGraphBfs) {
  // Two components; BFS from 0 must not reach the second.
  std::vector<std::pair<uint32_t, uint32_t>> Edges = {{0, 1}, {1, 2}, {3, 4}};
  CsrGraph G = CsrGraph::fromEdges(5, Edges, true, 10);
  WorkloadOutput Out = runBfs(G, 0);
  EXPECT_EQ(Out.Levels[2], 2u);
  EXPECT_EQ(Out.Levels[3], UnreachedLevel);
  EXPECT_EQ(Out.Levels[4], UnreachedLevel);
}

TEST(WorkloadTest, MstOnDisconnectedGraphIsForest) {
  std::vector<std::pair<uint32_t, uint32_t>> Edges = {{0, 1}, {1, 2}, {3, 4}};
  CsrGraph G = CsrGraph::fromEdges(5, Edges, true, 10);
  WorkloadOutput Out = runMstFind(G);
  EXPECT_EQ(Out.MstWeight, referenceKruskal(G));
}

TEST(WorkloadTest, EmptyGraphEdgeCases) {
  CsrGraph Empty;
  Empty.NumVertices = 0;
  Empty.RowPtr = {0};
  EXPECT_TRUE(runBfs(Empty, 0).Batches.empty());
  WorkloadOutput Tc = runTriangleCount(Empty);
  EXPECT_EQ(Tc.TriangleCount, 0u);
}

} // namespace
