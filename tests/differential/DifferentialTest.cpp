//===--- DifferentialTest.cpp - Table I kernels vs. native references ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end differential suite: every Table I benchmark, written as
/// a real DSL kernel over a real (scaled) dataset, compiled through every
/// registered pipeline variant, lowered with the peephole optimizer on
/// and off, executed on the VM with the host driving rounds — and the
/// correctness payload compared exactly against the native reference
/// implementation. A silent semantic break anywhere in the stack (parser,
/// any pass in any order, bytecode lowering, optimizer, interpreter,
/// launch machinery) shows up here as a payload diff naming the first
/// diverging element.
///
/// Registered under the `differential` ctest label: scripts/check.sh
/// skips it by default (tier1 only) and CI runs it as a separate job.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "profile/Profile.h"
#include "sema/Transformability.h"
#include "transform/PassManager.h"
#include "transform/Pipeline.h"
#include "vm/Compiler.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <random>

using namespace dpo;

namespace {

class DifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DifferentialTest, AllPipelinesMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();

  for (const std::string &Pipeline : differentialPipelines()) {
    for (bool Optimize : {true, false}) {
      DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, Optimize);
      ASSERT_TRUE(Run.Ok)
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Run.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Why << "\ntransformed:\n"
          << Run.TransformedSource;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

// The matrix above is only as strong as its pipeline list: every entry
// must actually parse through the registry (a typo would silently skip a
// variant), and the corpus must cover all seven benchmarks with at least
// two datasets each.

TEST(DifferentialSuite, PipelinesAllParse) {
  for (const std::string &Pipeline : differentialPipelines()) {
    if (Pipeline.empty())
      continue;
    PassManager PM;
    std::string Error;
    EXPECT_TRUE(parsePassPipeline(PM, Pipeline, literalKnobConfig(), Error))
        << "'" << Pipeline << "': " << Error;
  }
}

TEST(DifferentialSuite, CorpusCoversTableOne) {
  std::map<BenchmarkId, unsigned> Datasets;
  for (const KernelCase &Case : differentialCorpus())
    ++Datasets[Case.Bench];
  EXPECT_EQ(Datasets.size(), 7u) << "every Table I benchmark present";
  for (const auto &[Bench, Count] : Datasets)
    EXPECT_GE(Count, 2u) << benchmarkName(Bench) << " needs >= 2 datasets";
}

// Transform behavior sanity on a real kernel (not just the canonical
// shape): thresholding a BFS kernel must reduce dynamic launches without
// touching the payload, and grid aggregation must eliminate them.

TEST(DifferentialSuite, ThresholdingReducesLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0]; // BFS/kron-mini
  ASSERT_EQ(Case.Bench, BenchmarkId::BFS);
  DifferentialRun Base = runKernelCaseOnVm(Case, "", true);
  DifferentialRun Thresh = runKernelCaseOnVm(Case, "threshold[1000000]", true);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_GT(Base.Stats.DeviceLaunches, 0u);
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, 0u);
}

TEST(DifferentialSuite, GridAggregationHoistsLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0];
  DifferentialRun Agg = runKernelCaseOnVm(Case, "aggregate[grid]", true);
  ASSERT_TRUE(Agg.Ok) << Agg.Error;
  EXPECT_EQ(Agg.Stats.DeviceLaunches, 0u);
  EXPECT_GT(Agg.Stats.HostLaunches, 0u);
}

//===----------------------------------------------------------------------===//
// Engine axis: the traced decoded engine, the untraced decoded engine,
// and the bytecode interpreter are one observable machine. Payloads must
// match the native reference on each, and the retired step count — the
// currency the tuner's committed tables are priced in — must be
// bit-identical across all three, trace side exits included.
//===----------------------------------------------------------------------===//

class EngineAxisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EngineAxisTest, StepsBitIdenticalAcrossEngines) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  const std::string Pipelines[] = {
      "", "threshold[64],coarsen[4],aggregate[multiblock:8]"};
  for (const std::string &Pipeline : Pipelines) {
    DifferentialRun Ref;
    for (ExecMode Mode : {ExecMode::Decoded, ExecMode::DecodedNoTrace,
                          ExecMode::Bytecode}) {
      DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, true,
                                              16ull << 20, /*Workers=*/1,
                                              Mode);
      ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline
                          << "] engine=" << (int)Mode << ": " << Run.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
          << Case.Name << " [" << Pipeline << "] engine=" << (int)Mode << ": "
          << Why;
      if (Mode == ExecMode::Decoded) {
        Ref = Run;
        continue;
      }
      EXPECT_EQ(Run.Stats.Steps, Ref.Stats.Steps)
          << Case.Name << " [" << Pipeline << "] engine=" << (int)Mode
          << ": step accounting diverged from the traced engine";
      EXPECT_EQ(Run.Stats.GridsLaunched, Ref.Stats.GridsLaunched);
      EXPECT_EQ(Run.Stats.DeviceLaunches, Ref.Stats.DeviceLaunches);
      EXPECT_EQ(Run.Stats.ThreadsExecuted, Ref.Stats.ThreadsExecuted);
    }

    // Engine x worker cross: trace execution composes with the parallel
    // grid drain — same payload at 2 and 4 workers on the traced engine.
    for (unsigned Workers : {2u, 4u}) {
      DifferentialRun Par = runKernelCaseOnVm(Case, Pipeline, true,
                                              16ull << 20, Workers,
                                              ExecMode::Decoded);
      ASSERT_TRUE(Par.Ok) << Case.Name << " [" << Pipeline << "] workers="
                          << Workers << ": " << Par.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Par.Payload, Why))
          << Case.Name << " [" << Pipeline << "] traced workers=" << Workers
          << ": " << Why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EngineAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Worker-count axis: the corpus kernels claim their work through real
// atomics (CAS frontier claims, atomicMin relaxations), so the payload
// contract must hold unchanged when independent grids of one batch drain
// concurrently. Single-worker execution additionally keeps the
// deterministic step accounting the tuner's committed tables are priced
// against.
//===----------------------------------------------------------------------===//

class WorkerAxisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkerAxisTest, PayloadsIdenticalAtEveryWorkerCount) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  const std::string Pipelines[] = {
      "", "threshold[64],coarsen[4],aggregate[multiblock:8]"};
  for (const std::string &Pipeline : Pipelines) {
    DifferentialRun Solo =
        runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, /*Workers=*/1);
    ASSERT_TRUE(Solo.Ok) << Case.Name << " [" << Pipeline
                         << "]: " << Solo.Error;
    std::string Why;
    ASSERT_TRUE(payloadsMatch(Case.Bench, Native, Solo.Payload, Why))
        << Case.Name << " [" << Pipeline << "] workers=1: " << Why;

    // Determinism mode: a second single-worker run retires the identical
    // step count (the bit-exact contract DPO_VM_WORKERS=1 documents).
    DifferentialRun Solo2 =
        runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, /*Workers=*/1);
    ASSERT_TRUE(Solo2.Ok) << Solo2.Error;
    EXPECT_EQ(Solo.Stats.Steps, Solo2.Stats.Steps)
        << Case.Name << " [" << Pipeline << "]: single-worker step "
        << "accounting is not deterministic";

    for (unsigned Workers : {2u, 4u}) {
      DifferentialRun Par =
          runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, Workers);
      ASSERT_TRUE(Par.Ok) << Case.Name << " [" << Pipeline << "] workers="
                          << Workers << ": " << Par.Error;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Par.Payload, Why))
          << Case.Name << " [" << Pipeline << "] workers=" << Workers << ": "
          << Why << "\ntransformed:\n"
          << Par.TransformedSource;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WorkerAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Randomized pipeline-ordering fuzz: the fixed matrix above covers the
// registered variants; this samples *arbitrary* registry orderings with
// arbitrary knobs per corpus case and demands the same exact payloads.
//===----------------------------------------------------------------------===//

std::string randomPipeline(std::mt19937 &Rng) {
  const char *Thresholds[] = {"threshold[4]", "threshold[16]", "threshold[64]",
                              "threshold[256]", "threshold[1000000]"};
  const char *Coarsens[] = {"coarsen[2]", "coarsen[3]", "coarsen[4]",
                            "coarsen[8]"};
  const char *Aggregates[] = {"aggregate[warp]", "aggregate[block]",
                              "aggregate[multiblock:4]",
                              "aggregate[multiblock:8]", "aggregate[grid]"};
  std::vector<std::string> Parts;
  if (Rng() % 2)
    Parts.push_back(Thresholds[Rng() % 5]);
  if (Rng() % 2)
    Parts.push_back(Coarsens[Rng() % 4]);
  if (Rng() % 2)
    Parts.push_back(Aggregates[Rng() % 5]);
  if (Parts.empty())
    Parts.push_back(Thresholds[Rng() % 5]);
  // Fisher-Yates with the test's own Rng: std::shuffle's ordering is
  // implementation-defined, and this fuzz must replay identically.
  for (size_t I = Parts.size(); I > 1; --I)
    std::swap(Parts[I - 1], Parts[Rng() % I]);
  std::string Text;
  for (size_t I = 0; I < Parts.size(); ++I)
    Text += (I ? "," : "") + Parts[I];
  return Text;
}

class PipelineOrderFuzzTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineOrderFuzzTest, RandomOrderingsMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  std::mt19937 Rng(0xD1FFu + (unsigned)GetParam() * 7919u);
  constexpr int SeedsPerCase = 3;
  for (int S = 0; S < SeedsPerCase; ++S) {
    std::string Pipeline = randomPipeline(Rng);
    DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, true);
    ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline << "]: " << Run.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
        << Case.Name << " [" << Pipeline << "]: " << Why << "\ntransformed:\n"
        << Run.TransformedSource;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PipelineOrderFuzzTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// The cooperative-transformability path, end to end: a corpus child with
// structural __shared__ + __syncthreads is serialized in the segmented
// (barrier-preserving) form, payload-exact; a child that synchronizes
// across blocks through an atomic spin-wait is still refused.
//===----------------------------------------------------------------------===//

struct ProbeRun {
  bool Ok = false;
  std::string Error;
  std::vector<int32_t> Sums;
  VmStats Stats;
  std::string Src;
};

ProbeRun runProbeSource(const char *Source, const std::string &Pipeline) {
  ProbeRun R;
  std::string Src = Source;
  if (!Pipeline.empty()) {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Src, Pipeline, literalKnobConfig(),
                                      Diags);
    if (Src.empty()) {
      R.Error = "pipeline failed: " + Diags.str();
      return R;
    }
  }
  R.Src = Src;

  DiagnosticEngine Diags;
  auto Dev = buildDevice(Src, Diags);
  if (!Dev) {
    R.Error = "build failed: " + Diags.str();
    return R;
  }

  // Deterministic skewed CSR: a few hub vertices with hundreds of
  // edges, many leaves, some isolated vertices.
  constexpr int NumV = 40;
  std::vector<int32_t> RowPtr(NumV + 1), Col;
  std::mt19937 Rng(4242);
  for (int V = 0; V < NumV; ++V) {
    RowPtr[V] = (int32_t)Col.size();
    int Deg = V % 7 == 0 ? 150 + (int)(Rng() % 200)
                         : (V % 3 == 0 ? (int)(Rng() % 9) : 0);
    for (int E = 0; E < Deg; ++E)
      Col.push_back((int32_t)(Rng() % 1000));
  }
  RowPtr[NumV] = (int32_t)Col.size();

  uint64_t RowPtrA = Dev->allocI32(RowPtr);
  uint64_t ColA = Dev->allocI32(Col);
  uint64_t SumsA = Dev->alloc((uint64_t)NumV * 4);
  if (!launchWorkloadParent(*Dev, "parent", NumV, 128,
                            {(int64_t)RowPtrA, (int64_t)ColA, (int64_t)SumsA,
                             NumV})) {
    R.Error = "run failed: " + Dev->error();
    return R;
  }
  R.Sums = Dev->readI32Array(SumsA, NumV);
  R.Stats = Dev->stats();
  R.Ok = true;
  return R;
}

ProbeRun runSharedChildProbe(const std::string &Pipeline) {
  return runProbeSource(sharedChildProbeSource(), Pipeline);
}

TEST(CooperativeTransformability, AnalysisAcceptsStructuralBarriers) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(sharedChildProbeSource(), Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  FunctionDecl *Child = TU->findFunction("child");
  ASSERT_NE(Child, nullptr);
  Transformability T = analyzeSerializability(Child, TU);
  EXPECT_TRUE(T.Serializable) << (T.Reasons.empty() ? "" : T.Reasons[0]);
  EXPECT_TRUE(T.NeedsBarrierSegmentation);
  EXPECT_TRUE(T.Reasons.empty());
}

TEST(CooperativeTransformability, ThresholdingSerializesViaSegmentation) {
  ProbeRun Base = runSharedChildProbe("");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);

  // A threshold above every observed launch serializes all of them: the
  // dynamic launches disappear, replaced by the segmented serial form,
  // and the payload is untouched.
  ProbeRun Thresh = runSharedChildProbe("threshold[1000000]");
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, 0u) << Thresh.Src;
  EXPECT_NE(Thresh.Src.find("child_serial"), std::string::npos) << Thresh.Src;
  EXPECT_EQ(Base.Sums, Thresh.Sums) << Thresh.Src;
}

TEST(CooperativeTransformability, AllPipelinesPreserveTheProbePayload) {
  ProbeRun Base = runSharedChildProbe("");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  for (const std::string &Pipeline : differentialPipelines()) {
    if (Pipeline.empty())
      continue;
    ProbeRun Run = runSharedChildProbe(Pipeline);
    ASSERT_TRUE(Run.Ok) << "[" << Pipeline << "]: " << Run.Error;
    EXPECT_EQ(Base.Sums, Run.Sums) << "[" << Pipeline << "]\n" << Run.Src;
  }
}

TEST(TransformabilityRejection, SpinWaitProbeIsNamedAndRefused) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(spinWaitProbeSource(), Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  FunctionDecl *Child = TU->findFunction("child");
  ASSERT_NE(Child, nullptr);
  Transformability T = analyzeSerializability(Child, TU);
  EXPECT_FALSE(T.Serializable);
  ASSERT_GE(T.Reasons.size(), 1u);
  EXPECT_NE(T.Reasons[0].find("spin-wait"), std::string::npos) << T.Reasons[0];
}

TEST(TransformabilityRejection, ThresholdingRefusesTheSpinWaitProbe) {
  ProbeRun Base = runProbeSource(spinWaitProbeSource(), "");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);

  // The spin-wait child must keep every dynamic launch: serializing it
  // would deadlock, so thresholding leaves the site alone.
  ProbeRun Thresh = runProbeSource(spinWaitProbeSource(), "threshold[1000000]");
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, Base.Stats.DeviceLaunches)
      << Thresh.Src;
  EXPECT_EQ(Thresh.Src.find("child_serial"), std::string::npos) << Thresh.Src;
  EXPECT_EQ(Base.Sums, Thresh.Sums);
}

//===----------------------------------------------------------------------===//
// Profile-guided axis: record a per-site launch profile from a real run,
// replay it into the profile-parameterized passes, and hold the payload
// contract. The deliberately *wrong* profile below is the pinned
// guard-failure axis: a corrupted small-grid assumption must route every
// speculated launch through the guarded fallback and still be payload-
// and step-exact against the native references on every engine and
// worker count.
//===----------------------------------------------------------------------===//

/// The guard-failure forcing function: rewrites every site's observed
/// thread counts to 1, so siteSpeculationBound picks a bound of 1 and
/// any real launch (>= one warp) fails its guard.
LaunchProfile corruptToTinyBounds(const LaunchProfile &Real) {
  LaunchProfile Wrong = Real;
  for (auto &[Name, H] : Wrong.Sites) {
    H.Threads.clear();
    H.Threads[1] = H.Launches;
  }
  return Wrong;
}

class ProfileAxisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ProfileAxisTest, HarvestedProfileIsRunAndWorkerDeterministic) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  LaunchProfile First;
  DifferentialRun R0 = runKernelCaseOnVm(Case, "", true, 16ull << 20,
                                         /*Workers=*/1, ExecMode::Auto,
                                         nullptr, &First);
  ASSERT_TRUE(R0.Ok) << Case.Name << ": " << R0.Error;
  std::string Canonical = serializeProfile(First);

  // Byte-identical on a repeat run and at every worker count: the
  // histograms count only worker-deterministic quantities.
  for (unsigned Workers : {1u, 2u, 4u}) {
    LaunchProfile P;
    DifferentialRun R = runKernelCaseOnVm(Case, "", true, 16ull << 20,
                                          Workers, ExecMode::Auto, nullptr,
                                          &P);
    ASSERT_TRUE(R.Ok) << Case.Name << " workers=" << Workers << ": "
                      << R.Error;
    EXPECT_EQ(serializeProfile(P), Canonical)
        << Case.Name << ": profile drifted at workers=" << Workers;
  }

  // And the serialized artifact round-trips exactly through the text
  // format the CLI's --profile-out/--profile-in exchange.
  LaunchProfile Parsed;
  std::string Error;
  ASSERT_TRUE(parseProfile(Canonical, Parsed, Error)) << Error;
  EXPECT_EQ(serializeProfile(Parsed), Canonical);
}

TEST_P(ProfileAxisTest, ProfileBackedPipelinesMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  LaunchProfile Real;
  DifferentialRun Record = runKernelCaseOnVm(Case, "", true, 16ull << 20, 1,
                                             ExecMode::Auto, nullptr, &Real);
  ASSERT_TRUE(Record.Ok) << Case.Name << ": " << Record.Error;

  const std::string Pipelines[] = {
      "threshold[profile]", "coarsen[profile]", "speculate[profile]",
      "threshold[profile],coarsen[profile]"};
  for (const std::string &Pipeline : Pipelines) {
    DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, true,
                                            16ull << 20, 1, ExecMode::Auto,
                                            &Real);
    ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline
                        << "]: " << Run.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
        << Case.Name << " [" << Pipeline << "]: " << Why << "\ntransformed:\n"
        << Run.TransformedSource;
  }
}

TEST_P(ProfileAxisTest, WrongProfileGuardFailureFallsBackExactly) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  LaunchProfile Real;
  DifferentialRun Record = runKernelCaseOnVm(Case, "", true, 16ull << 20, 1,
                                             ExecMode::Auto, nullptr, &Real);
  ASSERT_TRUE(Record.Ok) << Case.Name << ": " << Record.Error;
  LaunchProfile Wrong = corruptToTinyBounds(Real);

  DifferentialRun Ref;
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::DecodedNoTrace,
                        ExecMode::Bytecode}) {
    DifferentialRun Run =
        runKernelCaseOnVm(Case, "speculate[profile]", true, 16ull << 20,
                          /*Workers=*/1, Mode, &Wrong);
    ASSERT_TRUE(Run.Ok) << Case.Name << " engine=" << (int)Mode << ": "
                        << Run.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
        << Case.Name << " engine=" << (int)Mode
        << ": guarded fallback diverged: " << Why << "\ntransformed:\n"
        << Run.TransformedSource;
    if (Run.TransformedSource.find("__dpo_spec_guard") != std::string::npos)
      EXPECT_GT(Run.Stats.SpecGuardPass + Run.Stats.SpecGuardFail, 0u)
          << Case.Name << ": speculated site never evaluated its guard";
    if (Mode == ExecMode::Decoded) {
      Ref = Run;
      continue;
    }
    // Guard evaluations are retired steps: the accounting must stay
    // bit-identical across engines, failures included.
    EXPECT_EQ(Run.Stats.Steps, Ref.Stats.Steps) << Case.Name;
    EXPECT_EQ(Run.Stats.SpecGuardPass, Ref.Stats.SpecGuardPass) << Case.Name;
    EXPECT_EQ(Run.Stats.SpecGuardFail, Ref.Stats.SpecGuardFail) << Case.Name;
    EXPECT_EQ(Run.Stats.DeviceLaunches, Ref.Stats.DeviceLaunches)
        << Case.Name;
  }

  for (unsigned Workers : {2u, 4u}) {
    DifferentialRun Par =
        runKernelCaseOnVm(Case, "speculate[profile]", true, 16ull << 20,
                          Workers, ExecMode::Auto, &Wrong);
    ASSERT_TRUE(Par.Ok) << Case.Name << " workers=" << Workers << ": "
                        << Par.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Par.Payload, Why))
        << Case.Name << " workers=" << Workers
        << ": guarded fallback diverged: " << Why;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ProfileAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Speculation probe: a serializable child (pure atomics, no barriers, no
// shared memory) whose parent shape matches the corpus convention. With
// full control of the profile this pins the exact guard arithmetic: a
// tiny-bound profile fails every guard and falls back, a huge literal
// bound passes every guard and serializes every launch.
//===----------------------------------------------------------------------===//

const char *SpecProbeSource = R"(
__global__ void child(int *col, int *sums, int edgeBase, int v, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count)
    atomicAdd(&sums[v], col[edgeBase + i]);
}
__global__ void parent(int *rowptr, int *col, int *sums, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = rowptr[v + 1] - rowptr[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(col, sums, rowptr[v], v, count);
    }
  }
}
)";

ProbeRun runSpecProbe(const std::string &Pipeline,
                      const LaunchProfile *ProfileIn = nullptr,
                      unsigned Workers = 1, ExecMode Mode = ExecMode::Auto,
                      LaunchProfile *ProfileOut = nullptr) {
  ProbeRun R;
  std::string Src = SpecProbeSource;
  if (!Pipeline.empty()) {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Src, Pipeline,
                                      literalKnobConfig(ProfileIn), Diags);
    if (Src.empty()) {
      R.Error = "pipeline failed: " + Diags.str();
      return R;
    }
  }
  R.Src = Src;

  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Src, Ctx, Diags);
  VmProgram Program;
  if (TU)
    Program = compileProgram(TU, Diags, {});
  if (!TU || Diags.hasErrors()) {
    R.Error = "compile failed: " + Diags.str();
    return R;
  }
  auto Dev = std::make_unique<Device>(std::move(Program), 16ull << 20, Mode);
  Dev->setWorkers(Workers);
  if (ProfileOut)
    Dev->setGridLogEnabled(true);

  // The shared-child probe's skewed CSR: hubs with hundreds of edges,
  // many leaves, some isolated vertices.
  constexpr int NumV = 40;
  std::vector<int32_t> RowPtr(NumV + 1), Col;
  std::mt19937 Rng(4242);
  for (int V = 0; V < NumV; ++V) {
    RowPtr[V] = (int32_t)Col.size();
    int Deg = V % 7 == 0 ? 150 + (int)(Rng() % 200)
                         : (V % 3 == 0 ? (int)(Rng() % 9) : 0);
    for (int E = 0; E < Deg; ++E)
      Col.push_back((int32_t)(Rng() % 1000));
  }
  RowPtr[NumV] = (int32_t)Col.size();

  uint64_t RowPtrA = Dev->allocI32(RowPtr);
  uint64_t ColA = Dev->allocI32(Col);
  uint64_t SumsA = Dev->alloc((uint64_t)NumV * 4);
  if (!launchWorkloadParent(*Dev, "parent", NumV, 128,
                            {(int64_t)RowPtrA, (int64_t)ColA, (int64_t)SumsA,
                             NumV})) {
    R.Error = "run failed: " + Dev->error();
    return R;
  }
  R.Sums = Dev->readI32Array(SumsA, NumV);
  R.Stats = Dev->stats();
  if (ProfileOut)
    *ProfileOut = harvestProfile(Dev->gridLog(), Dev->program());
  R.Ok = true;
  return R;
}

TEST(SpeculationGuard, WrongProfileFailsEveryGuardAndFallsBack) {
  LaunchProfile Real;
  ProbeRun Base = runSpecProbe("", nullptr, 1, ExecMode::Auto, &Real);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);
  ASSERT_FALSE(Real.Sites.empty());
  LaunchProfile Wrong = corruptToTinyBounds(Real);

  ProbeRun Ref;
  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::DecodedNoTrace,
                        ExecMode::Bytecode}) {
    for (unsigned Workers : {1u, 2u, 4u}) {
      ProbeRun Run = runSpecProbe("speculate[profile]", &Wrong, Workers,
                                  Mode);
      ASSERT_TRUE(Run.Ok) << "engine=" << (int)Mode << " workers=" << Workers
                          << ": " << Run.Error;
      // Every real launch is at least one 32-thread block, so a bound of
      // 1 fails every guard: the fallback path must relaunch everything
      // and reproduce the payload exactly.
      EXPECT_EQ(Run.Sums, Base.Sums)
          << "engine=" << (int)Mode << " workers=" << Workers << "\n"
          << Run.Src;
      EXPECT_EQ(Run.Stats.SpecGuardFail, Base.Stats.DeviceLaunches);
      EXPECT_EQ(Run.Stats.SpecGuardPass, 0u);
      EXPECT_EQ(Run.Stats.DeviceLaunches, Base.Stats.DeviceLaunches)
          << "a failed guard must not swallow its launch";
      // Step accounting stays exact across engines at the deterministic
      // worker count.
      if (Workers != 1)
        continue;
      if (Mode == ExecMode::Decoded) {
        Ref = Run;
        continue;
      }
      EXPECT_EQ(Run.Stats.Steps, Ref.Stats.Steps)
          << "engine=" << (int)Mode
          << ": guard-failure path step accounting diverged";
      EXPECT_EQ(Run.Stats.ThreadsExecuted, Ref.Stats.ThreadsExecuted);
    }
  }
}

TEST(SpeculationGuard, HugeBoundPassesEveryGuardAndSerializes) {
  ProbeRun Base = runSpecProbe("");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);

  for (ExecMode Mode : {ExecMode::Decoded, ExecMode::DecodedNoTrace,
                        ExecMode::Bytecode}) {
    ProbeRun Run = runSpecProbe("speculate[1000000]", nullptr, 1, Mode);
    ASSERT_TRUE(Run.Ok) << Run.Error;
    EXPECT_EQ(Run.Sums, Base.Sums) << Run.Src;
    EXPECT_EQ(Run.Stats.SpecGuardPass, Base.Stats.DeviceLaunches);
    EXPECT_EQ(Run.Stats.SpecGuardFail, 0u);
    EXPECT_EQ(Run.Stats.DeviceLaunches, 0u)
        << "a passed guard serializes instead of launching";
  }
}

TEST(SpeculationGuard, RealProfileSpeculationIsExactAndAccounted) {
  LaunchProfile Real;
  ProbeRun Base = runSpecProbe("", nullptr, 1, ExecMode::Auto, &Real);
  ASSERT_TRUE(Base.Ok) << Base.Error;

  ProbeRun Run = runSpecProbe("speculate[profile]", &Real);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.Sums, Base.Sums) << Run.Src;
  // Every original launch evaluates its guard exactly once, and every
  // failure is exactly one fallback launch.
  EXPECT_EQ(Run.Stats.SpecGuardPass + Run.Stats.SpecGuardFail,
            Base.Stats.DeviceLaunches);
  EXPECT_EQ(Run.Stats.DeviceLaunches, Run.Stats.SpecGuardFail);
  // The p90-derived bound covers the bulk of the distribution by
  // construction.
  EXPECT_GT(Run.Stats.SpecGuardPass, 0u);
}

TEST(SpeculationGuard, PerSiteThresholdMatchesTightenedGlobalLiteral) {
  // The probe's sub-threshold launches are all single 32-thread blocks
  // (leaf degrees <= 8); hubs launch >= 160 threads. Against a global
  // threshold of 128 the profile rule tightens this site to the smallest
  // power of two above 32 — so `threshold[profile]` must produce the
  // *identical* transformed source, and therefore identical bytecode, as
  // the best hand-picked literal `threshold[64:literal]`.
  LaunchProfile Real;
  ProbeRun Base = runSpecProbe("", nullptr, 1, ExecMode::Auto, &Real);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_EQ(Real.siteThreshold("parent->child#0", 128), 64u)
      << serializeProfile(Real);

  DiagnosticEngine DiagsA, DiagsB;
  std::string Profiled = transformSourceWithPipeline(
      SpecProbeSource, "threshold[profile]", literalKnobConfig(&Real),
      DiagsA);
  std::string Literal = transformSourceWithPipeline(
      SpecProbeSource, "threshold[64:literal]", literalKnobConfig(), DiagsB);
  ASSERT_FALSE(Profiled.empty()) << DiagsA.str();
  ASSERT_FALSE(Literal.empty()) << DiagsB.str();
  EXPECT_EQ(Profiled, Literal);

  // And the equivalence holds end to end: same payload, same steps.
  ProbeRun A = runSpecProbe("threshold[profile]", &Real);
  ProbeRun B = runSpecProbe("threshold[64:literal]");
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.Sums, Base.Sums);
  EXPECT_EQ(A.Sums, B.Sums);
  EXPECT_EQ(A.Stats.Steps, B.Stats.Steps);
  EXPECT_EQ(A.Stats.DeviceLaunches, B.Stats.DeviceLaunches);
}

} // namespace
