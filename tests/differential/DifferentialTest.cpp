//===--- DifferentialTest.cpp - Table I kernels vs. native references ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end differential suite: every Table I benchmark, written as
/// a real DSL kernel over a real (scaled) dataset, compiled through every
/// registered pipeline variant, lowered with the peephole optimizer on
/// and off, executed on the VM with the host driving rounds — and the
/// correctness payload compared exactly against the native reference
/// implementation. A silent semantic break anywhere in the stack (parser,
/// any pass in any order, bytecode lowering, optimizer, interpreter,
/// launch machinery) shows up here as a payload diff naming the first
/// diverging element.
///
/// Registered under the `differential` ctest label: scripts/check.sh
/// skips it by default (tier1 only) and CI runs it as a separate job.
///
//===----------------------------------------------------------------------===//

#include "transform/PassManager.h"
#include "transform/Pipeline.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>

using namespace dpo;

namespace {

class DifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DifferentialTest, AllPipelinesMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();

  for (const std::string &Pipeline : differentialPipelines()) {
    for (bool Optimize : {true, false}) {
      DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, Optimize);
      ASSERT_TRUE(Run.Ok)
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Run.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Why << "\ntransformed:\n"
          << Run.TransformedSource;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

// The matrix above is only as strong as its pipeline list: every entry
// must actually parse through the registry (a typo would silently skip a
// variant), and the corpus must cover all seven benchmarks with at least
// two datasets each.

TEST(DifferentialSuite, PipelinesAllParse) {
  for (const std::string &Pipeline : differentialPipelines()) {
    if (Pipeline.empty())
      continue;
    PassManager PM;
    std::string Error;
    EXPECT_TRUE(parsePassPipeline(PM, Pipeline, literalKnobConfig(), Error))
        << "'" << Pipeline << "': " << Error;
  }
}

TEST(DifferentialSuite, CorpusCoversTableOne) {
  std::map<BenchmarkId, unsigned> Datasets;
  for (const KernelCase &Case : differentialCorpus())
    ++Datasets[Case.Bench];
  EXPECT_EQ(Datasets.size(), 7u) << "every Table I benchmark present";
  for (const auto &[Bench, Count] : Datasets)
    EXPECT_GE(Count, 2u) << benchmarkName(Bench) << " needs >= 2 datasets";
}

// Transform behavior sanity on a real kernel (not just the canonical
// shape): thresholding a BFS kernel must reduce dynamic launches without
// touching the payload, and grid aggregation must eliminate them.

TEST(DifferentialSuite, ThresholdingReducesLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0]; // BFS/kron-mini
  ASSERT_EQ(Case.Bench, BenchmarkId::BFS);
  DifferentialRun Base = runKernelCaseOnVm(Case, "", true);
  DifferentialRun Thresh = runKernelCaseOnVm(Case, "threshold[1000000]", true);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_GT(Base.Stats.DeviceLaunches, 0u);
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, 0u);
}

TEST(DifferentialSuite, GridAggregationHoistsLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0];
  DifferentialRun Agg = runKernelCaseOnVm(Case, "aggregate[grid]", true);
  ASSERT_TRUE(Agg.Ok) << Agg.Error;
  EXPECT_EQ(Agg.Stats.DeviceLaunches, 0u);
  EXPECT_GT(Agg.Stats.HostLaunches, 0u);
}

} // namespace
