//===--- DifferentialTest.cpp - Table I kernels vs. native references ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end differential suite: every Table I benchmark, written as
/// a real DSL kernel over a real (scaled) dataset, compiled through every
/// registered pipeline variant, lowered with the peephole optimizer on
/// and off, executed on the VM with the host driving rounds — and the
/// correctness payload compared exactly against the native reference
/// implementation. A silent semantic break anywhere in the stack (parser,
/// any pass in any order, bytecode lowering, optimizer, interpreter,
/// launch machinery) shows up here as a payload diff naming the first
/// diverging element.
///
/// Registered under the `differential` ctest label: scripts/check.sh
/// skips it by default (tier1 only) and CI runs it as a separate job.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "sema/Transformability.h"
#include "transform/PassManager.h"
#include "transform/Pipeline.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <random>

using namespace dpo;

namespace {

class DifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DifferentialTest, AllPipelinesMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();

  for (const std::string &Pipeline : differentialPipelines()) {
    for (bool Optimize : {true, false}) {
      DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, Optimize);
      ASSERT_TRUE(Run.Ok)
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Run.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
          << Case.Name << " [" << Pipeline << "] peephole="
          << (Optimize ? "on" : "off") << ": " << Why << "\ntransformed:\n"
          << Run.TransformedSource;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

// The matrix above is only as strong as its pipeline list: every entry
// must actually parse through the registry (a typo would silently skip a
// variant), and the corpus must cover all seven benchmarks with at least
// two datasets each.

TEST(DifferentialSuite, PipelinesAllParse) {
  for (const std::string &Pipeline : differentialPipelines()) {
    if (Pipeline.empty())
      continue;
    PassManager PM;
    std::string Error;
    EXPECT_TRUE(parsePassPipeline(PM, Pipeline, literalKnobConfig(), Error))
        << "'" << Pipeline << "': " << Error;
  }
}

TEST(DifferentialSuite, CorpusCoversTableOne) {
  std::map<BenchmarkId, unsigned> Datasets;
  for (const KernelCase &Case : differentialCorpus())
    ++Datasets[Case.Bench];
  EXPECT_EQ(Datasets.size(), 7u) << "every Table I benchmark present";
  for (const auto &[Bench, Count] : Datasets)
    EXPECT_GE(Count, 2u) << benchmarkName(Bench) << " needs >= 2 datasets";
}

// Transform behavior sanity on a real kernel (not just the canonical
// shape): thresholding a BFS kernel must reduce dynamic launches without
// touching the payload, and grid aggregation must eliminate them.

TEST(DifferentialSuite, ThresholdingReducesLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0]; // BFS/kron-mini
  ASSERT_EQ(Case.Bench, BenchmarkId::BFS);
  DifferentialRun Base = runKernelCaseOnVm(Case, "", true);
  DifferentialRun Thresh = runKernelCaseOnVm(Case, "threshold[1000000]", true);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_GT(Base.Stats.DeviceLaunches, 0u);
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, 0u);
}

TEST(DifferentialSuite, GridAggregationHoistsLaunchesOnRealBfs) {
  const KernelCase &Case = differentialCorpus()[0];
  DifferentialRun Agg = runKernelCaseOnVm(Case, "aggregate[grid]", true);
  ASSERT_TRUE(Agg.Ok) << Agg.Error;
  EXPECT_EQ(Agg.Stats.DeviceLaunches, 0u);
  EXPECT_GT(Agg.Stats.HostLaunches, 0u);
}

//===----------------------------------------------------------------------===//
// Engine axis: the traced decoded engine, the untraced decoded engine,
// and the bytecode interpreter are one observable machine. Payloads must
// match the native reference on each, and the retired step count — the
// currency the tuner's committed tables are priced in — must be
// bit-identical across all three, trace side exits included.
//===----------------------------------------------------------------------===//

class EngineAxisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EngineAxisTest, StepsBitIdenticalAcrossEngines) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  const std::string Pipelines[] = {
      "", "threshold[64],coarsen[4],aggregate[multiblock:8]"};
  for (const std::string &Pipeline : Pipelines) {
    DifferentialRun Ref;
    for (ExecMode Mode : {ExecMode::Decoded, ExecMode::DecodedNoTrace,
                          ExecMode::Bytecode}) {
      DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, true,
                                              16ull << 20, /*Workers=*/1,
                                              Mode);
      ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline
                          << "] engine=" << (int)Mode << ": " << Run.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
          << Case.Name << " [" << Pipeline << "] engine=" << (int)Mode << ": "
          << Why;
      if (Mode == ExecMode::Decoded) {
        Ref = Run;
        continue;
      }
      EXPECT_EQ(Run.Stats.Steps, Ref.Stats.Steps)
          << Case.Name << " [" << Pipeline << "] engine=" << (int)Mode
          << ": step accounting diverged from the traced engine";
      EXPECT_EQ(Run.Stats.GridsLaunched, Ref.Stats.GridsLaunched);
      EXPECT_EQ(Run.Stats.DeviceLaunches, Ref.Stats.DeviceLaunches);
      EXPECT_EQ(Run.Stats.ThreadsExecuted, Ref.Stats.ThreadsExecuted);
    }

    // Engine x worker cross: trace execution composes with the parallel
    // grid drain — same payload at 2 and 4 workers on the traced engine.
    for (unsigned Workers : {2u, 4u}) {
      DifferentialRun Par = runKernelCaseOnVm(Case, Pipeline, true,
                                              16ull << 20, Workers,
                                              ExecMode::Decoded);
      ASSERT_TRUE(Par.Ok) << Case.Name << " [" << Pipeline << "] workers="
                          << Workers << ": " << Par.Error;
      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Par.Payload, Why))
          << Case.Name << " [" << Pipeline << "] traced workers=" << Workers
          << ": " << Why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EngineAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Worker-count axis: the corpus kernels claim their work through real
// atomics (CAS frontier claims, atomicMin relaxations), so the payload
// contract must hold unchanged when independent grids of one batch drain
// concurrently. Single-worker execution additionally keeps the
// deterministic step accounting the tuner's committed tables are priced
// against.
//===----------------------------------------------------------------------===//

class WorkerAxisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkerAxisTest, PayloadsIdenticalAtEveryWorkerCount) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  const std::string Pipelines[] = {
      "", "threshold[64],coarsen[4],aggregate[multiblock:8]"};
  for (const std::string &Pipeline : Pipelines) {
    DifferentialRun Solo =
        runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, /*Workers=*/1);
    ASSERT_TRUE(Solo.Ok) << Case.Name << " [" << Pipeline
                         << "]: " << Solo.Error;
    std::string Why;
    ASSERT_TRUE(payloadsMatch(Case.Bench, Native, Solo.Payload, Why))
        << Case.Name << " [" << Pipeline << "] workers=1: " << Why;

    // Determinism mode: a second single-worker run retires the identical
    // step count (the bit-exact contract DPO_VM_WORKERS=1 documents).
    DifferentialRun Solo2 =
        runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, /*Workers=*/1);
    ASSERT_TRUE(Solo2.Ok) << Solo2.Error;
    EXPECT_EQ(Solo.Stats.Steps, Solo2.Stats.Steps)
        << Case.Name << " [" << Pipeline << "]: single-worker step "
        << "accounting is not deterministic";

    for (unsigned Workers : {2u, 4u}) {
      DifferentialRun Par =
          runKernelCaseOnVm(Case, Pipeline, true, 16ull << 20, Workers);
      ASSERT_TRUE(Par.Ok) << Case.Name << " [" << Pipeline << "] workers="
                          << Workers << ": " << Par.Error;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Par.Payload, Why))
          << Case.Name << " [" << Pipeline << "] workers=" << Workers << ": "
          << Why << "\ntransformed:\n"
          << Par.TransformedSource;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WorkerAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Randomized pipeline-ordering fuzz: the fixed matrix above covers the
// registered variants; this samples *arbitrary* registry orderings with
// arbitrary knobs per corpus case and demands the same exact payloads.
//===----------------------------------------------------------------------===//

std::string randomPipeline(std::mt19937 &Rng) {
  const char *Thresholds[] = {"threshold[4]", "threshold[16]", "threshold[64]",
                              "threshold[256]", "threshold[1000000]"};
  const char *Coarsens[] = {"coarsen[2]", "coarsen[3]", "coarsen[4]",
                            "coarsen[8]"};
  const char *Aggregates[] = {"aggregate[warp]", "aggregate[block]",
                              "aggregate[multiblock:4]",
                              "aggregate[multiblock:8]", "aggregate[grid]"};
  std::vector<std::string> Parts;
  if (Rng() % 2)
    Parts.push_back(Thresholds[Rng() % 5]);
  if (Rng() % 2)
    Parts.push_back(Coarsens[Rng() % 4]);
  if (Rng() % 2)
    Parts.push_back(Aggregates[Rng() % 5]);
  if (Parts.empty())
    Parts.push_back(Thresholds[Rng() % 5]);
  // Fisher-Yates with the test's own Rng: std::shuffle's ordering is
  // implementation-defined, and this fuzz must replay identically.
  for (size_t I = Parts.size(); I > 1; --I)
    std::swap(Parts[I - 1], Parts[Rng() % I]);
  std::string Text;
  for (size_t I = 0; I < Parts.size(); ++I)
    Text += (I ? "," : "") + Parts[I];
  return Text;
}

class PipelineOrderFuzzTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineOrderFuzzTest, RandomOrderingsMatchNative) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();
  std::mt19937 Rng(0xD1FFu + (unsigned)GetParam() * 7919u);
  constexpr int SeedsPerCase = 3;
  for (int S = 0; S < SeedsPerCase; ++S) {
    std::string Pipeline = randomPipeline(Rng);
    DifferentialRun Run = runKernelCaseOnVm(Case, Pipeline, true);
    ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline << "]: " << Run.Error;
    std::string Why;
    EXPECT_TRUE(payloadsMatch(Case.Bench, Native, Run.Payload, Why))
        << Case.Name << " [" << Pipeline << "]: " << Why << "\ntransformed:\n"
        << Run.TransformedSource;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PipelineOrderFuzzTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// The transformability-rejection path, end to end: a corpus child with
// __shared__ + __syncthreads must never be serialized, while the other
// transforms stay applicable and payload-preserving.
//===----------------------------------------------------------------------===//

struct ProbeRun {
  bool Ok = false;
  std::string Error;
  std::vector<int32_t> Sums;
  VmStats Stats;
  std::string Src;
};

ProbeRun runSharedChildProbe(const std::string &Pipeline) {
  ProbeRun R;
  std::string Src = sharedChildProbeSource();
  if (!Pipeline.empty()) {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Src, Pipeline, literalKnobConfig(),
                                      Diags);
    if (Src.empty()) {
      R.Error = "pipeline failed: " + Diags.str();
      return R;
    }
  }
  R.Src = Src;

  DiagnosticEngine Diags;
  auto Dev = buildDevice(Src, Diags);
  if (!Dev) {
    R.Error = "build failed: " + Diags.str();
    return R;
  }

  // Deterministic skewed CSR: a few hub vertices with hundreds of
  // edges, many leaves, some isolated vertices.
  constexpr int NumV = 40;
  std::vector<int32_t> RowPtr(NumV + 1), Col;
  std::mt19937 Rng(4242);
  for (int V = 0; V < NumV; ++V) {
    RowPtr[V] = (int32_t)Col.size();
    int Deg = V % 7 == 0 ? 150 + (int)(Rng() % 200)
                         : (V % 3 == 0 ? (int)(Rng() % 9) : 0);
    for (int E = 0; E < Deg; ++E)
      Col.push_back((int32_t)(Rng() % 1000));
  }
  RowPtr[NumV] = (int32_t)Col.size();

  uint64_t RowPtrA = Dev->allocI32(RowPtr);
  uint64_t ColA = Dev->allocI32(Col);
  uint64_t SumsA = Dev->alloc((uint64_t)NumV * 4);
  if (!launchWorkloadParent(*Dev, "parent", NumV, 128,
                            {(int64_t)RowPtrA, (int64_t)ColA, (int64_t)SumsA,
                             NumV})) {
    R.Error = "run failed: " + Dev->error();
    return R;
  }
  R.Sums = Dev->readI32Array(SumsA, NumV);
  R.Stats = Dev->stats();
  R.Ok = true;
  return R;
}

TEST(TransformabilityRejection, AnalysisNamesBothBlockers) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(sharedChildProbeSource(), Ctx, Diags);
  ASSERT_NE(TU, nullptr) << Diags.str();
  FunctionDecl *Child = TU->findFunction("child");
  ASSERT_NE(Child, nullptr);
  Transformability T = analyzeSerializability(Child, TU);
  EXPECT_FALSE(T.Serializable);
  EXPECT_GE(T.Reasons.size(), 2u) << "barrier and shared memory";
}

TEST(TransformabilityRejection, ThresholdingRefusesToSerialize) {
  ProbeRun Base = runSharedChildProbe("");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);

  // A threshold that would serialize *every* launch of a serializable
  // child must leave this one's dynamic launches fully in place.
  ProbeRun Thresh = runSharedChildProbe("threshold[1000000]");
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, Base.Stats.DeviceLaunches)
      << Thresh.Src;
  EXPECT_EQ(Base.Sums, Thresh.Sums);
  // And the transformed source grew no serial fallback for the child.
  EXPECT_EQ(Thresh.Src.find("child_serial"), std::string::npos) << Thresh.Src;
}

TEST(TransformabilityRejection, AllPipelinesPreserveTheProbePayload) {
  ProbeRun Base = runSharedChildProbe("");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  for (const std::string &Pipeline : differentialPipelines()) {
    if (Pipeline.empty())
      continue;
    ProbeRun Run = runSharedChildProbe(Pipeline);
    ASSERT_TRUE(Run.Ok) << "[" << Pipeline << "]: " << Run.Error;
    EXPECT_EQ(Base.Sums, Run.Sums) << "[" << Pipeline << "]\n" << Run.Src;
  }
}

} // namespace
