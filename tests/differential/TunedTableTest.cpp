//===--- TunedTableTest.cpp - Committed tuned configs must reproduce ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drift gate for bench/tuned/: every committed per-workload tuned-config
/// table records the (mode, budget, seed) of a deterministic search; this
/// suite re-runs each recorded search against the real kernel corpus and
/// fails when the winning pipeline no longer matches the table. A change
/// anywhere in the tuner / passes / lowering / VM cost attribution that
/// flips a tuning decision therefore needs a reviewed table refresh
/// (scripts/tune_table.sh), never a silent drift.
///
//===----------------------------------------------------------------------===//

#include "tuner/TunedTable.h"
#include "workloads/KernelSources.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace dpo;

#ifndef DPO_SOURCE_DIR
#define DPO_SOURCE_DIR "."
#endif

namespace {

std::vector<std::string> tunedTablePaths() {
  std::vector<std::string> Paths;
  std::filesystem::path Dir =
      std::filesystem::path(DPO_SOURCE_DIR) / "bench" / "tuned";
  if (!std::filesystem::exists(Dir))
    return Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".json")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

TEST(TunedTableTest, TablesExist) {
  // The committed set: at least one table per Table I benchmark.
  std::vector<std::string> Paths = tunedTablePaths();
  ASSERT_GE(Paths.size(), 7u)
      << "bench/tuned/ is missing tables (regenerate with "
         "scripts/tune_table.sh)";
}

TEST(TunedTableTest, EntriesRoundTrip) {
  for (const std::string &Path : tunedTablePaths()) {
    TunedEntry Entry;
    std::string Error;
    ASSERT_TRUE(loadTunedEntryFile(Path, Entry, Error)) << Path << ": "
                                                        << Error;
    TunedEntry Reparsed;
    ASSERT_TRUE(parseTunedEntryJson(tunedEntryJson(Entry), Reparsed, Error))
        << Error;
    EXPECT_EQ(Entry.Workload, Reparsed.Workload);
    EXPECT_EQ(Entry.Pipeline, Reparsed.Pipeline);
    EXPECT_EQ(Entry.Budget, Reparsed.Budget);
    EXPECT_EQ(Entry.Seed, Reparsed.Seed);
  }
}

TEST(TunedTableTest, RecordedSearchesReproduce) {
  std::vector<std::string> Paths = tunedTablePaths();
  ASSERT_FALSE(Paths.empty());
  for (const std::string &Path : Paths) {
    TunedEntry Entry;
    std::string Error;
    ASSERT_TRUE(loadTunedEntryFile(Path, Entry, Error)) << Path << ": "
                                                        << Error;
    // "canonical" records a dpoptcc --tune run without --workload=; it
    // is reconstructible from the recorded seed like any other spec.
    VmWorkload Workload;
    if (Entry.Workload == "canonical") {
      Workload = canonicalTuneWorkload(Entry.Seed);
    } else {
      BenchCase Case;
      ASSERT_TRUE(parseWorkloadSpec(Entry.Workload, Case, Error))
          << Path << ": " << Error;
      Workload = kernelVmWorkload(Case);
    }
    GpuModel Gpu;
    VariantMask Mask;
    Mask.Thresholding = Mask.Coarsening = Mask.Aggregation = true;
    EmpiricalOptions Opts;
    Opts.Budget = Entry.Budget;
    Opts.Seed = Entry.Seed;
    EmpiricalTuneResult R =
        tuneWorkload(Entry.Mode, Gpu, Workload, Mask, Opts);

    EXPECT_EQ(R.Pipeline, Entry.Pipeline)
        << Path << ": the recorded search no longer reproduces the "
        << "committed pipeline — if the change is intentional, refresh "
        << "with scripts/tune_table.sh and commit the diff";
    EXPECT_LE(R.VmEvaluations, Entry.Budget) << Path << ": budget overrun";
  }
}

} // namespace
