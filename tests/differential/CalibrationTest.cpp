//===--- CalibrationTest.cpp - GpuModel calibration regression gate -----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression gate for `dpoptcc --calibrate`: on every committed
/// bench/tuned/ workload the fitted model must (a) never predict worse
/// than the base model on the fit set — the descent accepts only strict
/// improvements — (b) reproduce the VM-measured makespans within a
/// fixed log-ratio tolerance, (c) be bit-deterministic across repeated
/// fits, and (d) never *flip* an analytic-vs-empirical top-1 ranking:
/// wherever the base model already agreed with the measurements about
/// the best configuration, the fitted model must agree too.
///
//===----------------------------------------------------------------------===//

#include "tuner/Calibrate.h"
#include "tuner/TunedTable.h"
#include "workloads/KernelSources.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace dpo;

#ifndef DPO_SOURCE_DIR
#define DPO_SOURCE_DIR "."
#endif

namespace {

/// Absolute tolerance on the canonical tuning workload, where the
/// analytic model's shape matches the measured batches: mean prediction
/// error within a factor of ~2.2x (RMS of log(pred/measured)). The real
/// kernel workloads contain configurations the model mispredicts by
/// orders of magnitude — shape error a multiplicative 4-knob fit cannot
/// close — so they are gated on the relative invariants instead (never
/// worse than base, no top-1 flip).
constexpr double CanonicalFitTolerance = 0.8;

struct CommittedWorkload {
  VmWorkload Workload;
  bool Canonical = false;
};

std::vector<CommittedWorkload> committedWorkloads() {
  std::vector<CommittedWorkload> Workloads;
  std::filesystem::path Dir =
      std::filesystem::path(DPO_SOURCE_DIR) / "bench" / "tuned";
  if (!std::filesystem::exists(Dir))
    return Workloads;
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".json")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &Path : Paths) {
    TunedEntry Entry;
    std::string Error;
    if (!loadTunedEntryFile(Path, Entry, Error))
      continue;
    if (Entry.Workload == "canonical") {
      Workloads.push_back({canonicalTuneWorkload(Entry.Seed), true});
    } else {
      BenchCase Case;
      if (parseWorkloadSpec(Entry.Workload, Case, Error))
        Workloads.push_back({kernelVmWorkload(Case), false});
    }
  }
  return Workloads;
}

size_t argMin(const std::vector<CalibrationPoint> &Points,
              double CalibrationPoint::*Field) {
  size_t Best = 0;
  for (size_t I = 1; I < Points.size(); ++I)
    if (Points[I].*Field < Points[Best].*Field)
      Best = I;
  return Best;
}

TEST(CalibrationRegression, FitImprovesWithinToleranceOnCommittedWorkloads) {
  std::vector<CommittedWorkload> Workloads = committedWorkloads();
  ASSERT_FALSE(Workloads.empty())
      << "bench/tuned/ is missing tables (regenerate with "
         "scripts/tune_table.sh)";
  GpuModel Base;
  VariantMask Mask;
  Mask.Thresholding = Mask.Coarsening = Mask.Aggregation = true;

  for (const CommittedWorkload &CW : Workloads) {
    const VmWorkload &Workload = CW.Workload;
    CalibrationResult R = calibrateGpuModel(Base, Workload, Mask, {});
    ASSERT_TRUE(R.Ok) << Workload.Name << ": " << R.Error;
    ASSERT_GE(R.Points.size(), 2u) << Workload.Name;

    // Strict-improvement acceptance: fitting can only help the fit set.
    EXPECT_LE(R.FittedError, R.BaseError)
        << Workload.Name << ":\n"
        << calibrationReport(R);
    if (CW.Canonical)
      EXPECT_LE(R.FittedError, CanonicalFitTolerance)
          << Workload.Name
          << ": fitted model no longer reproduces the measured makespans:\n"
          << calibrationReport(R);

    // No ranking flips: where the base analytic model already picked the
    // measured-best configuration, the fitted model must keep picking it.
    size_t MeasuredTop = argMin(R.Points, &CalibrationPoint::MeasuredUs);
    size_t BaseTop = argMin(R.Points, &CalibrationPoint::BaseUs);
    size_t FittedTop = argMin(R.Points, &CalibrationPoint::FittedUs);
    if (BaseTop == MeasuredTop)
      EXPECT_EQ(FittedTop, MeasuredTop)
          << Workload.Name
          << ": calibration flipped the analytic-vs-empirical top-1:\n"
          << calibrationReport(R);
  }
}

TEST(CalibrationRegression, FitIsDeterministic) {
  GpuModel Base;
  VariantMask Mask;
  Mask.Thresholding = Mask.Coarsening = Mask.Aggregation = true;
  VmWorkload Workload = canonicalTuneWorkload(1);

  CalibrationResult A = calibrateGpuModel(Base, Workload, Mask, {});
  CalibrationResult B = calibrateGpuModel(Base, Workload, Mask, {});
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.Scales, B.Scales);
  EXPECT_EQ(A.FittedError, B.FittedError);
  EXPECT_EQ(A.BaseError, B.BaseError);
  ASSERT_EQ(A.Points.size(), B.Points.size());
  for (size_t I = 0; I < A.Points.size(); ++I) {
    EXPECT_EQ(A.Points[I].Pipeline, B.Points[I].Pipeline);
    EXPECT_EQ(A.Points[I].MeasuredUs, B.Points[I].MeasuredUs);
    EXPECT_EQ(A.Points[I].FittedUs, B.Points[I].FittedUs);
  }
}

TEST(CalibrationRegression, CommittedPipelinesReplayExactlyFromCheckpoints) {
  // The service layer's exact-state tuner replay, pinned on the committed
  // tables: for every bench/tuned/ entry, re-running the final sample
  // round from a device checkpoint must retire a bit-identical end state
  // (replayRoundExact fails otherwise), and the replayed measurement must
  // price exactly what a plain measurement of the committed pipeline
  // prices. This is what makes cached and warm-started tune results
  // trustworthy stand-ins for cold searches.
  std::filesystem::path Dir =
      std::filesystem::path(DPO_SOURCE_DIR) / "bench" / "tuned";
  ASSERT_TRUE(std::filesystem::exists(Dir));
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".json")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_FALSE(Paths.empty());

  GpuModel Gpu;
  for (const std::string &Path : Paths) {
    TunedEntry Entry;
    std::string Error;
    ASSERT_TRUE(loadTunedEntryFile(Path, Entry, Error)) << Path << ": "
                                                        << Error;
    VmWorkload Workload;
    if (Entry.Workload == "canonical") {
      Workload = canonicalTuneWorkload(Entry.Seed);
    } else {
      BenchCase Case;
      ASSERT_TRUE(parseWorkloadSpec(Entry.Workload, Case, Error))
          << Path << ": " << Error;
      Workload = kernelVmWorkload(Case);
    }

    EmpiricalOptions Opts;
    Opts.Seed = Entry.Seed;
    EmpiricalEvaluator Eval(Gpu, Workload, Opts);
    std::optional<VmMeasurement> Measured =
        Eval.measurePipeline(Entry.Pipeline, ExecMode::Decoded);
    ASSERT_TRUE(Measured.has_value())
        << Entry.Workload << ": " << Eval.lastError();

    VmMeasurement Replayed;
    ASSERT_TRUE(Eval.replayRoundExact(Entry.Pipeline, Eval.maxResource(),
                                      Replayed, Error))
        << Entry.Workload << ": " << Error;
    EXPECT_EQ(Measured->Steps, Replayed.Steps) << Entry.Workload;
    EXPECT_EQ(Measured->GridsLaunched, Replayed.GridsLaunched)
        << Entry.Workload;
    EXPECT_EQ(Measured->BlocksExecuted, Replayed.BlocksExecuted)
        << Entry.Workload;
    EXPECT_EQ(Measured->ThreadsExecuted, Replayed.ThreadsExecuted)
        << Entry.Workload;
    EXPECT_DOUBLE_EQ(Measured->Cycles, Replayed.Cycles) << Entry.Workload;
  }
}

} // namespace
