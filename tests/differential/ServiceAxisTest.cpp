//===--- ServiceAxisTest.cpp - Cached artifacts vs in-memory compiles ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service axis of the differential suite: a VmProgram deserialized
/// from a disk-cached artifact must be indistinguishable from one
/// compiled in-process — bit-identical serialized image, and when driven
/// through the full Table I algorithms, bit-identical payloads, grid
/// logs, and step counts at every execution engine and worker count.
/// This is the contract that lets `dpoptcc --serve` hand out cached
/// bytecode without re-verifying it.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "transform/Pipeline.h"
#include "vm/BytecodeIO.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace dpo;

namespace fs = std::filesystem;

namespace {

/// One pipeline per case keeps the matrix affordable; the combined
/// three-pass spelling exercises every transform layer the cache key
/// must capture.
constexpr const char *AxisPipeline =
    "threshold[128:literal],coarsen[4:literal],aggregate[warp:4:literal]";

class ServiceAxisTest : public ::testing::TestWithParam<size_t> {
protected:
  void SetUp() override {
    const ::testing::TestInfo *Info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Scratch = fs::temp_directory_path() /
              ("dpo_service_axis_" + std::string(Info->name()));
    fs::remove_all(Scratch);
    fs::create_directories(Scratch);
  }
  void TearDown() override {
    std::error_code Ec;
    fs::remove_all(Scratch, Ec);
  }

  ServiceConfig config() const {
    ServiceConfig SC;
    SC.CacheDir = Scratch.string();
    return SC;
  }

  static CompileRequest requestFor(const KernelCase &Case) {
    CompileRequest R;
    R.Name = Case.Name;
    R.Source = Case.source();
    R.Pipeline = AxisPipeline;
    R.Knobs = literalKnobConfig();
    R.WantBytecode = true;
    return R;
  }

  fs::path Scratch;
};

TEST_P(ServiceAxisTest, CachedArtifactsExecuteIdenticallyToInMemoryCompiles) {
  const KernelCase &Case = differentialCorpus()[GetParam()];
  WorkloadOutput Native = Case.reference();

  // Cold compile in one service instance, then a disk hit in a fresh
  // instance sharing only the cache directory — the cached program has
  // round-tripped through the artifact container.
  CompileService Cold(config());
  CompileResponse Fresh = Cold.compile(requestFor(Case));
  ASSERT_TRUE(Fresh.Ok) << Case.Name << ": " << Fresh.Error;
  ASSERT_EQ(Fresh.Outcome, CacheOutcome::Miss) << Case.Name;
  ASSERT_NE(Fresh.Program, nullptr) << Case.Name;

  CompileService Warm(config());
  CompileResponse Cached = Warm.compile(requestFor(Case));
  ASSERT_TRUE(Cached.Ok) << Case.Name << ": " << Cached.Error;
  ASSERT_EQ(Cached.Outcome, CacheOutcome::DiskHit) << Case.Name;
  ASSERT_NE(Cached.Program, nullptr) << Case.Name;

  EXPECT_EQ(serializeVmProgram(*Fresh.Program),
            serializeVmProgram(*Cached.Program))
      << Case.Name << ": cached artifact image is not bit-identical";

  for (ExecMode Mode :
       {ExecMode::Bytecode, ExecMode::Decoded, ExecMode::DecodedNoTrace}) {
    for (unsigned Workers : {1u, 2u, 4u}) {
      DifferentialRun InMem = runKernelCaseOnVmProgram(
          Case, *Fresh.Program, 16ull << 20, Workers, Mode,
          /*CaptureGridLog=*/true);
      DifferentialRun FromDisk = runKernelCaseOnVmProgram(
          Case, *Cached.Program, 16ull << 20, Workers, Mode,
          /*CaptureGridLog=*/true);
      std::string Tag = Case.Name + " engine=" +
                        std::to_string((int)Mode) + " workers=" +
                        std::to_string(Workers);
      ASSERT_TRUE(InMem.Ok) << Tag << ": " << InMem.Error;
      ASSERT_TRUE(FromDisk.Ok) << Tag << ": " << FromDisk.Error;

      std::string Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, InMem.Payload, Why))
          << Tag << " (in-memory): " << Why;
      EXPECT_TRUE(payloadsMatch(Case.Bench, Native, FromDisk.Payload, Why))
          << Tag << " (cached): " << Why;
      EXPECT_TRUE(
          payloadsMatch(Case.Bench, InMem.Payload, FromDisk.Payload, Why))
          << Tag << ": cached payload diverged: " << Why;

      EXPECT_EQ(InMem.Stats.Steps, FromDisk.Stats.Steps) << Tag;
      EXPECT_TRUE(InMem.Stats == FromDisk.Stats)
          << Tag << ": VM stats diverged between cached and in-memory";
      ASSERT_EQ(InMem.GridLog.size(), FromDisk.GridLog.size()) << Tag;
      for (size_t I = 0; I < InMem.GridLog.size(); ++I)
        EXPECT_TRUE(InMem.GridLog[I] == FromDisk.GridLog[I])
            << Tag << ": grid record " << I << " diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ServiceAxisTest,
    ::testing::Range<size_t>(0, differentialCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = differentialCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

} // namespace
