//===--- ExamplesTest.cpp - examples/ programs vs. native references ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential verification of the `examples/` directory: the kernel
/// programs the examples showcase (quickstart's parent/child fan-out,
/// autotune's SSSP relaxation) are executed on the VM — untransformed,
/// through quickstart's exact Fig. 8 pipeline, and through every
/// registered differential pipeline — and their payloads compared
/// exactly against native references computed in plain C++. Until this
/// suite existed the examples only checked themselves against the VM
/// (transformed vs. original), never against an independent native
/// computation; a miscompile affecting both versions equally would have
/// passed silently.
///
/// The quickstart program's child writes land in disjoint output slices,
/// so its payload is also asserted across device worker counts (1, 2, 4)
/// and both exec engines. The SSSP example relaxes distances with a
/// plain conditional store (the tuner's subject, not an atomics
/// showcase), so it is pinned to the deterministic single-worker mode.
///
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"
#include "vm/VM.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace dpo;

namespace {

/// examples/quickstart.cpp's program, verbatim.
const char *QuickstartSource = R"(
__global__ void child(int *data, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    data[base + i] = base + i * 2;
  }
}
__global__ void parent(int *data, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(data, offsets[v], count);
    }
  }
}
)";

/// examples/autotune.cpp's program, verbatim.
const char *SsspSource = R"(
__global__ void relax(int *dist, int *adj, int *wgt, int u, int count) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < count) {
    int v = adj[e];
    int nd = dist[u] + wgt[e];
    if (nd < dist[v]) {
      dist[v] = nd;
    }
  }
}
__global__ void sssp_step(int *dist, int *offsets, int *adj, int *wgt,
                          int *frontier, int numF) {
  int f = blockIdx.x * blockDim.x + threadIdx.x;
  if (f < numF) {
    int u = frontier[f];
    int count = offsets[u + 1] - offsets[u];
    if (count > 0) {
      relax<<<(count + 127) / 128, 128>>>(dist, adj + offsets[u],
                                          wgt + offsets[u], u, count);
    }
  }
}
)";

std::unique_ptr<Device> buildOrDie(const std::string &Src, ExecMode Mode,
                                   bool Optimize, unsigned Workers) {
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  Opts.Exec = Mode;
  DiagnosticEngine Diags;
  auto Dev = buildDevice(Src, Diags, Opts);
  EXPECT_NE(Dev, nullptr) << "VM build failed:\n" << Diags.str();
  if (Dev)
    Dev->setWorkers(Workers);
  return Dev;
}

struct QuickstartInput {
  std::vector<int32_t> Counts;
  std::vector<int32_t> Offsets;
  int32_t Total = 0;
};

QuickstartInput quickstartInput(const std::vector<int32_t> &Counts) {
  QuickstartInput In;
  In.Counts = Counts;
  In.Offsets.resize(Counts.size());
  for (size_t I = 0; I < Counts.size(); ++I) {
    In.Offsets[I] = In.Total;
    In.Total += Counts[I];
  }
  return In;
}

/// The native reference: what examples/quickstart.cpp's program computes,
/// straight from its semantics (every covered element of `data`).
std::vector<int32_t> quickstartNative(const QuickstartInput &In) {
  std::vector<int32_t> Data(In.Total, 0);
  for (size_t V = 0; V < In.Counts.size(); ++V)
    for (int32_t I = 0; I < In.Counts[V]; ++I)
      Data[In.Offsets[V] + I] = In.Offsets[V] + I * 2;
  return Data;
}

/// Runs \p Src (the quickstart program or a transformed variant of it)
/// and returns the data payload. Aggregated variants are entered through
/// the generated `parent_agg` host wrapper.
std::vector<int32_t> runQuickstart(const std::string &Src,
                                   const QuickstartInput &In, ExecMode Mode,
                                   bool Optimize, unsigned Workers) {
  auto Dev = buildOrDie(Src, Mode, Optimize, Workers);
  if (!Dev)
    return {};
  uint64_t DataA = Dev->alloc((uint64_t)In.Total * 4);
  uint64_t CountsA = Dev->allocI32(In.Counts);
  uint64_t OffsetsA = Dev->allocI32(In.Offsets);
  int64_t NumV = (int64_t)In.Counts.size();
  uint32_t Blocks = (uint32_t)((NumV + 63) / 64);
  bool Ok;
  if (Src.find("parent_agg") != std::string::npos) {
    Ok = Dev->callHost("parent_agg",
                       {Blocks, 1, 1, 64, 1, 1, (int64_t)DataA,
                        (int64_t)CountsA, (int64_t)OffsetsA, NumV});
  } else {
    Ok = Dev->launchKernel("parent", {Blocks, 1, 1}, {64, 1, 1},
                           {(int64_t)DataA, (int64_t)CountsA,
                            (int64_t)OffsetsA, NumV});
  }
  EXPECT_TRUE(Ok) << "VM run failed: " << Dev->error();
  if (!Ok)
    return {};
  return Dev->readI32Array(DataA, In.Total);
}

QuickstartInput exampleInput() {
  // The exact input examples/quickstart.cpp runs.
  return quickstartInput({3, 0, 100, 7, 45, 0, 260, 1});
}

QuickstartInput widerInput() {
  // A larger deterministic stream: many parent blocks, zero-count and
  // multi-block children mixed.
  std::vector<int32_t> Counts(200);
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] = (int32_t)((I * 37) % 150);
  return quickstartInput(Counts);
}

TEST(ExamplesDifferentialTest, QuickstartUntransformedMatchesNative) {
  for (const QuickstartInput &In : {exampleInput(), widerInput()}) {
    std::vector<int32_t> Native = quickstartNative(In);
    for (ExecMode Mode :
         {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode})
      for (unsigned Workers : {1u, 2u, 4u}) {
        std::vector<int32_t> Vm =
            runQuickstart(QuickstartSource, In, Mode, /*Optimize=*/true,
                          Workers);
        ASSERT_EQ(Vm, Native)
            << "engine=" << (int)Mode << " workers=" << Workers;
      }
  }
}

TEST(ExamplesDifferentialTest, QuickstartFig8PipelineMatchesNative) {
  // The exact pipeline examples/quickstart.cpp applies (T=64, C=4,
  // A=multi-block/8).
  PipelineOptions Options;
  Options.EnableThresholding = true;
  Options.EnableCoarsening = true;
  Options.EnableAggregation = true;
  Options.Thresholding.Threshold = 64;
  Options.Coarsening.Factor = 4;
  Options.Aggregation.Granularity = AggGranularity::MultiBlock;
  Options.Aggregation.GroupSize = 8;
  Options.useLiteralKnobs();

  DiagnosticEngine Diags;
  std::string Transformed = transformSource(QuickstartSource, Options, Diags);
  ASSERT_FALSE(Transformed.empty()) << Diags.str();

  for (const QuickstartInput &In : {exampleInput(), widerInput()}) {
    std::vector<int32_t> Native = quickstartNative(In);
    for (bool Optimize : {true, false})
      for (unsigned Workers : {1u, 2u, 4u}) {
        std::vector<int32_t> Vm = runQuickstart(Transformed, In,
                                                ExecMode::Decoded, Optimize,
                                                Workers);
        ASSERT_EQ(Vm, Native) << "peephole=" << (Optimize ? "on" : "off")
                              << " workers=" << Workers << "\ntransformed:\n"
                              << Transformed;
      }
  }
}

TEST(ExamplesDifferentialTest, QuickstartAllPipelinesMatchNative) {
  QuickstartInput In = exampleInput();
  std::vector<int32_t> Native = quickstartNative(In);
  for (const std::string &Pipeline : differentialPipelines()) {
    std::string Src = QuickstartSource;
    if (!Pipeline.empty()) {
      DiagnosticEngine Diags;
      Src = transformSourceWithPipeline(QuickstartSource, Pipeline,
                                        literalKnobConfig(), Diags);
      ASSERT_FALSE(Src.empty())
          << "pipeline '" << Pipeline << "' failed: " << Diags.str();
    }
    std::vector<int32_t> Vm =
        runQuickstart(Src, In, ExecMode::Decoded, /*Optimize=*/true,
                      /*Workers=*/2);
    ASSERT_EQ(Vm, Native) << "pipeline '" << Pipeline << "'";
  }
}

//===----------------------------------------------------------------------===//
// autotune's SSSP program
//===----------------------------------------------------------------------===//

struct SsspGraph {
  int32_t N = 0;
  std::vector<int32_t> Offsets, Adj, Wgt;
};

SsspGraph ssspGraph() {
  SsspGraph G;
  G.N = 64;
  std::mt19937 Rng(99);
  std::vector<std::vector<std::pair<int32_t, int32_t>>> Edges(G.N);
  for (int32_t V = 0; V < G.N; ++V) {
    int Deg = 2 + (int)(Rng() % 6);
    for (int E = 0; E < Deg; ++E)
      Edges[V].push_back({(int32_t)(Rng() % G.N), (int32_t)(1 + Rng() % 9)});
  }
  G.Offsets.resize(G.N + 1);
  for (int32_t V = 0; V < G.N; ++V) {
    G.Offsets[V] = (int32_t)G.Adj.size();
    for (auto [U, W] : Edges[V]) {
      G.Adj.push_back(U);
      G.Wgt.push_back(W);
    }
  }
  G.Offsets[G.N] = (int32_t)G.Adj.size();
  return G;
}

constexpr int32_t SsspInf = 1000000000;

/// The native mirror of one VM round over the full-frontier schedule:
/// parents in frontier order, each child's edges in ascending order,
/// every read against the current distance array — exactly the
/// single-worker VM's sequential execution order.
bool ssspNativeRound(const SsspGraph &G, std::vector<int32_t> &Dist) {
  bool Changed = false;
  for (int32_t U = 0; U < G.N; ++U)
    for (int32_t E = G.Offsets[U]; E < G.Offsets[U + 1]; ++E) {
      int32_t Nd = Dist[U] + G.Wgt[E];
      if (Nd < Dist[G.Adj[E]]) {
        Dist[G.Adj[E]] = Nd;
        Changed = true;
      }
    }
  return Changed;
}

TEST(ExamplesDifferentialTest, AutotuneSsspMatchesNative) {
  SsspGraph G = ssspGraph();

  // Native reference: rounds to fixpoint.
  std::vector<int32_t> Native(G.N, SsspInf);
  Native[0] = 0;
  int Rounds = 0;
  while (ssspNativeRound(G, Native))
    ++Rounds;
  ASSERT_GT(Rounds, 0);

  // Single-worker only: the example's relaxation is a plain conditional
  // store (no atomicMin), deterministic only on the sequential schedule.
  for (ExecMode Mode :
       {ExecMode::Decoded, ExecMode::DecodedNoTrace, ExecMode::Bytecode})
    for (bool Optimize : {true, false}) {
      auto Dev = buildOrDie(SsspSource, Mode, Optimize, /*Workers=*/1);
      ASSERT_NE(Dev, nullptr);
      std::vector<int32_t> Frontier(G.N);
      for (int32_t V = 0; V < G.N; ++V)
        Frontier[V] = V;
      uint64_t DistA = Dev->alloc((uint64_t)G.N * 4);
      uint64_t OffsetsA = Dev->allocI32(G.Offsets);
      uint64_t AdjA = Dev->allocI32(G.Adj);
      uint64_t WgtA = Dev->allocI32(G.Wgt);
      uint64_t FrontierA = Dev->allocI32(Frontier);
      for (int32_t V = 0; V < G.N; ++V)
        Dev->writeI32(DistA + (uint64_t)V * 4, SsspInf);
      Dev->writeI32(DistA, 0);

      // Drive the same number of full-frontier rounds the native fixpoint
      // took (plus one no-op round: the fixpoint must be stable).
      for (int R = 0; R < Rounds + 1; ++R)
        ASSERT_TRUE(Dev->launchKernel(
            "sssp_step", {(uint32_t)((G.N + 63) / 64), 1, 1}, {64, 1, 1},
            {(int64_t)DistA, (int64_t)OffsetsA, (int64_t)AdjA, (int64_t)WgtA,
             (int64_t)FrontierA, G.N}))
            << Dev->error();

      std::vector<int32_t> Vm = Dev->readI32Array(DistA, G.N);
      ASSERT_EQ(Vm, Native) << "engine=" << (int)Mode
                            << " peephole=" << (Optimize ? "on" : "off");
    }
}

} // namespace
