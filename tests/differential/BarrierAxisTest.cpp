//===--- BarrierAxisTest.cpp - Cooperative-kernel differential axis -----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The barrier axis of the differential suite: every cooperative corpus
/// case (shared-memory tiled reduction, frontier compaction, tiled
/// stencil — see workloads/CoopKernels.h) must be payload-exact against
/// its native reference
///
///  - through every registered pass pipeline, peephole on and off;
///  - on every execution engine (bytecode, decoded, decoded-notrace,
///    auto) at every worker count (1, 2, 4), with *bit-identical* step
///    accounting across all of them — cooperative scheduling (barrier
///    parking, round-robin resume, lenient release) is deterministic by
///    construction, and these tests pin that;
///  - twice in a row, byte-identical (repeat-run determinism).
///
//===----------------------------------------------------------------------===//

#include "workloads/CoopKernels.h"
#include "workloads/Differential.h"

#include <gtest/gtest.h>

using namespace dpo;

namespace {

std::string describeMismatch(const std::vector<int32_t> &Native,
                             const std::vector<int32_t> &Vm) {
  if (Native.size() != Vm.size())
    return "payload size differs: native " + std::to_string(Native.size()) +
           " vs VM " + std::to_string(Vm.size());
  for (size_t V = 0; V < Native.size(); ++V)
    if (Native[V] != Vm[V])
      return "out[" + std::to_string(V) + "] differs: native " +
             std::to_string(Native[V]) + " vs VM " + std::to_string(Vm[V]);
  return "";
}

class BarrierAxisTest : public ::testing::TestWithParam<size_t> {};

// Every pipeline variant, peephole on and off: the cooperative payload
// survives thresholding (segmented serialization), coarsening (the
// barriers stay block-uniform), aggregation (lenient reconvergence), and
// speculation, in any registered order.
TEST_P(BarrierAxisTest, AllPipelinesPreservePayload) {
  const CoopKernelCase &Case = coopKernelCorpus()[GetParam()];
  std::vector<int32_t> Native = Case.reference();
  for (const std::string &Pipeline : differentialPipelines()) {
    for (bool Optimize : {true, false}) {
      CoopRun Run = runCoopCaseOnVm(Case, Pipeline, Optimize);
      ASSERT_TRUE(Run.Ok) << Case.Name << " [" << Pipeline << "]: "
                          << Run.Error;
      std::string Why = describeMismatch(Native, Run.Out);
      EXPECT_TRUE(Why.empty())
          << Case.Name << " [" << Pipeline << ", peephole="
          << (Optimize ? "on" : "off") << "]: " << Why << "\ntransformed:\n"
          << Run.Src;
    }
  }
}

// Engine x worker matrix: the payload is exact and the step count is one
// number — bit-identical on the bytecode interpreter, the decoded
// direct-threaded engine with and without traces, and Auto, at workers
// 1, 2, and 4. The workers=1 bytecode run is the pin every other cell
// must reproduce, twice (repeat-run determinism).
TEST_P(BarrierAxisTest, EnginesAndWorkersAreStepExact) {
  const CoopKernelCase &Case = coopKernelCorpus()[GetParam()];
  std::vector<int32_t> Native = Case.reference();

  CoopRun Pin = runCoopCaseOnVm(Case, "", true, /*Workers=*/1,
                                ExecMode::Bytecode);
  ASSERT_TRUE(Pin.Ok) << Case.Name << ": " << Pin.Error;
  ASSERT_TRUE(describeMismatch(Native, Pin.Out).empty())
      << describeMismatch(Native, Pin.Out);
  ASSERT_GT(Pin.Stats.Steps, 0u);
  ASSERT_GT(Pin.Stats.DeviceLaunches, 0u);

  for (ExecMode Mode : {ExecMode::Bytecode, ExecMode::Decoded,
                        ExecMode::DecodedNoTrace, ExecMode::Auto}) {
    for (unsigned Workers : {1u, 2u, 4u}) {
      for (int Repeat = 0; Repeat < 2; ++Repeat) {
        CoopRun Run = runCoopCaseOnVm(Case, "", true, Workers, Mode);
        ASSERT_TRUE(Run.Ok) << Case.Name << " [mode=" << (int)Mode
                            << " workers=" << Workers << "]: " << Run.Error;
        std::string Why = describeMismatch(Native, Run.Out);
        EXPECT_TRUE(Why.empty()) << Case.Name << " [mode=" << (int)Mode
                                 << " workers=" << Workers << "]: " << Why;
        EXPECT_EQ(Run.Stats.Steps, Pin.Stats.Steps)
            << Case.Name << " [mode=" << (int)Mode << " workers=" << Workers
            << " repeat=" << Repeat << "]";
        EXPECT_EQ(Run.Stats.BlocksExecuted, Pin.Stats.BlocksExecuted);
        EXPECT_EQ(Run.Stats.ThreadsExecuted, Pin.Stats.ThreadsExecuted);
        EXPECT_EQ(Run.Stats.DeviceLaunches, Pin.Stats.DeviceLaunches);
      }
    }
  }
}

// The segmented serial form is actually taken: an always-serialize
// threshold removes every dynamic launch from the barrier-bearing
// corpus children that the analysis accepts, payload intact.
TEST_P(BarrierAxisTest, ThresholdSerializationIsExercised) {
  const CoopKernelCase &Case = coopKernelCorpus()[GetParam()];
  std::vector<int32_t> Native = Case.reference();

  CoopRun Base = runCoopCaseOnVm(Case, "", true);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.Stats.DeviceLaunches, 0u);

  CoopRun Thresh = runCoopCaseOnVm(Case, "threshold[1000000]", true);
  ASSERT_TRUE(Thresh.Ok) << Thresh.Error;
  EXPECT_EQ(Thresh.Stats.DeviceLaunches, 0u) << Thresh.Src;
  EXPECT_NE(Thresh.Src.find("child_serial"), std::string::npos) << Thresh.Src;
  EXPECT_TRUE(describeMismatch(Native, Thresh.Out).empty())
      << describeMismatch(Native, Thresh.Out) << "\n" << Thresh.Src;
}

INSTANTIATE_TEST_SUITE_P(
    Coop, BarrierAxisTest,
    ::testing::Range<size_t>(0, coopKernelCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = coopKernelCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

} // namespace
