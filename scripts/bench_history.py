#!/usr/bin/env python3
"""Flatten the per-PR benchmark snapshots under bench/history/ into a CSV.

Usage: bench_history.py [HISTORY_DIR] [--plot [OUT.png]] [--prune [N]]
                        [> trajectory.csv]

Each snapshot is a google-benchmark JSON written by CI as
bench/history/<short-sha>.json (see .github/workflows/ci.yml). The CSV has
one row per (snapshot, benchmark) with the best-of-repetitions throughput,
so the whole performance trajectory is plottable with one pandas/gnuplot
one-liner:

    sha,date,benchmark,metric,throughput

Snapshots are ordered by the date google-benchmark recorded at run time.

--plot [OUT.png]  renders the trajectory (one line per benchmark,
                  log-scale throughput over snapshots) via matplotlib,
                  falling back to gnuplot when matplotlib is missing;
                  default output bench_trajectory.png. No CSV is written
                  in plot mode.
--prune [N]       deletes the oldest snapshots beyond the newest N
                  (default 100) before any other processing, keeping the
                  committed history bounded.

Exit status: 0 on success, 2 when the directory has no readable
snapshots (or no plotting backend is available in --plot mode).
"""

import csv
import json
import os
import shutil
import subprocess
import sys
import tempfile


def throughput(entry):
    if "steps_per_sec" in entry:
        return float(entry["steps_per_sec"]), "steps_per_sec"
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), "items_per_second"
    cpu = float(entry.get("cpu_time", 0.0))
    if cpu <= 0:
        return None, None
    return 1e9 / cpu, "1/cpu_time"


def load_snapshot(path):
    with open(path) as f:
        data = json.load(f)
    date = data.get("context", {}).get("date", "")
    best = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("run_name", entry.get("name"))
        value, metric = throughput(entry)
        if value is None:
            continue
        if name not in best or value > best[name][0]:
            best[name] = (value, metric)
    return date, best


def collect_snapshots(history_dir):
    snapshots = []
    for name in sorted(os.listdir(history_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(history_dir, name)
        try:
            date, best = load_snapshot(path)
        except (OSError, ValueError) as err:
            print(f"bench_history: skipping {path}: {err}", file=sys.stderr)
            continue
        snapshots.append((date, name[: -len(".json")], best))
    snapshots.sort(key=lambda s: s[0])
    return snapshots


def prune_history(history_dir, keep):
    """Deletes the oldest snapshots beyond the newest `keep`."""
    snapshots = collect_snapshots(history_dir)
    excess = len(snapshots) - keep
    for date, sha, _ in snapshots[:max(0, excess)]:
        path = os.path.join(history_dir, sha + ".json")
        try:
            os.remove(path)
            print(f"bench_history: pruned {path} ({date})", file=sys.stderr)
        except OSError as err:
            print(f"bench_history: cannot prune {path}: {err}",
                  file=sys.stderr)


def plot_matplotlib(snapshots, out_path):
    try:
        import matplotlib
    except ImportError:
        return False
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    series = {}
    shas = [sha for _, sha, _ in snapshots]
    for idx, (_, _, best) in enumerate(snapshots):
        for bench, (value, _) in best.items():
            series.setdefault(bench, {})[idx] = value
    fig, ax = plt.subplots(figsize=(max(8, len(shas) * 0.6), 6))
    for bench in sorted(series):
        xs = sorted(series[bench])
        ax.plot(xs, [series[bench][x] for x in xs], marker="o", label=bench)
    ax.set_yscale("log")
    ax.set_xticks(range(len(shas)))
    ax.set_xticklabels(shas, rotation=45, ha="right", fontsize=7)
    ax.set_ylabel("throughput (log)")
    ax.set_title("benchmark trajectory (bench/history)")
    ax.legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"bench_history: wrote {out_path}", file=sys.stderr)
    return True


def plot_gnuplot(snapshots, out_path):
    if not shutil.which("gnuplot"):
        return False
    series = {}
    for idx, (_, _, best) in enumerate(snapshots):
        for bench, (value, _) in best.items():
            series.setdefault(bench, []).append((idx, value))
    with tempfile.TemporaryDirectory() as tmp:
        plots = []
        for n, bench in enumerate(sorted(series)):
            data = os.path.join(tmp, f"s{n}.dat")
            with open(data, "w") as f:
                for idx, value in series[bench]:
                    f.write(f"{idx} {value}\n")
            title = bench.replace('"', "'")
            plots.append(f'"{data}" using 1:2 with linespoints '
                         f'title "{title}"')
        script = os.path.join(tmp, "plot.gp")
        with open(script, "w") as f:
            f.write(f'set terminal pngcairo size 1200,700\n'
                    f'set output "{out_path}"\n'
                    f'set logscale y\n'
                    f'set xlabel "snapshot"\n'
                    f'set ylabel "throughput (log)"\n'
                    f'set key font ",7"\n'
                    f'plot {", ".join(plots)}\n')
        result = subprocess.run(["gnuplot", script], capture_output=True,
                                text=True)
        if result.returncode != 0:
            print(f"bench_history: gnuplot failed: {result.stderr}",
                  file=sys.stderr)
            return False
    print(f"bench_history: wrote {out_path} (gnuplot)", file=sys.stderr)
    return True


def main(argv):
    args = list(argv[1:])
    plot_out = None
    prune_keep = None
    if "--plot" in args:
        i = args.index("--plot")
        args.pop(i)
        plot_out = "bench_trajectory.png"
        if i < len(args) and not args[i].startswith("-") \
                and not os.path.isdir(args[i]):
            plot_out = args.pop(i)
    if "--prune" in args:
        i = args.index("--prune")
        args.pop(i)
        prune_keep = 100
        if i < len(args) and args[i].isdigit():
            prune_keep = int(args.pop(i))
    history_dir = args[0] if args else "bench/history"
    if not os.path.isdir(history_dir):
        print(f"bench_history: no directory {history_dir}", file=sys.stderr)
        return 2

    if prune_keep is not None:
        prune_history(history_dir, prune_keep)

    snapshots = collect_snapshots(history_dir)
    if not snapshots:
        print(f"bench_history: no snapshots in {history_dir}", file=sys.stderr)
        return 2

    if plot_out is not None:
        if plot_matplotlib(snapshots, plot_out):
            return 0
        if plot_gnuplot(snapshots, plot_out):
            return 0
        print("bench_history: no plotting backend (need matplotlib or "
              "gnuplot)", file=sys.stderr)
        return 2

    writer = csv.writer(sys.stdout, lineterminator="\n")
    writer.writerow(["sha", "date", "benchmark", "metric", "throughput"])
    for date, sha, best in snapshots:
        for bench in sorted(best):
            value, metric = best[bench]
            writer.writerow([sha, date, bench, metric, f"{value:.6g}"])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
