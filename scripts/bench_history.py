#!/usr/bin/env python3
"""Flatten the per-PR benchmark snapshots under bench/history/ into a CSV.

Usage: bench_history.py [HISTORY_DIR] [> trajectory.csv]

Each snapshot is a google-benchmark JSON written by CI as
bench/history/<short-sha>.json (see .github/workflows/ci.yml). The CSV has
one row per (snapshot, benchmark) with the best-of-repetitions throughput,
so the whole performance trajectory is plottable with one pandas/gnuplot
one-liner:

    sha,date,benchmark,metric,throughput

Snapshots are ordered by the date google-benchmark recorded at run time.
Exit status: 0 on success, 2 when the directory has no readable snapshots.
"""

import csv
import json
import os
import sys


def throughput(entry):
    if "steps_per_sec" in entry:
        return float(entry["steps_per_sec"]), "steps_per_sec"
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), "items_per_second"
    cpu = float(entry.get("cpu_time", 0.0))
    if cpu <= 0:
        return None, None
    return 1e9 / cpu, "1/cpu_time"


def load_snapshot(path):
    with open(path) as f:
        data = json.load(f)
    date = data.get("context", {}).get("date", "")
    best = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("run_name", entry.get("name"))
        value, metric = throughput(entry)
        if value is None:
            continue
        if name not in best or value > best[name][0]:
            best[name] = (value, metric)
    return date, best


def main(argv):
    history_dir = argv[1] if len(argv) > 1 else "bench/history"
    if not os.path.isdir(history_dir):
        print(f"bench_history: no directory {history_dir}", file=sys.stderr)
        return 2

    snapshots = []
    for name in sorted(os.listdir(history_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(history_dir, name)
        try:
            date, best = load_snapshot(path)
        except (OSError, ValueError) as err:
            print(f"bench_history: skipping {path}: {err}", file=sys.stderr)
            continue
        snapshots.append((date, name[: -len(".json")], best))
    if not snapshots:
        print(f"bench_history: no snapshots in {history_dir}", file=sys.stderr)
        return 2

    snapshots.sort(key=lambda s: s[0])
    writer = csv.writer(sys.stdout, lineterminator="\n")
    writer.writerow(["sha", "date", "benchmark", "metric", "throughput"])
    for date, sha, best in snapshots:
        for bench in sorted(best):
            value, metric = best[bench]
            writer.writerow([sha, date, bench, metric, f"{value:.6g}"])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
