#!/usr/bin/env bash
#===--- tune_table.sh - regenerate the committed per-workload tuned tables ---===#
#
# Re-tunes every workload in bench/tuned/ with the standard recorded
# settings and rewrites the JSON tables. Run after an intentional change
# to the tuner, the passes, the bytecode lowering, or the VM cost
# attribution, then commit the diff — the differential CI job re-runs the
# recorded searches and fails when a table no longer reproduces.
#
#   scripts/tune_table.sh [workload-spec ...]
#
# With no arguments, regenerates the standard set (one per Table I
# benchmark on its Fig. 11 dataset, plus the Fig. 12 road case for BFS).
#
# Environment:
#   BUILD_DIR    cmake build directory (default: build)
#   TUNE_MODE    empirical | hybrid | analytic (default: empirical)
#   TUNE_BUDGET  VM-execution budget (default: 24)
#   TUNE_SEED    sampling seed (default: 1)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TUNE_MODE="${TUNE_MODE:-empirical}"
TUNE_BUDGET="${TUNE_BUDGET:-24}"
TUNE_SEED="${TUNE_SEED:-1}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target dpoptcc >/dev/null

WORKLOADS=("$@")
if [[ ${#WORKLOADS[@]} -eq 0 ]]; then
  WORKLOADS=(canonical bfs:kron bfs:road_ny sssp:kron mstf:kron mstv:kron
             tc:kron sp:sat5 bt:t2048_c64)
fi

mkdir -p bench/tuned
for SPEC in "${WORKLOADS[@]}"; do
  echo "== $SPEC =="
  WORKLOAD_FLAG=("--workload=$SPEC")
  # "canonical" records dpoptcc's default --tune workload (no --workload=).
  [[ "$SPEC" == canonical ]] && WORKLOAD_FLAG=()
  # The directory form of --tune-report= derives the file name from the
  # spec via tunedTableFileName, the single owner of that mapping.
  "$BUILD_DIR/dpoptcc" "--tune=$TUNE_MODE" "${WORKLOAD_FLAG[@]}" \
    "--tune-budget=$TUNE_BUDGET" "--tune-seed=$TUNE_SEED" \
    "--tune-report=bench/tuned/"
done
