#!/usr/bin/env bash
#===--- check.sh - configure, build, test, and smoke the benchmarks ----------===#
#
# The one command a contributor (or CI) runs before pushing:
#   scripts/check.sh
#
# Environment:
#   BUILD_DIR  cmake build directory (default: build)
#   JOBS       parallelism (default: nproc)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== vm_throughput smoke =="
if [ -x "$BUILD_DIR/vm_throughput" ]; then
  "$BUILD_DIR/vm_throughput" --benchmark_min_time=0.05
else
  echo "vm_throughput not built (google-benchmark missing); skipped"
fi

echo "== OK =="
