#!/usr/bin/env bash
#===--- check.sh - configure, build, test, and smoke the benchmarks ----------===#
#
# The one command a contributor (or CI) runs before pushing:
#   scripts/check.sh          # tier1 tests only (the fast inner loop)
#   scripts/check.sh --all    # tier1 + the differential kernel-corpus
#                             # suite (every pipeline x peephole on/off
#                             # against the native references, and the
#                             # tuned-table drift gate)
#
# Environment:
#   BUILD_DIR  cmake build directory (default: build)
#   JOBS       parallelism (default: nproc)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

RUN_ALL=0
if [[ "${1:-}" == "--all" ]]; then
  RUN_ALL=1
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest (tier1) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L tier1

if [[ "$RUN_ALL" == 1 ]]; then
  echo "== ctest (differential) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L differential
fi

echo "== vm_throughput smoke =="
if [ -x "$BUILD_DIR/vm_throughput" ]; then
  "$BUILD_DIR/vm_throughput" --benchmark_min_time=0.05
else
  echo "vm_throughput not built (google-benchmark missing); skipped"
fi

echo "== OK =="
