#!/usr/bin/env bash
#===--- bench_baseline.sh - snapshot VM throughput to BENCH_vm.json ----------===#
#
# Builds the vm_throughput harness and writes its results as JSON so future
# PRs can compare interpreter performance against this baseline:
#
#   scripts/bench_baseline.sh [output.json]
#
# Environment:
#   BUILD_DIR   cmake build directory (default: build)
#   BENCH_ARGS  extra google-benchmark flags (e.g. --benchmark_filter=...)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_vm.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target vm_throughput >/dev/null

"$BUILD_DIR/vm_throughput" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}

echo "wrote $OUT"
