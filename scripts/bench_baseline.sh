#!/usr/bin/env bash
#===--- bench_baseline.sh - snapshot/check benchmark baselines ---------------===#
#
# Snapshot mode (default): builds the benchmark harnesses and writes their
# results as JSON so future PRs can compare performance against this
# baseline:
#
#   scripts/bench_baseline.sh [vm_output.json [compiler_output.json]]
#
# Emits:
#   BENCH_vm.json        vm_throughput (interpreter dispatch/throughput)
#   BENCH_compiler.json  compiler_throughput (parse, passes, analysis cache)
#
# Check mode (the CI regression gate): runs a fresh vm_throughput snapshot
# and compares it against the committed baseline with bench_compare.py,
# failing on >15% per-benchmark throughput regression:
#
#   scripts/bench_baseline.sh --check [fresh.json [baseline.json]]
#
# To refresh the committed baseline after an intentional perf change:
#
#   scripts/bench_baseline.sh bench/baselines/BENCH_vm.json
#
# Environment:
#   BUILD_DIR              cmake build directory (default: build)
#   BENCH_ARGS             extra google-benchmark flags
#   BENCH_REPS             benchmark repetitions (default: 1; the check
#                          uses 3 and compares best-of to cut noise)
#   BENCH_BASELINE         baseline JSON for --check
#                          (default: bench/baselines/BENCH_vm.json)
#   BENCH_CHECK_TOLERANCE  allowed regression percent (default: 15)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi

VM_OUT="${1:-BENCH_vm.json}"
COMPILER_OUT="${2:-BENCH_compiler.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target vm_throughput --target compiler_throughput >/dev/null

if [[ "$CHECK" == 1 ]]; then
  BASELINE="${2:-${BENCH_BASELINE:-bench/baselines/BENCH_vm.json}}"
  if [[ ! -f "$BASELINE" ]]; then
    echo "bench_baseline.sh: no committed baseline at $BASELINE" >&2
    exit 2
  fi
  "$BUILD_DIR/vm_throughput" \
    --benchmark_out="$VM_OUT" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${BENCH_REPS:-3}" \
    ${BENCH_ARGS:-}
  echo "wrote $VM_OUT; comparing against $BASELINE"
  exec python3 scripts/bench_compare.py "$VM_OUT" "$BASELINE" \
    "${BENCH_CHECK_TOLERANCE:-15}"
fi

"$BUILD_DIR/vm_throughput" \
  --benchmark_out="$VM_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $VM_OUT"

"$BUILD_DIR/compiler_throughput" \
  --benchmark_out="$COMPILER_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $COMPILER_OUT"
