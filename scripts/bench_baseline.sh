#!/usr/bin/env bash
#===--- bench_baseline.sh - snapshot/check benchmark baselines ---------------===#
#
# Snapshot mode (default): builds the benchmark harnesses and writes their
# results as JSON so future PRs can compare performance against this
# baseline:
#
#   scripts/bench_baseline.sh [vm_output.json [compiler_output.json [service_output.json]]]
#
# Emits:
#   BENCH_vm.json        vm_throughput (interpreter dispatch/throughput,
#                        including the BM_GridDrain/{1,2,4,8} multi-worker
#                        scaling series — archived with the snapshot, but
#                        bench_compare.py gates only the single-worker
#                        entries since multi-worker wall time depends on
#                        the host's core count)
#   BENCH_compiler.json  compiler_throughput (parse, passes, analysis cache)
#   BENCH_service.json   service_throughput (compile-service cold/warm/
#                        duplicate-mix/disk-warm series; the
#                        BM_ServeBatch/{2,4} worker entries are outside
#                        the gate like BM_GridDrain)
#
# Check mode (the CI regression gate): runs fresh vm_throughput and
# compiler_throughput snapshots and compares each against its committed
# baseline with bench_compare.py, failing on >15% per-benchmark
# throughput regression:
#
#   scripts/bench_baseline.sh --check [vm_fresh.json [compiler_fresh.json [service_fresh.json]]]
#
# To refresh the committed baselines after an intentional perf change:
#
#   scripts/bench_baseline.sh bench/baselines/BENCH_vm.json \
#                             bench/baselines/BENCH_compiler.json \
#                             bench/baselines/BENCH_service.json
#
# Environment:
#   BUILD_DIR              cmake build directory (default: build)
#   BENCH_ARGS             extra google-benchmark flags
#   BENCH_REPS             benchmark repetitions (default: 1; the check
#                          uses 3 and compares best-of to cut noise)
#   BENCH_BASELINE         vm baseline JSON for --check
#                          (default: bench/baselines/BENCH_vm.json)
#   BENCH_COMPILER_BASELINE  compiler baseline JSON for --check
#                          (default: bench/baselines/BENCH_compiler.json)
#   BENCH_SERVICE_BASELINE  service baseline JSON for --check
#                          (default: bench/baselines/BENCH_service.json)
#   BENCH_CHECK_TOLERANCE  allowed regression percent (default: 15)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi

VM_OUT="${1:-BENCH_vm.json}"
COMPILER_OUT="${2:-BENCH_compiler.json}"
SERVICE_OUT="${3:-BENCH_service.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target vm_throughput --target compiler_throughput \
      --target service_throughput >/dev/null

if [[ "$CHECK" == 1 ]]; then
  BASELINE="${BENCH_BASELINE:-bench/baselines/BENCH_vm.json}"
  COMPILER_BASELINE="${BENCH_COMPILER_BASELINE:-bench/baselines/BENCH_compiler.json}"
  SERVICE_BASELINE="${BENCH_SERVICE_BASELINE:-bench/baselines/BENCH_service.json}"
  STATUS=0
  for PAIR in "vm_throughput:$VM_OUT:$BASELINE" \
              "compiler_throughput:$COMPILER_OUT:$COMPILER_BASELINE" \
              "service_throughput:$SERVICE_OUT:$SERVICE_BASELINE"; do
    IFS=: read -r HARNESS FRESH COMMITTED <<<"$PAIR"
    if [[ ! -f "$COMMITTED" ]]; then
      echo "bench_baseline.sh: no committed baseline at $COMMITTED" >&2
      exit 2
    fi
    "$BUILD_DIR/$HARNESS" \
      --benchmark_out="$FRESH" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-3}" \
      ${BENCH_ARGS:-}
    echo "wrote $FRESH; comparing against $COMMITTED"
    python3 scripts/bench_compare.py "$FRESH" "$COMMITTED" \
      "${BENCH_CHECK_TOLERANCE:-15}" || STATUS=$?
  done
  exit "$STATUS"
fi

"$BUILD_DIR/vm_throughput" \
  --benchmark_out="$VM_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $VM_OUT"

"$BUILD_DIR/compiler_throughput" \
  --benchmark_out="$COMPILER_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $COMPILER_OUT"

"$BUILD_DIR/service_throughput" \
  --benchmark_out="$SERVICE_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $SERVICE_OUT"

# Extend the committed performance trajectory: snapshot mode runs when
# baselines are being refreshed, so archive this commit's vm snapshot
# under bench/history/ for the committer to include
# (scripts/bench_history.py flattens the directory into a CSV).
if SHA="$(git rev-parse --short HEAD 2>/dev/null)"; then
  mkdir -p bench/history
  cp "$VM_OUT" "bench/history/$SHA.json"
  echo "archived bench/history/$SHA.json (commit it to extend the trajectory)"
fi
