#!/usr/bin/env bash
#===--- bench_baseline.sh - snapshot benchmark baselines to JSON -------------===#
#
# Builds the benchmark harnesses and writes their results as JSON so future
# PRs can compare performance against this baseline:
#
#   scripts/bench_baseline.sh [vm_output.json [compiler_output.json]]
#
# Emits:
#   BENCH_vm.json        vm_throughput (interpreter dispatch/throughput)
#   BENCH_compiler.json  compiler_throughput (parse, passes, analysis cache)
#
# Environment:
#   BUILD_DIR   cmake build directory (default: build)
#   BENCH_ARGS  extra google-benchmark flags (e.g. --benchmark_filter=...)
#   BENCH_REPS  benchmark repetitions (default: 1)
#
#===---------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
VM_OUT="${1:-BENCH_vm.json}"
COMPILER_OUT="${2:-BENCH_compiler.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target vm_throughput --target compiler_throughput >/dev/null

"$BUILD_DIR/vm_throughput" \
  --benchmark_out="$VM_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $VM_OUT"

"$BUILD_DIR/compiler_throughput" \
  --benchmark_out="$COMPILER_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  ${BENCH_ARGS:-}
echo "wrote $COMPILER_OUT"
