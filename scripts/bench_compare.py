#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and fail on throughput regression.

Usage: bench_compare.py FRESH.json BASELINE.json [tolerance_percent]

For every benchmark present in both files, picks a throughput metric in
priority order: the `steps_per_sec` user counter, then `items_per_second`,
then inverse cpu_time. A benchmark regresses when its fresh throughput
falls more than `tolerance_percent` (default 15) below the baseline.
Repeated entries (from --benchmark_repetitions) are reduced to their best
throughput before comparison, which drops scheduler-noise outliers.

Multi-worker scaling entries (BM_GridDrain/N with N > 1) are reported as
informational only and never flagged: their wall time depends on how many
host cores the machine running the check has, which the committed
baseline cannot know. BM_GridDrain/1 — the deterministic single-lane
drain — stays inside the gate. When the fresh snapshot has the full
series, a worker-scaling summary (speedup vs one worker) is printed.

The BM_DeviceBuild series (device construction: validation, decoded-IR
lowering, trace formation) stays inside the gate like any other entry —
that is what keeps trace-formation cost within the compile-time
tolerance — and additionally gets a decode-time delta summary breaking
construction cost down by engine mode.

Exit status: 0 = no regression, 1 = at least one regression, 2 = bad input.

Caveat: absolute throughput is machine-dependent. Comparing a committed
baseline from one machine against a run on another only gates gross
regressions; regenerate the baseline (scripts/bench_baseline.sh) when the
reference hardware changes.
"""

import json
import sys


def is_multiworker(name):
    """Worker-scaling series entries above one worker: host-core-count
    dependent, tracked for trajectory but exempt from the gate. Covers
    both the VM grid-drain series and the compile-service batch-drain
    series; BM_GridDrain/1 and BM_ServeBatch/1 stay inside the gate."""
    if "/" not in name:
        return False
    base, _, arg = name.partition("/")
    return base in ("BM_GridDrain", "BM_ServeBatch") \
        and arg.split("/")[0].isdigit() and int(arg.split("/")[0]) > 1


def scaling_summary(fresh):
    """Speedup of each BM_GridDrain/N over BM_GridDrain/1 (by wall
    throughput), printed when the fresh snapshot carries the series."""
    series = {}
    for name, (value, _metric) in fresh.items():
        base, _, arg = name.partition("/")
        workers = arg.split("/")[0]
        if base == "BM_GridDrain" and workers.isdigit():
            series[int(workers)] = value
    if 1 not in series or len(series) < 2:
        return
    print("worker scaling (grid-drain throughput vs 1 worker):")
    for workers in sorted(series):
        print(f"  {workers} worker(s): {series[workers] / series[1]:.2f}x")


def decode_summary(fresh):
    """Decode-time deltas from the fresh BM_DeviceBuild series: what the
    ExecIR lowering and trace formation each add to device construction.
    Entries carry 1/cpu_time throughput, so time ratios invert them."""
    series = {}
    for name, (value, _metric) in fresh.items():
        base, _, variant = name.partition("/")
        if base == "BM_DeviceBuild" and variant:
            series[variant] = value
    if "decoded" not in series:
        return
    print("decode-time deltas (device construction cost by engine mode):")
    if "decoded_notrace" in series:
        overhead = series["decoded_notrace"] / series["decoded"] - 1.0
        print(f"  trace formation: {overhead * 100.0:+.1f}% on top of the "
              "pair-fused decode")
    if "bytecode" in series:
        overhead = series["bytecode"] / series["decoded"] - 1.0
        print(f"  full decode (pairs + traces): {overhead * 100.0:+.1f}% on "
              "top of validation alone")


def service_summary(fresh):
    """Warm-over-cold speedup of the compile service on the duplicate
    request mix — the acceptance bar for the artifact cache is >=10x —
    plus batch-drain worker scaling when the series is present."""
    if "BM_DuplicateMixCold" in fresh and "BM_DuplicateMixWarm" in fresh:
        cold = fresh["BM_DuplicateMixCold"][0]
        warm = fresh["BM_DuplicateMixWarm"][0]
        if cold > 0:
            print("compile service (duplicate-request mix): warm cache "
                  f"{warm / cold:.1f}x over cold")
    series = {}
    for name, (value, _metric) in fresh.items():
        base, _, arg = name.partition("/")
        workers = arg.split("/")[0]
        if base == "BM_ServeBatch" and workers.isdigit():
            series[int(workers)] = value
    if 1 in series and len(series) > 1:
        print("service batch-drain scaling (throughput vs 1 worker):")
        for workers in sorted(series):
            print(f"  {workers} worker(s): {series[workers] / series[1]:.2f}x")


def throughput(entry):
    if "steps_per_sec" in entry:
        return float(entry["steps_per_sec"]), "steps_per_sec"
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), "items_per_second"
    cpu = float(entry.get("cpu_time", 0.0))
    if cpu <= 0:
        return None, None
    return 1e9 / cpu, "1/cpu_time"


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    best = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("run_name", entry.get("name"))
        value, metric = throughput(entry)
        if value is None:
            continue
        if name not in best or value > best[name][0]:
            best[name] = (value, metric)
    return best


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path, base_path = argv[1], argv[2]
    tolerance = float(argv[3]) if len(argv) > 3 else 15.0

    fresh = load(fresh_path)
    base = load(base_path)
    common = sorted(set(fresh) & set(base))
    if not common:
        print("bench_compare: no common benchmarks between "
              f"{fresh_path} and {base_path}", file=sys.stderr)
        return 2

    regressions = 0
    print(f"{'benchmark':<44} {'baseline':>12} {'fresh':>12} {'delta':>8}")
    for name in common:
        base_v, metric = base[name]
        fresh_v, _ = fresh[name]
        delta = (fresh_v / base_v - 1.0) * 100.0
        flag = ""
        if is_multiworker(name):
            flag = "  (info: outside gate)"
        elif delta < -tolerance:
            regressions += 1
            flag = "  REGRESSION"
        print(f"{name:<44} {base_v:12.3g} {fresh_v:12.3g} {delta:+7.1f}%"
              f"{flag}")
    scaling_summary(fresh)
    decode_summary(fresh)
    service_summary(fresh)
    skipped = (set(fresh) | set(base)) - set(common)
    if skipped:
        print(f"(skipped {len(skipped)} benchmark(s) present on one side "
              "only)")
    if regressions:
        print(f"bench_compare: {regressions} benchmark(s) regressed more "
              f"than {tolerance:.0f}% vs {base_path}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK — no benchmark regressed more than "
          f"{tolerance:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
